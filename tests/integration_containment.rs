//! Integration tests for customization containment (Theorem 3.5 /
//! Corollary 3.6) and the dependency-based undecidability gadgets.

use rtx::core::models;
use rtx::prelude::*;
use rtx::verify::dependencies::{
    DependencyGadget, DependencySet, FunctionalDependency, InclusionDependency,
};
use rtx::verify::{syntactically_safe_customization, ContainmentVerdict};

#[test]
fn friendly_preserves_short_logs() {
    let db = models::figure1_database();
    let verdict = customization_preserves_logs(&models::short(), &models::friendly(), &db).unwrap();
    assert!(verdict.is_contained());
    assert!(syntactically_safe_customization(
        &models::short(),
        &models::friendly()
    ));
}

#[test]
fn rogue_customizations_are_rejected_with_a_counterexample() {
    let short = models::short();
    let db = models::figure1_database();
    let rogue = SpocusBuilder::new("rogue")
        .input("order", 1)
        .input("pay", 2)
        .database("price", 2)
        .database("available", 1)
        .output("sendbill", 2)
        .output("deliver", 1)
        .log(["sendbill", "pay", "deliver"])
        .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
        .output_rule("deliver(X) :- order(X), price(X,Y)")
        .build()
        .unwrap();
    match customization_preserves_logs(&short, &rogue, &db).unwrap() {
        ContainmentVerdict::NotContained {
            counterexample_inputs,
        } => {
            // the counterexample genuinely separates the two logs
            let rogue_run = rogue.run(&db, &counterexample_inputs).unwrap();
            let short_run = short.run(&db, &counterexample_inputs).unwrap();
            assert_ne!(rogue_run.log(), short_run.log());
        }
        ContainmentVerdict::Contained => panic!("rogue customization must be rejected"),
    }
}

#[test]
fn adding_an_unlogged_reporting_output_is_sound() {
    // A customization that adds a reporting output (not logged) driven by a
    // new input is accepted both syntactically and semantically.
    let short = models::short();
    let db = models::figure1_database();
    let reporting = SpocusBuilder::new("reporting")
        .input("order", 1)
        .input("pay", 2)
        .input("report-request", 0)
        .database("price", 2)
        .database("available", 1)
        .output("sendbill", 2)
        .output("deliver", 1)
        .output("outstanding", 2)
        .log(["sendbill", "pay", "deliver"])
        .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
        .output_rule("deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y)")
        .output_rule(
            "outstanding(X,Y) :- report-request, past-order(X), price(X,Y), NOT past-pay(X,Y)",
        )
        .build()
        .unwrap();
    assert!(syntactically_safe_customization(&short, &reporting));
    assert!(customization_preserves_logs(&short, &reporting, &db)
        .unwrap()
        .is_contained());
}

#[test]
fn proposition_31_gadget_tracks_dependency_implication() {
    // F = {1 → 2}, G = {R[1] ⊆ R[2]}: F does not imply G, and the gadget's
    // witness log is reachable.
    let f = DependencySet {
        fds: vec![FunctionalDependency {
            lhs: vec![0],
            rhs: 1,
        }],
        inds: vec![],
    };
    let g = DependencySet {
        fds: vec![],
        inds: vec![InclusionDependency {
            lhs: vec![0],
            rhs: vec![1],
        }],
    };
    let gadget = DependencyGadget::new(2, f.clone(), g.clone()).unwrap();

    let witness = Relation::from_tuples(
        2,
        vec![
            Tuple::new(vec![Value::str("a"), Value::str("1")]),
            Tuple::new(vec![Value::str("b"), Value::str("2")]),
        ],
    )
    .unwrap();
    assert!(f.satisfied_by(&witness) && !g.satisfied_by(&witness));
    assert!(gadget.witnesses_non_implication(&witness).unwrap());

    // In the opposite configuration (G as F and F as G), the instance that
    // satisfies the inclusion dependency but not the FD witnesses the
    // converse non-implication.
    let gadget_rev = DependencyGadget::new(2, g, f).unwrap();
    let rev_witness = Relation::from_tuples(
        2,
        vec![
            Tuple::new(vec![Value::str("a"), Value::str("a")]),
            Tuple::new(vec![Value::str("a"), Value::str("b")]),
            Tuple::new(vec![Value::str("b"), Value::str("a")]),
        ],
    )
    .unwrap();
    assert!(gadget_rev.witnesses_non_implication(&rev_witness).unwrap());
}
