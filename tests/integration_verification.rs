//! Integration tests for the decision procedures against the worked models:
//! log validation (Theorem 3.1), goal reachability (Theorem 3.2) and temporal
//! properties (Theorem 3.3), cross-checked against concrete runs.

use rtx::core::models;
use rtx::prelude::*;
use rtx::verify::log_validation::log_matches;
use rtx::verify::temporal::run_satisfies;
use rtx_datalog::Atom;

#[test]
fn logs_of_real_runs_validate_and_witnesses_reproduce_them() {
    let short = models::short();
    let db = models::figure1_database();
    for (steps, honesty, seed) in [(1usize, 1.0, 1u64), (2, 1.0, 2), (3, 0.5, 3)] {
        let inputs = rtx::workloads::customer_session(&db, steps, 3, honesty, seed);
        let run = short.run(&db, &inputs).unwrap();
        match validate_log(&short, &db, run.log()).unwrap() {
            LogValidity::Valid { witness_inputs } => {
                assert!(log_matches(&short, &db, &witness_inputs, run.log()).unwrap());
            }
            LogValidity::Invalid => panic!("log of a real run declared invalid"),
        }
    }
}

#[test]
fn tampered_logs_are_rejected() {
    let short = models::short();
    let db = models::figure1_database();
    let inputs = rtx::workloads::customer_session(&db, 2, 3, 1.0, 7);
    let log = rtx::workloads::log_of(&short, &db, &inputs);
    // claim a delivery of a product whose payment never appears in the log
    let tampered = rtx::workloads::tamper_log(&log, "newsweek");
    // the tampered step has deliver(newsweek) but the log's pay slice at that
    // step cannot justify it unless the honest session already did exactly
    // that; re-check against the actual run to make the expectation precise
    let honest_run = short.run(&db, &inputs).unwrap();
    let already_delivered = honest_run
        .log()
        .last()
        .map(|l| l.holds("deliver", &Tuple::from_iter(["newsweek"])))
        .unwrap_or(false);
    let verdict = validate_log(&short, &db, &tampered).unwrap();
    if already_delivered {
        assert!(verdict.is_valid());
    } else {
        assert!(!verdict.is_valid(), "tampered log must be flagged");
    }
}

#[test]
fn goal_reachability_matches_the_paper_claim() {
    // §2.1: deliver(x) is achievable exactly for products with a listed price.
    let short = models::short();
    let db = models::figure1_database();
    for product in ["time", "newsweek", "lemonde"] {
        let goal = Goal::atom(Atom::new("deliver", [Term::constant(Value::str(product))]));
        let witness = is_goal_reachable(&short, &db, &goal).unwrap();
        let witness = witness.expect("every listed product is deliverable");
        let run = short.run(&db, &witness.inputs).unwrap();
        assert!(goal.satisfied_in(run.outputs().last().unwrap()));
    }
    let goal = Goal::atom(Atom::new(
        "deliver",
        [Term::constant(Value::str("economist"))],
    ));
    assert!(is_goal_reachable(&short, &db, &goal).unwrap().is_none());
}

#[test]
fn temporal_property_of_the_introduction() {
    // "No product can be delivered before payment is received" — phrased over
    // the friendly model with a paid-now echo so the current payment counts.
    let audited = SpocusBuilder::new("audited")
        .input("order", 1)
        .input("pay", 2)
        .database("price", 2)
        .database("available", 1)
        .output("sendbill", 2)
        .output("deliver", 1)
        .output("paid-now", 2)
        .log(["sendbill", "pay", "deliver"])
        .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
        .output_rule("deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y)")
        .output_rule("paid-now(X,Y) :- pay(X,Y)")
        .build()
        .unwrap();
    let db = models::figure1_database();
    let property = Formula::forall(
        ["x", "y"],
        Formula::implies(
            Formula::and(vec![
                Formula::atom("deliver", [Term::var("x")]),
                Formula::atom("price", [Term::var("x"), Term::var("y")]),
            ]),
            Formula::or(vec![
                Formula::atom("past-pay", [Term::var("x"), Term::var("y")]),
                Formula::atom("paid-now", [Term::var("x"), Term::var("y")]),
            ]),
        ),
    );
    assert!(holds_in_all_runs(&audited, &db, &property).unwrap().holds());

    // and the concrete Figure-1-style run satisfies it too
    let inputs = models::figure1_inputs();
    let run = audited.run(&db, &inputs).unwrap();
    assert!(run_satisfies(&property, &run, &db).unwrap());
}

#[test]
fn genlang_characterisation_for_the_propositional_example() {
    let t = models::abstar_c();
    assert!(rtx::verify::genlang::check_characterisation(&t, 4).unwrap());
    let dfa = rtx::verify::gen_language_dfa(&t).unwrap();
    assert!(dfa.is_prefix_closed());
    assert!(dfa.has_only_self_loop_cycles());
}
