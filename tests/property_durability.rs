//! Kill-and-recover property sweep for the durable store.
//!
//! The harness runs a randomized insert/retract/checkpoint workload
//! ([`rtx::workloads::crash_churn`]) against a [`DurableStore`] whose
//! storage backend is wrapped in a [`FaultVfs`], and injects a crash at the
//! k-th I/O operation — for **every** k the workload performs, and for both
//! crash flavours (clean kill and torn write).  After each injected crash
//! the store is reopened from the surviving bytes and must recover a state
//! **bit-identical to the committed prefix**: the catalog after exactly the
//! `m` acknowledged operations, where `m` is either the acked count or (when
//! the crash hit after the bytes reached the backend but before the
//! acknowledgement) one more.  Torn final records must be dropped with a
//! report, never an error; everything is deterministic — no flakes.

use rtx::relational::Instance;
use rtx::store::{
    DurableStore, Fault, FaultVfs, FsyncPolicy, MemVfs, RecoveryReport, Store, StoreError,
};
use rtx::workloads::{crash_churn, ChurnOp};
use std::sync::Arc;

const N_OPS: usize = 120;
const SEED: u64 = 0xD15C;

/// Applies one churn op to a durable store, mapping `Checkpoint` to a real
/// checkpoint.  Returns `Err` when the injected fault fires.
fn apply(store: &mut DurableStore, op: &ChurnOp) -> Result<(), StoreError> {
    match op {
        ChurnOp::Create { table, arity } => store.create_table(table.clone(), *arity, None),
        ChurnOp::Insert { table, row } => store.insert(table, row.clone()).map(|_| ()),
        ChurnOp::Retract { table, row } => store.retract(table, row).map(|_| ()),
        ChurnOp::Checkpoint => store.checkpoint(),
    }
}

/// Reference states: `states[m]` is the catalog after the first `m` workload
/// operations, and `journaled[m]` how many of those were journaled data
/// operations (checkpoints are state-neutral and unjournaled).
fn reference_states(ops: &[ChurnOp]) -> (Vec<Instance>, Vec<usize>) {
    let mut store = Store::new();
    let mut states = vec![store.to_instance().expect("empty instance")];
    let mut journaled = vec![0usize];
    let mut data_ops = 0usize;
    for op in ops {
        match op {
            ChurnOp::Create { table, arity } => {
                store
                    .create_table(table.clone(), *arity, None)
                    .expect("churn creates are fresh");
                data_ops += 1;
            }
            ChurnOp::Insert { table, row } => {
                assert!(store
                    .insert(table, row.clone())
                    .expect("churn table exists"));
                data_ops += 1;
            }
            ChurnOp::Retract { table, row } => {
                assert!(store.retract(table, row).expect("churn table exists"));
                data_ops += 1;
            }
            ChurnOp::Checkpoint => {}
        }
        states.push(store.to_instance().expect("instance"));
        journaled.push(data_ops);
    }
    (states, journaled)
}

/// Runs the whole workload against a fault-free counter to learn how many
/// I/O operations a clean run performs — the sweep range.
fn count_io_ops(ops: &[ChurnOp]) -> u64 {
    let counter = FaultVfs::new(MemVfs::new(), u64::MAX, Fault::Error);
    let observed = counter.clone();
    let (mut store, _) =
        DurableStore::open(Arc::new(counter), FsyncPolicy::Always).expect("clean open");
    for op in ops {
        apply(&mut store, op).expect("clean run");
    }
    observed.operations()
}

/// Reopens from the surviving bytes (no faults) and returns the recovered
/// store plus its report.  Recovery after a crash must always succeed.
fn recover(vfs: &MemVfs, k: u64, fault: Fault) -> (DurableStore, RecoveryReport) {
    DurableStore::open(Arc::new(vfs.clone()), FsyncPolicy::Always)
        .unwrap_or_else(|e| panic!("recovery failed after {fault:?} at I/O op {k}: {e}"))
}

#[test]
fn every_crash_point_recovers_the_committed_prefix() {
    let ops = crash_churn(N_OPS, SEED);
    let (states, journaled) = reference_states(&ops);
    let total_io = count_io_ops(&ops);
    assert!(
        total_io > 2 * N_OPS as u64,
        "sweep range sanity: {total_io}"
    );

    let mut torn_tails = 0usize;
    for fault in [Fault::Crash, Fault::TornWrite] {
        for k in 1..=total_io {
            let disk = MemVfs::new();
            let faulty = FaultVfs::new(disk.clone(), k, fault);

            // Drive the workload until the fault kills it.
            let mut acked = 0usize;
            match DurableStore::open(Arc::new(faulty), FsyncPolicy::Always) {
                Err(_) => {} // crashed during the very first open: nothing acked
                Ok((mut store, _)) => {
                    for op in &ops {
                        match apply(&mut store, op) {
                            Ok(()) => acked += 1,
                            Err(e) => {
                                assert!(
                                    matches!(e, StoreError::Io { .. }),
                                    "fault must surface as Io, got {e:?}"
                                );
                                break;
                            }
                        }
                    }
                }
            }

            // Reboot from the surviving bytes: the recovered catalog must be
            // the committed prefix — `acked` operations, or `acked + 1` when
            // the crash hit between persistence and acknowledgement.
            let (recovered, report) = recover(&disk, k, fault);
            torn_tails += usize::from(report.torn_tail.is_some());
            let got = recovered
                .store()
                .to_instance()
                .unwrap_or_else(|e| panic!("recovered catalog unreadable ({fault:?}, k={k}): {e}"));
            let candidates = [acked, (acked + 1).min(ops.len())];
            let matched = candidates.iter().find(|&&m| states[m] == got);
            let m = *matched.unwrap_or_else(|| {
                panic!(
                    "{fault:?} at I/O op {k}: recovered state matches neither \
                     {acked} nor {} committed ops",
                    acked + 1
                )
            });
            // The journal's absolute numbering must agree with the prefix.
            assert_eq!(
                recovered.store().journal().end(),
                journaled[m],
                "{fault:?} at I/O op {k}: journal end diverges from prefix {m}"
            );
        }
    }
    // Torn writes must actually have produced (and survived) torn tails
    // somewhere in the sweep, or the harness is not testing what it claims.
    assert!(torn_tails > 0, "sweep never produced a torn tail");

    // One past the sweep: no fault fires, the full workload commits.
    let disk = MemVfs::new();
    let faulty = FaultVfs::new(disk.clone(), total_io + 1, Fault::Crash);
    let (mut store, _) = DurableStore::open(Arc::new(faulty), FsyncPolicy::Always).unwrap();
    for op in &ops {
        apply(&mut store, op).unwrap();
    }
    drop(store);
    let (recovered, _) = recover(&disk, total_io + 1, Fault::Crash);
    assert_eq!(recovered.store().to_instance().unwrap(), states[ops.len()]);
}

#[test]
fn group_commit_policies_recover_a_consistent_prefix() {
    // Under EveryN/Never the crash may lose acknowledged-but-unsynced
    // operations (that is the documented trade), but the recovered state
    // must still be *some* committed prefix of the workload — never a torn
    // mixture.  MemVfs persists appends immediately, so the prefix is in
    // fact the acked one; the property proved here is prefix-consistency of
    // the bytes recovery accepts.
    let ops = crash_churn(80, SEED ^ 0xBEEF);
    let (states, _) = reference_states(&ops);
    for policy in [FsyncPolicy::EveryN(8), FsyncPolicy::Never] {
        for k in [5u64, 17, 43, 71, 113] {
            let disk = MemVfs::new();
            let faulty = FaultVfs::new(disk.clone(), k, Fault::TornWrite);
            let mut acked = 0usize;
            if let Ok((mut store, _)) = DurableStore::open(Arc::new(faulty), policy) {
                for op in &ops {
                    if apply(&mut store, op).is_err() {
                        break;
                    }
                    acked += 1;
                }
            }
            let (recovered, _) = DurableStore::open(Arc::new(disk.clone()), policy)
                .unwrap_or_else(|e| panic!("recovery failed ({policy:?}, k={k}): {e}"));
            let got = recovered.store().to_instance().unwrap();
            assert!(
                states.contains(&got),
                "{policy:?} at I/O op {k}: recovered state is not a workload prefix \
                 (acked {acked})"
            );
        }
    }
}

#[test]
fn short_reads_never_panic_and_stay_prefix_consistent() {
    // Build a fully committed image, then recover through a backend that
    // short-reads the k-th read.  A short snapshot read fails its checksum
    // (hard error, offset included); a short WAL read looks like a torn
    // tail and recovers a shorter — but still committed — prefix.  Either
    // way: no panic, no fabricated state.
    let ops = crash_churn(60, SEED ^ 0x5EAD);
    let (states, _) = reference_states(&ops);
    let disk = MemVfs::new();
    let (mut store, _) = DurableStore::open(Arc::new(disk.clone()), FsyncPolicy::Always).unwrap();
    let mut checkpoints = 0usize;
    for op in &ops {
        checkpoints += usize::from(matches!(op, ChurnOp::Checkpoint));
        apply(&mut store, op).unwrap();
    }
    assert!(checkpoints > 0, "workload must exercise snapshots");
    drop(store);

    for k in 1..=4u64 {
        let faulty = FaultVfs::new(disk.clone(), k, Fault::ShortRead);
        match DurableStore::open(Arc::new(faulty), FsyncPolicy::Always) {
            Err(StoreError::Corrupt { .. }) | Err(StoreError::Io { .. }) => {}
            Err(other) => panic!("short read at op {k}: unexpected error {other:?}"),
            Ok((recovered, _)) => {
                let got = recovered.store().to_instance().unwrap();
                assert!(
                    states.contains(&got),
                    "short read at op {k}: recovered state is not a workload prefix"
                );
            }
        }
    }

    // Mid-file corruption (not at the tail) is a hard error with an offset.
    let wal_len = disk.len_of("wal").expect("wal exists");
    assert!(wal_len > 64);
    disk.corrupt_byte("wal", 40);
    match DurableStore::open(Arc::new(disk.clone()), FsyncPolicy::Always) {
        Err(StoreError::Corrupt { offset, .. }) => assert!(offset >= 24),
        other => panic!("expected Corrupt, got {other:?}"),
    }
}
