//! Integration tests for §4: enforcing `T_sdi` policies (Theorem 4.1) and
//! verifying properties of error-free runs (Theorems 4.4 and 4.6).

use rtx::core::models;
use rtx::prelude::*;
use rtx::verify::enforce::add_enforcement;
use rtx::verify::error_free::{check_no_negative_state_in_error_rules, error_rules};
use rtx_datalog::{Atom, BodyLiteral};

fn availability_policy() -> SdiConstraint {
    SdiConstraint::new(
        vec![BodyLiteral::Positive(Atom::new("order", [Term::var("x")]))],
        Formula::atom("available", [Term::var("x")]),
    )
    .unwrap()
}

fn price_policy() -> SdiConstraint {
    SdiConstraint::new(
        vec![BodyLiteral::Positive(Atom::new(
            "pay",
            [Term::var("x"), Term::var("y")],
        ))],
        Formula::atom("price", [Term::var("x"), Term::var("y")]),
    )
    .unwrap()
}

#[test]
fn enforcement_equivalence_on_random_sessions() {
    // Theorem 4.1, checked operationally: a run of the policed model is
    // error-free exactly when every step satisfies the policy.
    let short = models::short();
    let db = rtx::workloads::catalog(4, 5);
    let policies = [availability_policy(), price_policy()];
    let policed = add_enforcement(&short, &policies).unwrap();

    for seed in 0..8u64 {
        let inputs = rtx::workloads::customer_session(&db, 3, 4, 0.5, seed);
        let run = policed.run(&db, &inputs).unwrap();
        let base_run = short.run(&db, &inputs).unwrap();
        let satisfied = policies
            .iter()
            .all(|p| p.satisfied_on_run(&base_run, &db).unwrap());
        assert_eq!(run.is_error_free(), satisfied, "seed {seed}");
    }
}

#[test]
fn error_free_runs_satisfy_enforced_policies() {
    let short = models::short();
    let db = models::figure1_database();
    let policed = add_enforcement(&short, &[availability_policy(), price_policy()]).unwrap();
    assert!(check_no_negative_state_in_error_rules(&policed).is_ok());
    assert_eq!(error_rules(&policed).len(), 2);

    for policy in [availability_policy(), price_policy()] {
        assert!(error_free_runs_satisfy(&policed, &db, &policy)
            .unwrap()
            .holds());
    }
    // but the unpoliced model does not enforce either policy
    for policy in [availability_policy(), price_policy()] {
        assert!(!error_free_runs_satisfy(&short, &db, &policy)
            .unwrap()
            .holds());
    }
}

#[test]
fn error_free_containment_is_ordered_by_strictness() {
    let short = models::short();
    let db = models::figure1_database();
    let lenient = add_enforcement(&short, &[availability_policy()]).unwrap();
    let strict = add_enforcement(&short, &[availability_policy(), price_policy()]).unwrap();

    // every error-free run of the strict model is error-free for the lenient one
    assert!(error_free_containment(&strict, &lenient, &db)
        .unwrap()
        .holds());
    // but not conversely: paying a wrong price is fine for the lenient model
    // and an error for the strict one
    match error_free_containment(&lenient, &strict, &db).unwrap() {
        rtx::verify::ErrorFreeVerdict::Violated {
            counterexample_inputs,
        } => {
            let lenient_run = lenient.run(&db, &counterexample_inputs).unwrap();
            let strict_run = strict.run(&db, &counterexample_inputs).unwrap();
            assert!(lenient_run.is_error_free());
            assert!(!strict_run.is_error_free());
        }
        rtx::verify::ErrorFreeVerdict::Holds => panic!("expected a separating run"),
    }
}

#[test]
fn paper_example_policies_compile_and_enforce() {
    // §4.1, example 3: "if the purchase of x is cancelled then x was
    // previously ordered" — over a model extended with a cancel input.
    let cancellable = SpocusBuilder::new("cancellable")
        .input("order", 1)
        .input("pay", 2)
        .input("cancel", 1)
        .database("price", 2)
        .database("available", 1)
        .output("sendbill", 2)
        .output("deliver", 1)
        .log(["sendbill", "pay", "deliver"])
        .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
        .output_rule(
            "deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y), NOT past-cancel(X)",
        )
        .build()
        .unwrap();
    let policy = SdiConstraint::new(
        vec![BodyLiteral::Positive(Atom::new("cancel", [Term::var("x")]))],
        Formula::atom("past-order", [Term::var("x")]),
    )
    .unwrap();
    let policed = add_enforcement(&cancellable, std::slice::from_ref(&policy)).unwrap();

    let db = models::figure1_database();
    let schema = policed.schema().input().clone();
    // cancelling before ordering trips the error rule
    let mut bad_step = Instance::empty(&schema);
    bad_step
        .insert("cancel", Tuple::from_iter(["time"]))
        .unwrap();
    let bad = InstanceSequence::new(schema.clone(), vec![bad_step]).unwrap();
    assert!(!policed.run(&db, &bad).unwrap().is_error_free());

    // ordering and later cancelling is fine
    let mut step1 = Instance::empty(&schema);
    step1.insert("order", Tuple::from_iter(["time"])).unwrap();
    let mut step2 = Instance::empty(&schema);
    step2.insert("cancel", Tuple::from_iter(["time"])).unwrap();
    let good = InstanceSequence::new(schema, vec![step1, step2]).unwrap();
    assert!(policed.run(&db, &good).unwrap().is_error_free());

    // the policy has a positive state consequent, so its error rule has a
    // negative state literal and Theorem 4.4's procedure must refuse it
    assert!(check_no_negative_state_in_error_rules(&policed).is_err());
}
