//! Integration tests for the resident runtime: cross-session equivalence
//! with one-shot runs (randomly interleaved and multi-threaded), the
//! delta-only join guarantee of incremental steps, amortized index
//! preparation across runs, and the store → resident bridge.

use proptest::prelude::*;
use rtx::core::Runtime;
use rtx::datalog::ResidentDb;
use rtx::prelude::*;
use rtx::store::Store;
use std::sync::Arc;

fn model() -> SpocusTransducer {
    rtx::workloads::category_model()
}

/// N isolated one-shot runs of the fleet.
fn isolated_runs(db: &Instance, fleet: &[InstanceSequence]) -> Vec<Run> {
    let transducer = model();
    fleet
        .iter()
        .map(|inputs| transducer.run(db, inputs).unwrap())
        .collect()
}

proptest! {
    /// N sessions interleaved in an arbitrary order over one shared
    /// `ResidentDb` produce bit-identical runs to N isolated `run()` calls.
    #[test]
    fn interleaved_sessions_match_isolated_runs(
        sessions in 2usize..5,
        steps in 1usize..5,
        schedule in proptest::collection::vec(0usize..16, 0..24),
        seed in 0u64..1000,
    ) {
        let products = 12;
        let db = rtx::workloads::category_catalog(products, 3, seed);
        let fleet = rtx::workloads::session_fleet(&db, sessions, steps, products, 0.8, seed);
        let expected = isolated_runs(&db, &fleet);

        let runtime = Runtime::new(ResidentDb::new(db));
        let transducer = Arc::new(model());
        let mut open: Vec<_> = (0..sessions)
            .map(|i| {
                runtime
                    .open_session(format!("customer-{i}"), Arc::clone(&transducer))
                    .unwrap()
            })
            .collect();
        let mut cursor = vec![0usize; sessions];

        // Feed steps in the generated interleaving, then flush what is left.
        let flush: Vec<usize> = (0..sessions).cycle().take(sessions * steps).collect();
        for pick in schedule.iter().copied().chain(flush) {
            let s = pick % sessions;
            if cursor[s] < steps {
                open[s].step(fleet[s].get(cursor[s]).unwrap()).unwrap();
                cursor[s] += 1;
            }
        }

        for (session, expected) in open.iter().zip(&expected) {
            prop_assert_eq!(session.len(), expected.len());
            prop_assert_eq!(&session.run().unwrap(), expected,
                "session run diverged from the isolated run");
        }
    }
}

/// Sessions stepped concurrently from multiple threads against one shared
/// resident database reproduce the isolated runs bit-for-bit.
#[test]
fn concurrent_sessions_match_isolated_runs() {
    let products = 60;
    let sessions = 8;
    let steps = 12;
    let db = rtx::workloads::category_catalog(products, 6, 42);
    let fleet = rtx::workloads::session_fleet(&db, sessions, steps, products, 0.9, 42);
    let expected = isolated_runs(&db, &fleet);

    let runtime = Runtime::new(ResidentDb::new(db));
    let transducer = Arc::new(model());
    let produced: Vec<Run> = std::thread::scope(|scope| {
        let handles: Vec<_> = fleet
            .iter()
            .enumerate()
            .map(|(i, inputs)| {
                let mut session = runtime
                    .open_session(format!("thread-{i}"), Arc::clone(&transducer))
                    .unwrap();
                scope.spawn(move || {
                    for input in inputs.iter() {
                        session.step(input).unwrap();
                    }
                    session.run().unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(runtime.session_count(), 0, "sessions released on drop");
    assert_eq!(produced, expected);
}

/// The parallel-strata stress test: N sessions stepped concurrently from N
/// threads, each evaluating its steps under an aggressive worker-pool policy
/// (4 workers, zero threshold — every pass fans out), all over one shared
/// `ResidentDb`.  Nested parallelism (pools inside session threads) must not
/// deadlock, and every run must be bit-identical to the isolated sequential
/// one-shot runs.
#[test]
fn concurrent_parallel_sessions_match_isolated_sequential_runs() {
    let products = 60;
    let sessions = 8;
    let steps = 10;
    let db = rtx::workloads::category_catalog(products, 6, 7);
    let fleet = rtx::workloads::session_fleet(&db, sessions, steps, products, 0.9, 7);
    let expected = isolated_runs(&db, &fleet);

    let policy = rtx::datalog::Parallelism::threads(4).with_threshold(0);
    let runtime = Runtime::shared_with(Arc::new(ResidentDb::new(db)), policy);
    assert_eq!(runtime.parallelism(), policy);
    let transducer = Arc::new(model());
    let produced: Vec<Run> = std::thread::scope(|scope| {
        let handles: Vec<_> = fleet
            .iter()
            .enumerate()
            .map(|(i, inputs)| {
                let mut session = runtime
                    .open_session(format!("parallel-{i}"), Arc::clone(&transducer))
                    .unwrap();
                scope.spawn(move || {
                    for input in inputs.iter() {
                        session.step(input).unwrap();
                    }
                    session.run().unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(runtime.session_count(), 0, "sessions released on drop");
    assert_eq!(
        produced, expected,
        "parallel concurrent sessions diverged from sequential isolated runs"
    );

    // The one-shot parallel entry point agrees too.
    let resident = transducer
        .compiled_output_program()
        .prepare(expected[0].db());
    for (inputs, expected) in fleet.iter().zip(&expected) {
        let run = transducer
            .run_resident_with(&resident, inputs, policy)
            .unwrap();
        assert_eq!(&run, expected);
    }
}

/// The derivation-counter pin: after the caches are seeded, step *i+1* joins
/// only against the step's `past-R` delta — a from-scratch evaluation would
/// re-derive the whole (growing) output every step.
#[test]
fn incremental_steps_join_only_the_delta() {
    let transducer = SpocusBuilder::new("loyalty")
        .input("touch", 1)
        .database("base", 1)
        .output("seen", 1)
        .output_rule("seen(X) :- past-touch(X), base(X)")
        .log(["seen"])
        .build()
        .unwrap();

    let db_schema = Schema::from_pairs([("base", 1)]).unwrap();
    let mut db = Instance::empty(&db_schema);
    for name in ["a", "b", "c", "d", "e"] {
        db.insert("base", Tuple::from_iter([name])).unwrap();
    }

    let input_schema = transducer.schema().input().clone();
    let step_of = |names: &[&str]| {
        let mut inst = Instance::empty(&input_schema);
        for n in names {
            inst.insert("touch", Tuple::from_iter([*n])).unwrap();
        }
        inst
    };

    let runtime = Runtime::new(ResidentDb::new(db));
    let mut session = runtime.open_session("pinned", transducer).unwrap();

    // Step 1 seeds the cache against the empty state: zero derivations.
    let out = session.step(&step_of(&["a", "b", "c"])).unwrap();
    assert!(out.relation("seen").unwrap().is_empty());
    assert_eq!(session.last_stats().tuples_derived, 0);

    // Step 2's delta is {a, b, c}: exactly three join derivations.
    let out = session.step(&step_of(&["d"])).unwrap();
    assert_eq!(out.relation("seen").unwrap().len(), 3);
    assert_eq!(session.last_stats().tuples_derived, 3);

    // Step 3's delta is {d}: one derivation, although the full output now
    // has four tuples (a re-derivation would have counted all four).
    let out = session.step(&step_of(&[])).unwrap();
    assert_eq!(out.relation("seen").unwrap().len(), 4);
    assert_eq!(session.last_stats().tuples_derived, 1);

    // An empty delta joins nothing at all; the output stands.
    let out = session.step(&step_of(&["a"])).unwrap();
    assert_eq!(out.relation("seen").unwrap().len(), 4);
    assert_eq!(session.last_stats().tuples_derived, 0);

    // Writes to relations the program never reads leave the step caches
    // alive: invalidation is per relation, not per database.
    let db = runtime.database();
    db.ensure_relation("audit-log", 1).unwrap();
    db.insert("audit-log", Tuple::from_iter(["noise"])).unwrap();
    let out = session.step(&step_of(&[])).unwrap();
    assert_eq!(out.relation("seen").unwrap().len(), 4);
    assert_eq!(
        session.last_stats().tuples_derived,
        0,
        "an unrelated catalog write must not reseed the session caches"
    );
}

/// Resident preparation is amortized: 100 runs over a 10k-product catalog
/// build the non-prefix `category` index exactly once, and a catalog
/// mutation triggers exactly one rebuild of the touched relation's index.
#[test]
fn resident_preparation_is_amortized_across_100_runs() {
    let products = 10_000;
    let transducer = model();
    let db = rtx::workloads::category_catalog(products, 50, 1);
    let fleet = rtx::workloads::session_fleet(&db, 100, 2, products, 0.9, 3);

    let resident = transducer.compiled_output_program().prepare(&db);
    assert_eq!(resident.index_builds(), 1, "category/[1] built at prepare");

    let runs: Vec<Run> = fleet
        .iter()
        .map(|inputs| transducer.run_resident(&resident, inputs).unwrap())
        .collect();
    assert_eq!(
        resident.index_builds(),
        1,
        "100 resident runs must not rebuild the prepared index"
    );

    // Spot-check equivalence with the one-shot path on the first session.
    assert_eq!(runs[0], transducer.run(&db, &fleet[0]).unwrap());

    // A catalog write invalidates exactly the touched relation's index once.
    resident
        .insert("category", Tuple::from_iter(["cat-0", "brand-new-product"]))
        .unwrap();
    transducer.run_resident(&resident, &fleet[0]).unwrap();
    transducer.run_resident(&resident, &fleet[1]).unwrap();
    assert_eq!(resident.index_builds(), 2);
}

/// Store → resident bridge: journal replay keeps a runtime's shared database
/// current, and sessions observe the synced rows at their next step.
#[test]
fn store_bridge_feeds_the_runtime() {
    let mut store = Store::new();
    store.create_table("price", 2, None).unwrap();
    store.create_table("available", 1, None).unwrap();
    store.create_table("category", 2, None).unwrap();
    store
        .insert(
            "price",
            Tuple::new(vec![Value::str("time"), Value::int(855)]),
        )
        .unwrap();
    store
        .insert("available", Tuple::from_iter(["time"]))
        .unwrap();
    store
        .insert("category", Tuple::from_iter(["news", "time"]))
        .unwrap();

    let (resident, mut sync) = store.to_resident().unwrap();
    let runtime = Runtime::shared(Arc::new(resident));
    let mut session = runtime.open_session("bridged", model()).unwrap();

    let input_schema = rtx::core::models::short_input_schema();
    let mut order = Instance::empty(&input_schema);
    order
        .insert("order", Tuple::from_iter(["economist"]))
        .unwrap();

    // Unknown product: no bill.
    let out = session.step(&order).unwrap();
    assert!(out.relation("sendbill").unwrap().is_empty());

    // The catalog team prices it in the store; sync the journal suffix.
    store
        .insert(
            "price",
            Tuple::new(vec![Value::str("economist"), Value::int(700)]),
        )
        .unwrap();
    let applied = sync.sync(&store, runtime.database()).unwrap();
    assert_eq!(applied, 1);

    let out = session.step(&order).unwrap();
    assert!(out.holds(
        "sendbill",
        &Tuple::new(vec![Value::str("economist"), Value::int(700)])
    ));
}
