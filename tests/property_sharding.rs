//! Property-based tests for the sharded session runtime: a fleet spread
//! across 1, 2 or 8 shards must be **bit-identical**, session by session and
//! step by step, to the same fleet on a single unsharded [`Runtime`] — with
//! catalog mutations landing on the shared resident database mid-run, and
//! with monitored and demand-driven sessions in the mix.  Sharding is a
//! placement decision; it must never show through in any output.

use proptest::prelude::*;
use rtx::datalog::{Parallelism, ResidentDb};
use rtx::prelude::*;
use rtx::workloads::scenarios::Scenario;
use rtx::workloads::{browse_session, catalog_mutations, customer_session, CatalogOp};
use rtx_front::{combined_catalog, lookup_model};
use std::sync::Arc;

/// One session of the simulated fleet: which model to open (and how) plus
/// its deterministic input sequence.
struct Plan {
    name: String,
    model: &'static str,
    demanded: bool,
    monitored: bool,
    inputs: InstanceSequence,
}

/// Cycles the fleet through every kind of session the front-end can serve:
/// plain `short`/`category` customers, **demand-driven** `storefront`
/// browsers, and the four **monitored** guardrail scenarios (clean traffic).
fn fleet_plans(n_sessions: usize, steps: usize, seed: u64, catalog: &Instance) -> Vec<Plan> {
    let scenarios = Scenario::all();
    (0..n_sessions)
        .map(|i| {
            let session_seed = seed + i as u64;
            match i % 4 {
                0 => Plan {
                    name: format!("short-{i}"),
                    model: "short",
                    demanded: false,
                    monitored: false,
                    inputs: customer_session(catalog, steps, 200, 0.9, session_seed),
                },
                1 => Plan {
                    name: format!("storefront-{i}"),
                    model: "storefront",
                    demanded: true,
                    monitored: false,
                    inputs: browse_session(steps, 200, session_seed),
                },
                2 => Plan {
                    name: format!("category-{i}"),
                    model: "category",
                    demanded: false,
                    monitored: false,
                    inputs: customer_session(catalog, steps, 200, 0.9, session_seed),
                },
                _ => {
                    let scenario = &scenarios[(i / 4) % scenarios.len()];
                    Plan {
                        name: format!("{}-{i}", scenario.name),
                        model: scenario.name,
                        demanded: false,
                        monitored: true,
                        inputs: scenario.clean_inputs.clone(),
                    }
                }
            }
        })
        .collect()
}

/// Applies one chunk of the mutation stream to a shared resident database.
fn apply_ops(db: &Arc<ResidentDb>, ops: &[CatalogOp]) {
    for op in ops {
        let (removes, adds) = op.price_deltas();
        for row in removes {
            db.retract("price", &row).unwrap();
        }
        for row in adds {
            db.insert("price", row).unwrap();
        }
    }
}

/// Runs the whole fleet round-robin on one runtime (unsharded when
/// `shards == None`), applying the `r`-th chunk of the mutation stream
/// before round `r`, and returns every session's outputs in step order.
fn run_fleet(
    plans: &[Plan],
    ops: &[CatalogOp],
    catalog: &Instance,
    shards: Option<usize>,
) -> (Vec<Vec<Instance>>, RuntimeHealth) {
    let db = Arc::new(ResidentDb::new(catalog.clone()));
    let scenarios = Scenario::all();

    // `Either`-free dispatch: open all sessions up front, on the sharded or
    // the plain runtime, and erase the difference behind closures.
    enum Fleet {
        Plain(Runtime, Vec<Session>),
        Sharded(ShardedRuntime, Vec<ShardedSession>),
    }
    let mut fleet = match shards {
        None => Fleet::Plain(
            Runtime::shared_with(Arc::clone(&db), Parallelism::default()),
            Vec::new(),
        ),
        Some(n) => Fleet::Sharded(
            ShardedRuntime::shared_with(Arc::clone(&db), n, Parallelism::default()),
            Vec::new(),
        ),
    };
    for plan in plans {
        let transducer = lookup_model(plan.model)
            .expect("planned models exist")
            .transducer;
        let monitor = plan.monitored.then(|| {
            let scenario = scenarios
                .iter()
                .find(|s| s.name == plan.model)
                .expect("monitored plans are scenarios");
            scenario.monitor(&db).expect("scenario monitors build")
        });
        match &mut fleet {
            Fleet::Plain(runtime, sessions) => {
                let mut session = if plan.demanded {
                    runtime
                        .open_session_with_demand(
                            plan.name.clone(),
                            transducer,
                            rtx::workloads::storefront_demand(),
                        )
                        .unwrap()
                } else {
                    runtime.open_session(plan.name.clone(), transducer).unwrap()
                };
                if let Some(monitor) = monitor {
                    session.set_monitor_policy(MonitorPolicy::Observe);
                    session.attach_observer(Box::new(monitor));
                }
                sessions.push(session);
            }
            Fleet::Sharded(runtime, sessions) => {
                let mut session = if plan.demanded {
                    runtime
                        .open_session_with_demand(
                            plan.name.clone(),
                            transducer,
                            rtx::workloads::storefront_demand(),
                        )
                        .unwrap()
                } else {
                    runtime.open_session(plan.name.clone(), transducer).unwrap()
                };
                if let Some(monitor) = monitor {
                    session.set_monitor_policy(MonitorPolicy::Observe);
                    session.attach_observer(Box::new(monitor));
                }
                sessions.push(session);
            }
        }
    }

    let rounds = plans.iter().map(|p| p.inputs.len()).max().unwrap_or(0);
    let chunk = ops.len().checked_div(rounds).unwrap_or(0);
    let mut outputs: Vec<Vec<Instance>> = plans.iter().map(|_| Vec::new()).collect();
    for round in 0..rounds {
        // Mid-run catalog mutations: the `round`-th chunk of the stream, in
        // stream order, lands on the shared database before the round.
        let lo = round * chunk;
        let hi = if round + 1 == rounds {
            ops.len()
        } else {
            lo + chunk
        };
        apply_ops(&db, &ops[lo..hi]);
        for (i, plan) in plans.iter().enumerate() {
            if let Some(input) = plan.inputs.get(round) {
                let out = match &mut fleet {
                    Fleet::Plain(_, sessions) => sessions[i].step(input).unwrap(),
                    Fleet::Sharded(_, sessions) => sessions[i].step(input).unwrap(),
                };
                outputs[i].push(out);
            }
        }
    }
    let health = match &fleet {
        Fleet::Plain(runtime, _) => runtime.health(),
        Fleet::Sharded(runtime, _) => runtime.health(),
    };
    (outputs, health)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// The sharding transparency contract: for random fleet sizes, step
    /// counts, input seeds and mutation streams, a fleet sharded 1, 2 or 8
    /// ways produces, for **every** session, the exact output instances the
    /// unsharded runtime produces — catalog mutations reach every shard at
    /// the same step boundary, demand-driven sessions stay demand-driven,
    /// and monitors ride along without perturbing anything.
    #[test]
    fn sharded_fleets_are_bit_identical_to_the_unsharded_runtime(
        n_sessions in 2usize..7,
        steps in 1usize..4,
        seed in 0u64..64,
        n_ops in 0usize..8,
    ) {
        let catalog = combined_catalog();
        let plans = fleet_plans(n_sessions, steps, seed, &catalog);
        let ops = catalog_mutations(&catalog, n_ops, seed ^ 0x5eed);

        let (reference, reference_health) = run_fleet(&plans, &ops, &catalog, None);
        prop_assert_eq!(reference_health.active_sessions, n_sessions);
        prop_assert!(reference_health.quarantined_sessions.is_empty());

        for shards in [1usize, 2, 8] {
            let (sharded, health) = run_fleet(&plans, &ops, &catalog, Some(shards));
            prop_assert_eq!(health.active_sessions, n_sessions);
            prop_assert!(health.quarantined_sessions.is_empty());
            prop_assert_eq!(health.violations, reference_health.violations);
            for (i, plan) in plans.iter().enumerate() {
                prop_assert_eq!(
                    &sharded[i], &reference[i],
                    "session `{}` drifted under {} shards", plan.name, shards
                );
            }
        }
    }
}
