//! Integration tests for the online verification monitors and runtime
//! guardrails: monitored sessions are bit-identical to unmonitored ones
//! (including under thread-level parallelism and mid-run catalog mutations),
//! the monitor's incremental log check joins only the per-step delta,
//! enforcement rejects illegal inputs with a typed error naming the
//! constraint, and the runtime health snapshot tracks it all.

use proptest::prelude::*;
use rtx::core::Runtime;
use rtx::datalog::{Parallelism, ResidentDb};
use rtx::prelude::*;
use rtx::workloads::scenarios::Scenario;
use std::sync::Arc;

/// Opens a session with a constraint-free [`SessionMonitor`] attached in
/// observe mode.
fn open_monitored(
    runtime: &Runtime,
    db: &Arc<ResidentDb>,
    name: &str,
    transducer: &Arc<SpocusTransducer>,
    parallelism: Parallelism,
) -> rtx::core::Session {
    let mut session = runtime.open_session(name, Arc::clone(transducer)).unwrap();
    session.set_monitor_policy(MonitorPolicy::Observe);
    let monitor = SessionMonitor::new(Arc::clone(transducer), Arc::clone(db))
        .unwrap()
        .with_parallelism(parallelism);
    session.attach_observer(Box::new(monitor));
    session
}

proptest! {
    /// A monitored session produces bit-identical runs to an unmonitored
    /// one, stepped under an 8-thread evaluation policy — the monitor is an
    /// observer, never a participant.
    #[test]
    fn monitored_sessions_are_bit_identical_to_unmonitored(
        sessions in 1usize..4,
        steps in 1usize..5,
        seed in 0u64..500,
    ) {
        let products = 10;
        let db = rtx::workloads::category_catalog(products, 3, seed);
        let fleet = rtx::workloads::session_fleet(&db, sessions, steps, products, 0.8, seed);
        let transducer = Arc::new(rtx::workloads::category_model());
        let policy = Parallelism::threads(8);

        let plain_db = Arc::new(ResidentDb::new(db.clone()));
        let plain_rt = Runtime::shared_with(Arc::clone(&plain_db), policy);
        let mon_db = Arc::new(ResidentDb::new(db));
        let mon_rt = Runtime::shared_with(Arc::clone(&mon_db), policy);

        for (i, inputs) in fleet.iter().enumerate() {
            let mut plain = plain_rt
                .open_session(format!("plain-{i}"), Arc::clone(&transducer))
                .unwrap();
            let mut monitored =
                open_monitored(&mon_rt, &mon_db, &format!("mon-{i}"), &transducer, policy);
            for input in inputs.iter() {
                let a = plain.step(input).unwrap();
                let b = monitored.step(input).unwrap();
                prop_assert_eq!(a, b);
            }
            // An honest session never trips the log monitor.
            prop_assert!(monitored.violations().is_empty());
            prop_assert_eq!(plain.run().unwrap(), monitored.run().unwrap());
        }
    }
}

/// Catalog writes landing mid-run are seen identically by the monitored and
/// the unmonitored session: the monitor's shadow caches reseed on staleness
/// instead of drifting.
#[test]
fn monitoring_is_transparent_under_mid_run_catalog_mutations() {
    let products = 12;
    let db = rtx::workloads::category_catalog(products, 3, 11);
    let delisted_price = rtx::workloads::price_of(&db, "p0").unwrap();
    let inputs = rtx::workloads::customer_session(&db, 6, products, 0.9, 13);
    let transducer = Arc::new(rtx::workloads::category_model());
    let policy = Parallelism::threads(8);

    let plain_db = Arc::new(ResidentDb::new(db.clone()));
    let plain_rt = Runtime::shared_with(Arc::clone(&plain_db), policy);
    let mon_db = Arc::new(ResidentDb::new(db));
    let mon_rt = Runtime::shared_with(Arc::clone(&mon_db), policy);

    let mut plain = plain_rt
        .open_session("plain", Arc::clone(&transducer))
        .unwrap();
    let mut monitored = open_monitored(&mon_rt, &mon_db, "monitored", &transducer, policy);

    for (i, input) in inputs.iter().enumerate() {
        if i == 3 {
            // Same mutation batch against both catalogs: list one product,
            // delist another.
            for handle in [&plain_db, &mon_db] {
                handle
                    .insert(
                        "price",
                        Tuple::new(vec![Value::str("brand-new"), Value::int(42)]),
                    )
                    .unwrap();
                handle
                    .insert("category", Tuple::from_iter(["cat-0", "brand-new"]))
                    .unwrap();
                assert!(handle
                    .retract(
                        "price",
                        &Tuple::new(vec![Value::str("p0"), Value::int(delisted_price)]),
                    )
                    .unwrap());
            }
        }
        let a = plain.step(input).unwrap();
        let b = monitored.step(input).unwrap();
        assert_eq!(a, b, "outputs diverged at step {i}");
    }
    assert!(monitored.violations().is_empty());
    assert_eq!(plain.run().unwrap(), monitored.run().unwrap());
}

/// The derivation-counter pin for the monitor itself: once its shadow caches
/// are seeded, each observed step costs joins against that step's delta only.
/// A from-scratch log validation would re-derive the whole (constant-size
/// here, growing in general) logged output at every step.
#[test]
fn monitor_log_checking_joins_only_the_delta() {
    let transducer = Arc::new(
        SpocusBuilder::new("loyalty")
            .input("touch", 1)
            .database("base", 1)
            .output("seen", 1)
            .output_rule("seen(X) :- past-touch(X), base(X)")
            .log(["seen"])
            .build()
            .unwrap(),
    );
    let mut db = Instance::empty(&Schema::from_pairs([("base", 1)]).unwrap());
    for name in ["a", "b", "c", "d", "e"] {
        db.insert("base", Tuple::from_iter([name])).unwrap();
    }

    let input_schema = transducer.schema().input().clone();
    let step_of = |names: &[&str]| {
        let mut inst = Instance::empty(&input_schema);
        for n in names {
            inst.insert("touch", Tuple::from_iter([*n])).unwrap();
        }
        inst
    };
    // One touching step, then a long quiet tail.
    let mut steps = vec![step_of(&["a", "b", "c"])];
    steps.extend((0..11).map(|_| step_of(&[])));
    let inputs = InstanceSequence::new(input_schema.clone(), steps).unwrap();
    let run = transducer.run(&db, &inputs).unwrap();

    let resident = Arc::new(ResidentDb::new(db));
    let mut monitor = SessionMonitor::new(Arc::clone(&transducer), resident).unwrap();
    let mut work_per_step = Vec::new();
    let mut last = 0;
    for (i, step) in run.steps().enumerate() {
        let violations = monitor.observe(i, step.input, step.output).unwrap();
        assert!(violations.is_empty(), "honest step {i} flagged");
        work_per_step.push(monitor.work() - last);
        last = monitor.work();
    }

    // Step 0 seeds against the empty state; step 1 joins the {a,b,c} delta;
    // every later step has an empty delta and must cost zero derivations,
    // even though the logged `seen` output holds three tuples throughout.
    assert_eq!(work_per_step[0], 0);
    assert_eq!(work_per_step[1], 3);
    assert_eq!(&work_per_step[2..], &[0; 10]);

    // The symbolic cursor tracked the whole run; the offline audit agrees.
    assert_eq!(monitor.steps(), run.len());
    assert!(monitor.audit(run.db()).unwrap().is_valid());
}

/// Under `MonitorPolicy::Enforce`, an input driving the run into an error
/// state is refused with a typed rejection naming the violated constraint,
/// before the session advances.
#[test]
fn enforcement_rejects_illegal_inputs_with_a_typed_error() {
    for scenario in Scenario::all() {
        let db = Arc::new(ResidentDb::new(scenario.database.clone()));
        let runtime = Runtime::shared(Arc::clone(&db));
        let mut session = runtime
            .open_session(scenario.name, Arc::clone(&scenario.transducer))
            .unwrap();
        session.set_monitor_policy(MonitorPolicy::Enforce);
        session.attach_observer(Box::new(scenario.monitor(&db).unwrap()));

        let last = scenario.violating_inputs.len() - 1;
        for (i, input) in scenario.violating_inputs.iter().enumerate() {
            if i < last {
                session.step(input).unwrap();
                continue;
            }
            let err = session.step(input).unwrap_err();
            let rendered = err.to_string();
            match err {
                rtx::core::CoreError::StepRejected {
                    step, constraint, ..
                } => {
                    assert_eq!(step, last);
                    assert_eq!(constraint, scenario.violated_constraint);
                }
                other => panic!("{}: expected StepRejected, got {other:?}", scenario.name),
            }
            assert!(
                rendered.contains(scenario.violated_constraint),
                "{rendered}"
            );
        }
        assert_eq!(session.len(), last, "the rejected step must not advance");
    }
}

/// The runtime health snapshot aggregates monitor activity across sessions:
/// observed violations, enforced rejections, and the live session census.
#[test]
fn runtime_health_tracks_violations_and_rejections() {
    let scenario = rtx::workloads::scenarios::auction_scenario();
    let db = Arc::new(ResidentDb::new(scenario.database.clone()));
    let runtime = Runtime::shared(Arc::clone(&db));
    assert_eq!(runtime.health(), RuntimeHealth::default());

    let mut watcher = runtime
        .open_session("watcher", Arc::clone(&scenario.transducer))
        .unwrap();
    watcher.set_monitor_policy(MonitorPolicy::Observe);
    watcher.attach_observer(Box::new(scenario.monitor(&db).unwrap()));
    let mut gate = runtime
        .open_session("gate", Arc::clone(&scenario.transducer))
        .unwrap();
    gate.set_monitor_policy(MonitorPolicy::Enforce);
    gate.attach_observer(Box::new(scenario.monitor(&db).unwrap()));

    for input in scenario.violating_inputs.iter() {
        watcher.step(input).unwrap();
    }
    let last = scenario.violating_inputs.len() - 1;
    for (i, input) in scenario.violating_inputs.iter().enumerate() {
        let result = gate.step(input);
        assert_eq!(result.is_err(), i == last);
    }

    let health = runtime.health();
    assert_eq!(health.active_sessions, 2);
    assert!(health.quarantined_sessions.is_empty());
    // One sniping violation observed by the watcher, one recorded and then
    // rejected by the gate.
    assert_eq!(health.violations, 2);
    assert_eq!(health.rejections, 1);
}
