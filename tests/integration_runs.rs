//! Integration tests spanning the whole stack: the paper's worked runs
//! (Figures 1 and 2), the DSL, the store substrate, and the log machinery.

use rtx::core::models;
use rtx::prelude::*;
use rtx::store::Store;

#[test]
fn figure1_exchange_end_to_end() {
    let short = models::short();
    let db = models::figure1_database();
    let run = short.run(&db, &models::figure1_inputs()).unwrap();

    // The shape of Figure 1: bills at step 1, delivery of Time at step 2,
    // a bill for Le Monde at step 3, delivery of Newsweek at step 4.
    assert_eq!(run.len(), 4);
    assert_eq!(
        run.outputs()
            .get(0)
            .unwrap()
            .relation("sendbill")
            .unwrap()
            .len(),
        2
    );
    assert!(run
        .outputs()
        .get(1)
        .unwrap()
        .holds("deliver", &Tuple::from_iter(["time"])));
    assert!(run.outputs().get(2).unwrap().holds(
        "sendbill",
        &Tuple::new(vec![Value::str("lemonde"), Value::int(8350)])
    ));
    assert!(run
        .outputs()
        .get(3)
        .unwrap()
        .holds("deliver", &Tuple::from_iter(["newsweek"])));

    // The log only contains the three designated relations.
    assert_eq!(run.log().schema().len(), 3);
    for step in run.log().iter() {
        assert!(step.relation("order").is_none());
    }
}

#[test]
fn figure2_warnings_end_to_end() {
    let friendly = models::friendly();
    let db = models::figure1_database();
    let run = friendly.run(&db, &models::figure2_inputs()).unwrap();
    let all_outputs: Vec<String> = run
        .outputs()
        .iter()
        .flat_map(|o| {
            o.iter()
                .filter(|(_, rel)| !rel.is_empty())
                .map(|(name, _)| name.as_str().to_string())
                .collect::<Vec<_>>()
        })
        .collect();
    for expected in [
        "sendbill",
        "deliver",
        "unavailable",
        "rejectpay",
        "alreadypaid",
        "rebill",
    ] {
        assert!(
            all_outputs.iter().any(|o| o == expected),
            "{expected} never produced in the Figure 2 run"
        );
    }
}

#[test]
fn dsl_and_builder_agree_on_short() {
    let parsed = rtx::core::parse_transducer(models::SHORT_PROGRAM).unwrap();
    let db = models::figure1_database();
    let inputs = models::figure1_inputs();
    let a = parsed.run(&db, &inputs).unwrap();
    let b = models::short().run(&db, &inputs).unwrap();
    assert_eq!(a.outputs(), b.outputs());
    assert_eq!(a.log(), b.log());
}

#[test]
fn catalog_can_live_in_the_store_substrate() {
    // Load the Figure 1 catalog into the relational store, journal it, replay
    // it, and run the transducer against the replayed catalog.
    let db = models::figure1_database();
    let store = Store::from_instance(&db).unwrap();
    let replayed = Store::replay(store.journal()).unwrap();
    assert_eq!(replayed.to_instance().unwrap(), db);

    let run = models::short()
        .run(&replayed.to_instance().unwrap(), &models::figure1_inputs())
        .unwrap();
    assert!(run.ever_outputs("deliver", &Tuple::from_iter(["time"])));
}

#[test]
fn propositional_example_generates_prefixes_of_abstar_c() {
    let t = models::abstar_c();
    let words = t.generate_words(3).unwrap();
    assert!(words.contains(&vec!["a".to_string(), "b".to_string(), "c".to_string()]));
    assert!(!words.contains(&vec!["b".to_string()]));
    // prefix closed
    for w in &words {
        for cut in 0..w.len() {
            assert!(words.contains(&w[..cut]));
        }
    }
}

#[test]
fn control_disciplines_on_friendly() {
    // friendly never outputs error/ok/accept, so: error-free always, ok never
    // (on non-empty runs), accepted never.
    let friendly = models::friendly();
    let db = models::figure1_database();
    let run = friendly.run(&db, &models::figure2_inputs()).unwrap();
    assert!(ControlDiscipline::ErrorFree.accepts(&run));
    assert!(!ControlDiscipline::OkAtEveryStep.accepts(&run));
    assert!(!ControlDiscipline::AcceptAtEnd.accepts(&run));
}
