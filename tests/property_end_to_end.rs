//! Property-based tests over the whole stack: randomly generated catalogs and
//! customer sessions must uphold the paper's invariants.

use proptest::prelude::*;
use rtx::core::models;
use rtx::prelude::*;
use rtx::verify::log_validation::log_matches;

/// Strategy: a small catalog (product names p0..p{n-1} with prices 1..50).
fn catalog_strategy() -> impl Strategy<Value = Instance> {
    proptest::collection::vec(1i64..50, 1..4).prop_map(|prices| {
        let mut db = Instance::empty(&models::catalog_schema());
        for (i, price) in prices.iter().enumerate() {
            db.insert(
                "price",
                Tuple::new(vec![Value::str(format!("p{i}")), Value::int(*price)]),
            )
            .unwrap();
            if i % 2 == 0 {
                db.insert("available", Tuple::from_iter([format!("p{i}").as_str()]))
                    .unwrap();
            }
        }
        db
    })
}

/// Strategy: an input sequence over the `short` schema with up to 3 steps.
fn inputs_strategy() -> impl Strategy<Value = InstanceSequence> {
    let step = (
        proptest::collection::vec(0usize..3, 0..3),
        proptest::collection::vec((0usize..3, 1i64..50), 0..2),
    );
    proptest::collection::vec(step, 0..3).prop_map(|steps| {
        let schema = models::short_input_schema();
        let instances: Vec<Instance> = steps
            .into_iter()
            .map(|(orders, pays)| {
                let mut inst = Instance::empty(&schema);
                for o in orders {
                    inst.insert("order", Tuple::from_iter([format!("p{o}").as_str()]))
                        .unwrap();
                }
                for (p, amount) in pays {
                    inst.insert(
                        "pay",
                        Tuple::new(vec![Value::str(format!("p{p}")), Value::int(amount)]),
                    )
                    .unwrap();
                }
                inst
            })
            .collect();
        InstanceSequence::new(schema, instances).unwrap()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Soundness of Theorem 3.1: the log of any actual run validates, and the
    /// returned witness reproduces the same log.
    #[test]
    fn logs_of_runs_always_validate(db in catalog_strategy(), inputs in inputs_strategy()) {
        let short = models::short();
        let run = short.run(&db, &inputs).unwrap();
        match validate_log(&short, &db, run.log()).unwrap() {
            LogValidity::Valid { witness_inputs } => {
                prop_assert!(log_matches(&short, &db, &witness_inputs, run.log()).unwrap());
            }
            LogValidity::Invalid => prop_assert!(false, "log of a real run declared invalid"),
        }
    }

    /// The temporal safety invariant of `short`: every bill quotes the listed
    /// price, and every delivered product was ordered at some earlier step.
    #[test]
    fn runs_of_short_respect_billing_and_ordering(db in catalog_strategy(), inputs in inputs_strategy()) {
        let short = models::short();
        let run = short.run(&db, &inputs).unwrap();
        for (index, output) in run.outputs().iter().enumerate() {
            for bill in output.relation("sendbill").unwrap().iter() {
                prop_assert!(db.holds("price", bill));
            }
            for delivery in output.relation("deliver").unwrap().iter() {
                // ordered at a strictly earlier step
                let ordered_before = (0..index).any(|j| {
                    run.inputs().get(j).unwrap().holds("order", delivery)
                });
                prop_assert!(ordered_before);
            }
        }
    }

    /// Cumulative state is inflationary: each state instance contains the
    /// previous one.
    #[test]
    fn states_are_inflationary(db in catalog_strategy(), inputs in inputs_strategy()) {
        let short = models::short();
        let run = short.run(&db, &inputs).unwrap();
        for i in 1..run.len() {
            let earlier = run.states().get(i - 1).unwrap();
            let later = run.states().get(i).unwrap();
            prop_assert!(earlier.is_subinstance_of(later));
        }
    }

    /// friendly is log-equivalent to short on shared inputs (the §2.1 claim).
    #[test]
    fn friendly_and_short_log_equivalent(db in catalog_strategy(), inputs in inputs_strategy()) {
        let short = models::short();
        let friendly = models::friendly();
        let friendly_schema = models::friendly_input_schema();
        let widened = InstanceSequence::new(
            friendly_schema.clone(),
            inputs
                .iter()
                .map(|step| {
                    let mut inst = Instance::empty(&friendly_schema);
                    for (name, rel) in step.iter() {
                        for tuple in rel.iter() {
                            inst.insert(name.clone(), tuple.clone()).unwrap();
                        }
                    }
                    inst
                })
                .collect(),
        )
        .unwrap();
        let a = short.run(&db, &inputs).unwrap();
        let b = friendly.run(&db, &widened).unwrap();
        prop_assert_eq!(a.log(), b.log());
    }
}
