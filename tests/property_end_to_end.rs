//! Property-based tests over the whole stack: randomly generated catalogs and
//! customer sessions must uphold the paper's invariants, and the
//! compiled-indexed datalog engine must agree with the reference interpreter
//! on randomly generated programs and databases.

use proptest::prelude::*;
use rtx::core::{models, DemandPolicy, Runtime, SessionDemand, SessionGoal};
use rtx::datalog::{
    evaluate_nonrecursive, evaluate_stratified, Adornment, Atom, BodyLiteral, CompiledProgram,
    DemandGoal, DredEngine, EvalOptions, FixpointStrategy, MutationBatch, Parallelism, Program,
    ResidentDb, Rule,
};
use rtx::logic::Term;
use rtx::prelude::*;
use rtx::verify::log_validation::log_matches;
use std::sync::Arc;

/// Strategy: a small catalog (product names p0..p{n-1} with prices 1..50).
fn catalog_strategy() -> impl Strategy<Value = Instance> {
    proptest::collection::vec(1i64..50, 1..4).prop_map(|prices| {
        let mut db = Instance::empty(&models::catalog_schema());
        for (i, price) in prices.iter().enumerate() {
            db.insert(
                "price",
                Tuple::new(vec![Value::str(format!("p{i}")), Value::int(*price)]),
            )
            .unwrap();
            if i % 2 == 0 {
                db.insert("available", Tuple::from_iter([format!("p{i}").as_str()]))
                    .unwrap();
            }
        }
        db
    })
}

/// Strategy: an input sequence over the `short` schema with up to 3 steps.
fn inputs_strategy() -> impl Strategy<Value = InstanceSequence> {
    let step = (
        proptest::collection::vec(0usize..3, 0..3),
        proptest::collection::vec((0usize..3, 1i64..50), 0..2),
    );
    proptest::collection::vec(step, 0..3).prop_map(|steps| {
        let schema = models::short_input_schema();
        let instances: Vec<Instance> = steps
            .into_iter()
            .map(|(orders, pays)| {
                let mut inst = Instance::empty(&schema);
                for o in orders {
                    inst.insert("order", Tuple::from_iter([format!("p{o}").as_str()]))
                        .unwrap();
                }
                for (p, amount) in pays {
                    inst.insert(
                        "pay",
                        Tuple::new(vec![Value::str(format!("p{p}")), Value::int(amount)]),
                    )
                    .unwrap();
                }
                inst
            })
            .collect();
        InstanceSequence::new(schema, instances).unwrap()
    })
}

/// The fixed vocabulary of the random-program generator: three EDB relations
/// and two IDB relations with fixed arities, over a four-constant domain.
const EDB_RELATIONS: [(&str, usize); 3] = [("e1", 1), ("e2", 2), ("e3", 2)];
const IDB_RELATIONS: [(&str, usize); 2] = [("d0", 1), ("d1", 2)];
const DOMAIN: [&str; 4] = ["a", "b", "c", "d"];
const VARS: [&str; 4] = ["X", "Y", "Z", "W"];

/// One positive body atom: a relation selector and variable selectors (the
/// selector vector is truncated/cycled to the relation's arity).
type AtomSpec = (usize, Vec<usize>);

/// One rule: head relation selector, head variable selectors, positive
/// atoms, negated EDB atoms, and inequality pairs.
type RuleSpec = (
    usize,
    Vec<usize>,
    Vec<AtomSpec>,
    Vec<AtomSpec>,
    Vec<(usize, usize)>,
);

fn rule_spec_strategy() -> impl Strategy<Value = RuleSpec> {
    (
        0usize..10,
        proptest::collection::vec(0usize..8, 1..3),
        proptest::collection::vec(
            (0usize..5, proptest::collection::vec(0usize..4, 2..3)),
            1..4,
        ),
        proptest::collection::vec(
            (0usize..3, proptest::collection::vec(0usize..8, 2..3)),
            0..3,
        ),
        proptest::collection::vec((0usize..8, 0usize..8), 0..2),
    )
}

/// Builds a safe, stratifiable rule from a spec.  Safety holds by
/// construction: head, negation and inequality variables are always drawn
/// from the variables of the positive atoms.
fn build_rule(spec: &RuleSpec) -> Rule {
    let (head_sel, head_vars, atoms, negs, diseqs) = spec;
    // Positive atoms over EDB relations and (for layering/recursion) IDBs.
    let atom_table: Vec<(&str, usize)> = EDB_RELATIONS
        .iter()
        .chain(IDB_RELATIONS.iter())
        .copied()
        .collect();
    let positives: Vec<Atom> = atoms
        .iter()
        .map(|(rel_sel, var_sels)| {
            let (rel, arity) = atom_table[rel_sel % atom_table.len()];
            let args =
                (0..arity).map(|i| Term::var(VARS[var_sels[i % var_sels.len()] % VARS.len()]));
            Atom::new(rel, args)
        })
        .collect();
    let bound: Vec<String> = {
        let mut seen = Vec::new();
        for atom in &positives {
            for var in atom.variables() {
                if !seen.contains(&var) {
                    seen.push(var);
                }
            }
        }
        seen
    };
    let pick_bound = |sel: usize| Term::var(bound[sel % bound.len()].clone());

    let (head_rel, head_arity) = IDB_RELATIONS[head_sel % IDB_RELATIONS.len()];
    let head = Atom::new(
        head_rel,
        (0..head_arity).map(|i| pick_bound(head_vars[i % head_vars.len()])),
    );

    let mut body: Vec<BodyLiteral> = positives.into_iter().map(BodyLiteral::Positive).collect();
    for (rel_sel, var_sels) in negs {
        // Negation only over EDB relations keeps every program stratifiable.
        let (rel, arity) = EDB_RELATIONS[rel_sel % EDB_RELATIONS.len()];
        let args = (0..arity).map(|i| pick_bound(var_sels[i % var_sels.len()]));
        body.push(BodyLiteral::Negative(Atom::new(rel, args)));
    }
    for (a, b) in diseqs {
        body.push(BodyLiteral::NotEqual(pick_bound(*a), pick_bound(*b)));
    }
    Rule::new(head, body)
}

fn random_program_strategy() -> impl Strategy<Value = Program> {
    proptest::collection::vec(rule_spec_strategy(), 1..5)
        .prop_map(|specs| specs.iter().map(build_rule).collect())
}

fn random_edb_strategy() -> impl Strategy<Value = Instance> {
    proptest::collection::vec((0usize..3, 0usize..4, 0usize..4), 0..16).prop_map(|facts| {
        let schema = Schema::from_pairs(EDB_RELATIONS).unwrap();
        let mut db = Instance::empty(&schema);
        for (rel_sel, v1, v2) in facts {
            let (rel, arity) = EDB_RELATIONS[rel_sel];
            let tuple = if arity == 1 {
                Tuple::from_iter([DOMAIN[v1]])
            } else {
                Tuple::from_iter([DOMAIN[v1], DOMAIN[v2]])
            };
            db.insert(rel, tuple).unwrap();
        }
        db
    })
}

/// One base-relation mutation: insert? (0 = retract), relation selector,
/// value selectors.  (The offline proptest shim has no `any::<bool>()`, so
/// coin flips are `0..2` ranges.)
type MutOp = (usize, usize, usize, usize);

/// A sequence of mutation batches (1–3 ops each) over the EDB vocabulary.
fn mutation_batches_strategy() -> impl Strategy<Value = Vec<Vec<MutOp>>> {
    proptest::collection::vec(
        proptest::collection::vec((0usize..2, 0usize..3, 0usize..4, 0usize..4), 1..4),
        1..5,
    )
}

fn mutation_tuple(rel_sel: usize, v1: usize, v2: usize) -> (&'static str, Tuple) {
    let (rel, arity) = EDB_RELATIONS[rel_sel % EDB_RELATIONS.len()];
    let tuple = if arity == 1 {
        Tuple::from_iter([DOMAIN[v1]])
    } else {
        Tuple::from_iter([DOMAIN[v1], DOMAIN[v2]])
    };
    (rel, tuple)
}

/// A customer session interleaved with catalog mutations: per step, orders,
/// payments, and insert/retract operations against `price`/`available`.
type MutatedStep = (
    Vec<usize>,
    Vec<(usize, i64)>,
    Vec<(usize, usize, usize, i64)>,
);

fn mutated_session_strategy() -> impl Strategy<Value = Vec<MutatedStep>> {
    let step = (
        proptest::collection::vec(0usize..3, 0..3),
        proptest::collection::vec((0usize..3, 1i64..50), 0..2),
        proptest::collection::vec((0usize..2, 0usize..2, 0usize..3, 1i64..50), 0..3),
    );
    proptest::collection::vec(step, 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The retraction equivalence: randomized insert+retract batches over
    /// randomized stratified programs, maintained incrementally by the
    /// delete-rederive engine, always leave the derived instance
    /// bit-identical to a from-scratch rebuild over the mutated base — at
    /// 1, 2 and 8 workers (threshold zero, so even tiny deltas take the
    /// parallel code path).
    #[test]
    fn dred_maintenance_matches_rebuild_from_scratch(
        program in random_program_strategy(),
        db in random_edb_strategy(),
        batches in mutation_batches_strategy(),
    ) {
        let compiled = CompiledProgram::compile(&program).unwrap();
        let mut engines: Vec<DredEngine> = [1usize, 2, 8]
            .iter()
            .map(|&t| {
                DredEngine::with_parallelism(
                    &program,
                    db.clone(),
                    Parallelism::threads(t).with_threshold(0),
                )
                .unwrap()
            })
            .collect();
        for ops in &batches {
            let mut batch = MutationBatch::new();
            for &(insert, rel_sel, v1, v2) in ops {
                let insert = insert == 1;
                let (rel, tuple) = mutation_tuple(rel_sel, v1, v2);
                batch = if insert {
                    batch.insert(rel, tuple)
                } else {
                    batch.retract(rel, tuple)
                };
            }
            for engine in engines.iter_mut() {
                engine.apply(&batch).unwrap();
            }
            let (oracle, _) = compiled.evaluate(&[engines[0].database()]).unwrap();
            for engine in &engines {
                prop_assert_eq!(
                    engine.derived(), &oracle,
                    "delete-rederive ≠ rebuild\n{}", program
                );
            }
        }
    }

    /// The session arm of the retraction equivalence: catalog inserts *and*
    /// retractions land on the shared resident database mid-session, and
    /// every step of the incremental `StepEvaluator`-backed session must
    /// equal a fresh full evaluation of the output program against the
    /// current catalog — at 1, 2 and 8 workers.
    #[test]
    fn sessions_observe_catalog_retractions_like_fresh_evaluations(
        db in catalog_strategy(),
        steps in mutated_session_strategy(),
    ) {
        let transducer = models::short();
        let compiled = transducer.compiled_output_program();
        let input_schema = models::short_input_schema();
        for threads in [1usize, 2, 8] {
            let resident = Arc::new(ResidentDb::new(db.clone()));
            let runtime = Runtime::shared_with(
                Arc::clone(&resident),
                Parallelism::threads(threads).with_threshold(0),
            );
            let mut session = runtime.open_session("prop", models::short()).unwrap();
            for (orders, pays, mutations) in &steps {
                // Mutate the shared catalog before the step.
                for &(insert, on_price, sel, amount) in mutations {
                    let (insert, on_price) = (insert == 1, on_price == 1);
                    if on_price {
                        let row = Tuple::new(vec![
                            Value::str(format!("p{sel}")),
                            Value::int(amount),
                        ]);
                        if insert {
                            resident.insert("price", row).unwrap();
                        } else {
                            resident.retract("price", &row).unwrap();
                        }
                    } else {
                        let row = Tuple::from_iter([format!("p{sel}").as_str()]);
                        if insert {
                            resident.insert("available", row).unwrap();
                        } else {
                            resident.retract("available", &row).unwrap();
                        }
                    }
                }
                let mut input = Instance::empty(&input_schema);
                for &o in orders {
                    input
                        .insert("order", Tuple::from_iter([format!("p{o}").as_str()]))
                        .unwrap();
                }
                for &(p, amount) in pays {
                    input
                        .insert(
                            "pay",
                            Tuple::new(vec![Value::str(format!("p{p}")), Value::int(amount)]),
                        )
                        .unwrap();
                }
                let state_before = session.state().clone();
                let out = session.step(&input).unwrap();
                let snapshot = resident.snapshot();
                let (oracle_derived, _) =
                    compiled.evaluate(&[&input, &state_before, &snapshot]).unwrap();
                let mut oracle = Instance::empty(transducer.schema().output());
                oracle.absorb(&oracle_derived).unwrap();
                prop_assert_eq!(
                    &out, &oracle,
                    "session step ≠ fresh evaluation at {} threads", threads
                );
            }
        }
    }
}

/// A random demand over the program's defined IDB relations: an adornment
/// selector plus seed-value selectors for `d0` and for `d1`.
type DemandSpec = (usize, Vec<usize>, usize, Vec<(usize, usize)>);

fn demand_spec_strategy() -> impl Strategy<Value = DemandSpec> {
    (
        0usize..2,
        proptest::collection::vec(0usize..4, 0..3),
        0usize..4,
        proptest::collection::vec((0usize..4, 0usize..4), 0..3),
    )
}

/// One [`DemandGoal`] per IDB relation the random program actually defines,
/// with adornments and seed tuples drawn from the spec.
fn demand_goals(program: &Program, spec: &DemandSpec) -> Vec<DemandGoal> {
    let (a0, seeds0, a1, seeds1) = spec;
    let idb = program.idb_relations();
    let mut goals = Vec::new();
    if idb.contains(&RelationName::new("d0")) {
        goals.push(if a0 % 2 == 0 {
            DemandGoal::free("d0", 1)
        } else {
            DemandGoal::seeded("d0", "b")
                .unwrap()
                .with_seeds(seeds0.iter().map(|&v| Tuple::from_iter([DOMAIN[v % 4]])))
        });
    }
    if idb.contains(&RelationName::new("d1")) {
        let pattern = ["ff", "bf", "fb", "bb"][a1 % 4];
        goals.push(if pattern == "ff" {
            DemandGoal::free("d1", 2)
        } else {
            let adornment = Adornment::parse(pattern).unwrap();
            DemandGoal::seeded("d1", pattern)
                .unwrap()
                .with_seeds(seeds1.iter().map(|&(x, y)| {
                    if adornment.bound_count() == 1 {
                        Tuple::from_iter([DOMAIN[if adornment.is_bound(0) { x } else { y } % 4]])
                    } else {
                        Tuple::from_iter([DOMAIN[x % 4], DOMAIN[y % 4]])
                    }
                }))
        });
    }
    goals
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The demand-driven evaluation equivalence (datalog layer): on randomly
    /// generated programs, databases and demands, evaluating the magic-set
    /// rewrite over the seeded sources and mapping the adorned result back
    /// is **bit-identical** to evaluating the original program in full and
    /// filtering it to the demanded footprint — at 1, 2 and 8 workers
    /// (threshold zero, so even tiny instances take the parallel path).
    #[test]
    fn demand_rewrite_is_bit_identical_to_the_filtered_full_evaluation(
        program in random_program_strategy(),
        db in random_edb_strategy(),
        spec in demand_spec_strategy(),
    ) {
        let goals = demand_goals(&program, &spec);
        let rewrite = rtx::datalog::magic_rewrite(&program, &goals).unwrap();
        let sources = db
            .union(&rewrite.seed_instance())
            .expect("seed relations are disjoint from the database");

        let compiled = CompiledProgram::compile(&program).unwrap();
        let (full, _) = compiled.evaluate(&[&db]).unwrap();
        let expected = rewrite.footprint(&full);

        let rewritten = CompiledProgram::compile_demand_program(rewrite.clone()).unwrap();
        let (sequential, _) = rewritten
            .evaluate_par(&[&sources], Parallelism::sequential())
            .unwrap();
        prop_assert_eq!(
            &rewrite.restrict(&sequential), &expected,
            "demand rewrite ≠ filtered full evaluation\n{}", program
        );
        for threads in [1usize, 2, 8] {
            let policy = Parallelism::threads(threads).with_threshold(0);
            let (parallel, _) = rewritten.evaluate_par(&[&sources], policy).unwrap();
            prop_assert_eq!(
                &parallel, &sequential,
                "rewritten program drifted at {} threads\n{}", threads, program
            );
        }
    }

    /// The session arm of the demand equivalence: with a demand that covers
    /// every derivation of the `short` model (bills keyed by this step's
    /// orders, deliveries by this step's payments), a demanded session under
    /// **either** policy steps bit-identically to an undemanded one — at 1,
    /// 2 and 8 workers, with catalog inserts *and* retractions landing on
    /// the shared resident database mid-session.
    #[test]
    fn demanded_sessions_match_full_sessions_under_catalog_mutations(
        db in catalog_strategy(),
        steps in mutated_session_strategy(),
    ) {
        let input_schema = models::short_input_schema();
        let covering_demand = || {
            SessionDemand::new()
                .goal(
                    SessionGoal::new("sendbill", "bf")
                        .unwrap()
                        .from_input("order", [0]),
                )
                .goal(SessionGoal::new("deliver", "b").unwrap().from_input("pay", [0]))
        };
        for threads in [1usize, 2, 8] {
            let resident = Arc::new(ResidentDb::new(db.clone()));
            let runtime = Runtime::shared_with(
                Arc::clone(&resident),
                Parallelism::threads(threads).with_threshold(0),
            );
            let mut full = runtime.open_session("full", models::short()).unwrap();
            runtime.set_demand_policy(DemandPolicy::Demand);
            let mut rewritten = runtime
                .open_session_with_demand("rewritten", models::short(), covering_demand())
                .unwrap();
            runtime.set_demand_policy(DemandPolicy::Full);
            let mut filtered = runtime
                .open_session_with_demand("filtered", models::short(), covering_demand())
                .unwrap();
            for (orders, pays, mutations) in &steps {
                for &(insert, on_price, sel, amount) in mutations {
                    let (insert, on_price) = (insert == 1, on_price == 1);
                    if on_price {
                        let row = Tuple::new(vec![
                            Value::str(format!("p{sel}")),
                            Value::int(amount),
                        ]);
                        if insert {
                            resident.insert("price", row).unwrap();
                        } else {
                            resident.retract("price", &row).unwrap();
                        }
                    } else {
                        let row = Tuple::from_iter([format!("p{sel}").as_str()]);
                        if insert {
                            resident.insert("available", row).unwrap();
                        } else {
                            resident.retract("available", &row).unwrap();
                        }
                    }
                }
                let mut input = Instance::empty(&input_schema);
                for &o in orders {
                    input
                        .insert("order", Tuple::from_iter([format!("p{o}").as_str()]))
                        .unwrap();
                }
                for &(p, amount) in pays {
                    input
                        .insert(
                            "pay",
                            Tuple::new(vec![Value::str(format!("p{p}")), Value::int(amount)]),
                        )
                        .unwrap();
                }
                let reference = full.step(&input).unwrap();
                prop_assert_eq!(
                    &rewritten.step(&input).unwrap(), &reference,
                    "rewritten session ≠ full session at {} threads", threads
                );
                prop_assert_eq!(
                    &filtered.step(&input).unwrap(), &reference,
                    "filtered session ≠ full session at {} threads", threads
                );
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The tentpole equivalence: on randomly generated (possibly recursive,
    /// possibly layered) programs and databases, the compiled-indexed engine
    /// derives exactly the instances the reference interpreter derives, under
    /// both fixpoint strategies — and, for non-recursive programs, exactly
    /// what the single-pass reference evaluation derives.
    #[test]
    fn compiled_engine_matches_reference_interpreter(
        program in random_program_strategy(),
        db in random_edb_strategy(),
    ) {
        let compiled = CompiledProgram::compile(&program).unwrap();
        let (fast, _) = compiled.evaluate(&[&db]).unwrap();
        let (naive, _) = evaluate_stratified(&program, &db, EvalOptions {
            strategy: FixpointStrategy::Naive,
            ..EvalOptions::default()
        }).unwrap();
        let (semi, _) = evaluate_stratified(&program, &db, EvalOptions {
            strategy: FixpointStrategy::SemiNaive,
            ..EvalOptions::default()
        }).unwrap();
        prop_assert_eq!(&fast, &naive, "compiled ≠ naive interpreter\n{}", program);
        prop_assert_eq!(&fast, &semi, "compiled ≠ semi-naive interpreter\n{}", program);
        if !compiled.is_recursive() {
            let single_pass = evaluate_nonrecursive(&program, &db).unwrap();
            prop_assert_eq!(&fast, &single_pass, "compiled ≠ single-pass reference\n{}", program);
        }
    }

    /// The parallel arm of the equivalence suite: randomized programs/EDBs
    /// evaluated with 1, 2 and 8 workers (threshold forced to zero, so even
    /// tiny instances take the parallel code path) produce **bit-identical**
    /// derived instances and identical `EvalStats` — `tuples_derived`,
    /// `rule_applications` and `rounds` included — to the sequential engine.
    /// This is the determinism contract of `rtx_datalog::pool`: work units
    /// are merged in fixed (stratum, rule, pass, chunk) order, so scheduling
    /// never shows through.
    #[test]
    fn parallel_evaluation_is_bit_identical_to_sequential(
        program in random_program_strategy(),
        db in random_edb_strategy(),
    ) {
        let compiled = CompiledProgram::compile(&program).unwrap();
        let (sequential, sequential_stats) =
            compiled.evaluate_par(&[&db], Parallelism::sequential()).unwrap();
        for threads in [1usize, 2, 8] {
            let policy = Parallelism::threads(threads).with_threshold(0);
            let (parallel, parallel_stats) =
                compiled.evaluate_par(&[&db], policy).unwrap();
            prop_assert_eq!(
                &parallel, &sequential,
                "parallel ≠ sequential at {} threads\n{}", threads, program
            );
            prop_assert_eq!(
                parallel_stats, sequential_stats,
                "stats drifted at {} threads\n{}", threads, program
            );
        }
    }

    /// Soundness of Theorem 3.1: the log of any actual run validates, and the
    /// returned witness reproduces the same log.
    #[test]
    fn logs_of_runs_always_validate(db in catalog_strategy(), inputs in inputs_strategy()) {
        let short = models::short();
        let run = short.run(&db, &inputs).unwrap();
        match validate_log(&short, &db, run.log()).unwrap() {
            LogValidity::Valid { witness_inputs } => {
                prop_assert!(log_matches(&short, &db, &witness_inputs, run.log()).unwrap());
            }
            LogValidity::Invalid => prop_assert!(false, "log of a real run declared invalid"),
        }
    }

    /// The temporal safety invariant of `short`: every bill quotes the listed
    /// price, and every delivered product was ordered at some earlier step.
    #[test]
    fn runs_of_short_respect_billing_and_ordering(db in catalog_strategy(), inputs in inputs_strategy()) {
        let short = models::short();
        let run = short.run(&db, &inputs).unwrap();
        for (index, output) in run.outputs().iter().enumerate() {
            for bill in output.relation("sendbill").unwrap().iter() {
                prop_assert!(db.holds("price", bill));
            }
            for delivery in output.relation("deliver").unwrap().iter() {
                // ordered at a strictly earlier step
                let ordered_before = (0..index).any(|j| {
                    run.inputs().get(j).unwrap().holds("order", delivery)
                });
                prop_assert!(ordered_before);
            }
        }
    }

    /// Cumulative state is inflationary: each state instance contains the
    /// previous one.
    #[test]
    fn states_are_inflationary(db in catalog_strategy(), inputs in inputs_strategy()) {
        let short = models::short();
        let run = short.run(&db, &inputs).unwrap();
        for i in 1..run.len() {
            let earlier = run.states().get(i - 1).unwrap();
            let later = run.states().get(i).unwrap();
            prop_assert!(earlier.is_subinstance_of(later));
        }
    }

    /// friendly is log-equivalent to short on shared inputs (the §2.1 claim).
    #[test]
    fn friendly_and_short_log_equivalent(db in catalog_strategy(), inputs in inputs_strategy()) {
        let short = models::short();
        let friendly = models::friendly();
        let friendly_schema = models::friendly_input_schema();
        let widened = InstanceSequence::new(
            friendly_schema.clone(),
            inputs
                .iter()
                .map(|step| {
                    let mut inst = Instance::empty(&friendly_schema);
                    for (name, rel) in step.iter() {
                        for tuple in rel.iter() {
                            inst.insert(name.clone(), tuple.clone()).unwrap();
                        }
                    }
                    inst
                })
                .collect(),
        )
        .unwrap();
        let a = short.run(&db, &inputs).unwrap();
        let b = friendly.run(&db, &widened).unwrap();
        prop_assert_eq!(a.log(), b.log());
    }
}
