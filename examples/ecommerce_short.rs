//! Figure 1 of the paper: a run of the `short` business model.
//!
//! Reproduces the input/output exchange of §2.1 — order Time and Newsweek,
//! receive both bills, pay Time, take delivery of Time, and so on — and then
//! audits the produced log with the Theorem 3.1 procedure.
//!
//! Run with `cargo run --example ecommerce_short`.

use rtx::core::models;
use rtx::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let short = models::short();
    let db = models::figure1_database();
    let inputs = models::figure1_inputs();

    println!("=== TRANSDUCER SHORT (§2.1) ===\n{short}");
    println!("=== catalog ===\n{db}\n");

    let run = short.run(&db, &inputs)?;
    println!("=== Figure 1: input and output sequences of a run of short ===");
    for step in run.steps() {
        println!("step {}:", step.index + 1);
        println!("  input : {}", step.input);
        println!("  output: {}", step.output);
        println!("  log   : {}", step.log);
    }

    // The supplier-side audit of §2.1 (log checking / fraud detection).
    let verdict = validate_log(&short, &db, run.log())?;
    println!(
        "\nsupplier audit of the log: {}",
        if verdict.is_valid() {
            "valid"
        } else {
            "INVALID"
        }
    );

    // A tampered log — a delivery with no payment — is rejected.
    let tampered = rtx::workloads::tamper_log(run.log(), "lemonde");
    let verdict = validate_log(&short, &db, &tampered)?;
    println!(
        "supplier audit of a tampered log (free Le Monde delivery): {}",
        if verdict.is_valid() {
            "valid"
        } else {
            "INVALID"
        }
    );
    Ok(())
}
