//! Customization audit: a supplier checks whether customer-modified business
//! models still conform to the original semantics (Theorem 3.5 /
//! Corollary 3.6), and falls back to the syntactic sufficient condition.
//!
//! Run with `cargo run --example customization_audit`.

use rtx::core::models;
use rtx::prelude::*;
use rtx::verify::syntactically_safe_customization;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let short = models::short();
    let db = models::figure1_database();

    // Customization 1: friendly — adds warnings, keeps the logged behaviour.
    let friendly = models::friendly();

    // Customization 2: a "rogue" model that ships products on order, skipping
    // payment.
    let rogue = SpocusBuilder::new("rogue")
        .input("order", 1)
        .input("pay", 2)
        .database("price", 2)
        .database("available", 1)
        .output("sendbill", 2)
        .output("deliver", 1)
        .log(["sendbill", "pay", "deliver"])
        .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
        .output_rule("deliver(X) :- order(X), price(X,Y)")
        .build()?;

    for candidate in [&friendly, &rogue] {
        println!(
            "auditing customization `{}` against `short`…",
            candidate.name()
        );
        let syntactic = syntactically_safe_customization(&short, candidate);
        println!(
            "  syntactic sufficient condition: {}",
            if syntactic { "passes" } else { "fails" }
        );
        let verdict = customization_preserves_logs(&short, candidate, &db)?;
        match verdict {
            rtx::verify::ContainmentVerdict::Contained => {
                println!("  semantic check (Theorem 3.5): accepted — logs are preserved\n");
            }
            rtx::verify::ContainmentVerdict::NotContained {
                counterexample_inputs,
            } => {
                println!("  semantic check (Theorem 3.5): REJECTED");
                println!("  counterexample inputs:\n{counterexample_inputs}");
                let run_orig = short.run(&db, &restrict(&counterexample_inputs, &short)?)?;
                let run_cust = candidate.run(&db, &counterexample_inputs)?;
                println!("  original log:\n{}", run_orig.log());
                println!("  customized log:\n{}", run_cust.log());
            }
        }
    }
    Ok(())
}

/// Restricts an input sequence over the customization's schema to the
/// original's input schema.
fn restrict(
    inputs: &InstanceSequence,
    original: &SpocusTransducer,
) -> Result<InstanceSequence, Box<dyn std::error::Error>> {
    let schema = original.schema().input().clone();
    let mut steps = Vec::new();
    for step in inputs.iter() {
        let mut restricted = Instance::empty(&schema);
        for (name, relation) in step.iter() {
            if schema.contains(name.clone()) {
                for tuple in relation.iter() {
                    restricted.insert(name.clone(), tuple.clone())?;
                }
            }
        }
        steps.push(restricted);
    }
    Ok(InstanceSequence::new(schema, steps)?)
}
