//! Fraud audit at scale: generate synthetic customer sessions against a
//! generated catalog, collect the (partial) logs they hand back, and audit
//! every log with the Theorem 3.1 decision procedure — flagging tampered
//! logs.
//!
//! Also demonstrates the Proposition 3.1 gadget: why allowing projections in
//! state rules would make this audit undecidable.
//!
//! Run with `cargo run --example fraud_audit`.

use rtx::core::models;
use rtx::prelude::*;
use rtx::verify::dependencies::{
    DependencyGadget, DependencySet, FunctionalDependency, InclusionDependency,
};
use rtx::workloads;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let short = models::short();
    let db = workloads::catalog(4, 42);
    println!("catalog:\n{db}\n");

    let mut flagged = 0usize;
    let mut accepted = 0usize;
    for customer in 0..4u64 {
        let session = workloads::customer_session(&db, 2, 4, 1.0, customer);
        let mut log = workloads::log_of(&short, &db, &session);
        let tampered = customer % 3 == 0;
        if tampered {
            log = workloads::tamper_log(&log, "p0");
        }
        let verdict = validate_log(&short, &db, &log)?;
        let ok = verdict.is_valid();
        if ok {
            accepted += 1;
        } else {
            flagged += 1;
        }
        println!(
            "customer {customer}: log {} -> {}",
            if tampered { "(tampered)" } else { "(honest)  " },
            if ok { "accepted" } else { "FLAGGED" }
        );
    }
    println!("\naccepted {accepted}, flagged {flagged}");

    // Proposition 3.1 in action: with projection state rules, the audit
    // encodes FD/IncD implication, which is undecidable.
    let f = DependencySet {
        fds: vec![FunctionalDependency {
            lhs: vec![0],
            rhs: 1,
        }],
        inds: vec![],
    };
    let g = DependencySet {
        fds: vec![],
        inds: vec![InclusionDependency {
            lhs: vec![0],
            rhs: vec![1],
        }],
    };
    let gadget = DependencyGadget::new(2, f, g)?;
    let witness = Relation::from_tuples(
        2,
        vec![
            Tuple::new(vec![Value::str("a"), Value::str("1")]),
            Tuple::new(vec![Value::str("b"), Value::str("2")]),
        ],
    )?;
    println!(
        "\nProposition 3.1 gadget: instance witnesses F ⊭ G (log (∅, {{violG}}) reachable): {}",
        gadget.witnesses_non_implication(&witness)?
    );
    Ok(())
}
