//! Quickstart: define a small business model with the builder API, run it,
//! and verify two of the paper's properties on it (goal reachability and a
//! temporal safety property).
//!
//! Run with `cargo run --example quickstart`.

use rtx::prelude::*;
use rtx_datalog::Atom;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A minimal order → bill → pay → deliver model, built programmatically.
    let shop = SpocusBuilder::new("quickstart-shop")
        .input("order", 1)
        .input("pay", 2)
        .database("price", 2)
        .output("sendbill", 2)
        .output("deliver", 1)
        .log(["sendbill", "pay", "deliver"])
        .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
        .output_rule("deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y)")
        .build()?;
    println!("{shop}");

    // 2. A tiny catalog.
    let catalog_schema = Schema::from_pairs([("price", 2)])?;
    let mut db = Instance::empty(&catalog_schema);
    db.insert(
        "price",
        Tuple::new(vec![Value::str("espresso"), Value::int(3)]),
    )?;
    db.insert(
        "price",
        Tuple::new(vec![Value::str("grinder"), Value::int(120)]),
    )?;

    // 3. A customer session: order, then pay.
    let input_schema = shop.schema().input().clone();
    let mut step1 = Instance::empty(&input_schema);
    step1.insert("order", Tuple::from_iter(["espresso"]))?;
    let mut step2 = Instance::empty(&input_schema);
    step2.insert(
        "pay",
        Tuple::new(vec![Value::str("espresso"), Value::int(3)]),
    )?;
    let inputs = InstanceSequence::new(input_schema, vec![step1, step2])?;

    let run = shop.run(&db, &inputs)?;
    println!("--- run ---\n{run}");

    // 4. Goal reachability (Theorem 3.2): can a grinder ever be delivered?
    let goal = Goal::atom(Atom::new(
        "deliver",
        [rtx::logic::Term::constant(Value::str("grinder"))],
    ));
    let reachable = is_goal_reachable(&shop, &db, &goal)?;
    println!(
        "deliver(grinder) reachable: {}",
        if reachable.is_some() { "yes" } else { "no" }
    );

    // 5. A temporal property (Theorem 3.3): bills always quote the listed price.
    let property = Formula::forall(
        ["x", "y"],
        Formula::implies(
            Formula::atom("sendbill", [Term::var("x"), Term::var("y")]),
            Formula::atom("price", [Term::var("x"), Term::var("y")]),
        ),
    );
    let verdict = holds_in_all_runs(&shop, &db, &property)?;
    println!("bills always quote the listed price: {}", verdict.holds());

    // 6. Audit the run's own log (Theorem 3.1).
    let validity = validate_log(&shop, &db, run.log())?;
    println!("the run's log validates: {}", validity.is_valid());
    Ok(())
}
