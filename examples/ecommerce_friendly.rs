//! Figure 2 of the paper: a run of the `friendly` business model, the
//! customer-friendly customization of `short` that adds warnings
//! (`unavailable`, `rejectpay`, `alreadypaid`) and bill reminders (`rebill`).
//!
//! Run with `cargo run --example ecommerce_friendly`.

use rtx::core::models;
use rtx::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let friendly = models::friendly();
    let db = models::figure1_database();
    let inputs = models::figure2_inputs();

    println!("=== TRANSDUCER FRIENDLY (§2.1) ===\n{friendly}");

    let run = friendly.run(&db, &inputs)?;
    println!("=== Figure 2: input and output sequences of a run of friendly ===");
    for step in run.steps() {
        println!("step {}:", step.index + 1);
        println!("  input : {}", step.input);
        println!("  output: {}", step.output);
    }

    // §2.1 / Theorem 3.5: friendly is a sound customization of short — every
    // log it produces is a log short could have produced.
    let short = models::short();
    let verdict = customization_preserves_logs(&short, &friendly, &db)?;
    println!(
        "\ncustomization check (short ⊒ friendly): {}",
        if verdict.is_contained() {
            "sound"
        } else {
            "REJECTED"
        }
    );
    Ok(())
}
