//! Demand-driven evaluation quickstart: open a session that states *which
//! slice of the output it will actually read*, and let the runtime evaluate
//! the magic-set-rewritten program instead of the full one.
//!
//! The storefront model derives a catalog-wide `offer` relation on every
//! refresh tick; a browsing session only ever reads offers for the products
//! it browses.  A [`SessionDemand`] states that footprint; the runtime seeds
//! the rewrite from the session's own inputs, so the per-step cost follows
//! the session's activity instead of the catalog size.
//!
//! Run with `cargo run --example demand_quickstart`.

use rtx::core::{DemandPolicy, Runtime, SessionDemand, SessionGoal};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The storefront business model over a 10 000-product catalog.
    let model = Arc::new(rtx::workloads::storefront_model());
    let db = rtx::workloads::category_catalog(10_000, 50, 1);
    let resident = Arc::new(model.compiled_output_program().prepare(&db));
    let inputs = rtx::workloads::browse_session(4, 10_000, 7);

    // 2. The session's demand: both outputs probed at the products of this
    //    step's own `browse` input (adorn → seed → specialize → evaluate).
    let demand = SessionDemand::new()
        .goal(SessionGoal::new("detail", "bff")?.from_input("browse", [0]))
        .goal(SessionGoal::new("offer", "bf")?.from_input("browse", [0]));

    // 3. Side by side: an undemanded session evaluates the original program
    //    (catalog-wide offers every step), the demanded one evaluates the
    //    rewritten program (offers for its own products only).
    let runtime = Runtime::shared(Arc::clone(&resident));
    runtime.set_demand_policy(DemandPolicy::Demand); // also the default; RTX_DEMAND=full|off overrides
    let mut full = runtime.open_session("full", Arc::clone(&model))?;
    let mut probe = runtime.open_session_with_demand("probe", Arc::clone(&model), demand)?;

    for (step, input) in inputs.iter().enumerate() {
        let everything = full.step(input)?;
        let footprint = probe.step(input)?;
        println!(
            "step {step}: full session derived {:>6} tuples ({} offers), \
             demanded session derived {:>3} tuples ({} offers)",
            full.last_stats().tuples_derived,
            everything.relation("offer").map_or(0, |r| r.len()),
            probe.last_stats().tuples_derived,
            footprint.relation("offer").map_or(0, |r| r.len()),
        );
        // Every demanded tuple is one the full evaluation also derived.
        for (name, relation) in footprint.iter() {
            for tuple in relation.iter() {
                assert!(everything.holds(name.clone(), tuple));
            }
        }
    }

    println!(
        "demanded session policy: {:?} (kill-switch: RTX_DEMAND=full keeps \
         the footprint but evaluates unrewritten)",
        probe
            .demand_policy()
            .expect("the probe session is demanded")
    );
    Ok(())
}
