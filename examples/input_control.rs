//! Input control (§4): compile declarative `T_sdi` policies into error rules
//! (Theorem 4.1), run customers against the policed model, and verify
//! properties of the error-free runs (Theorem 4.4).
//!
//! Run with `cargo run --example input_control`.

use rtx::core::models;
use rtx::prelude::*;
use rtx::verify::enforce::add_enforcement;
use rtx_datalog::{Atom, BodyLiteral};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let short = models::short();
    let db = models::figure1_database();

    // Policy (§4.1, example 3 flavour): only available products may be ordered.
    let availability = SdiConstraint::new(
        vec![BodyLiteral::Positive(Atom::new("order", [Term::var("x")]))],
        Formula::atom("available", [Term::var("x")]),
    )?;
    println!("policy: {}", availability.to_formula());
    for rule in availability.compile_to_error_rules()? {
        println!("compiled error rule: {rule}");
    }

    let policed = add_enforcement(&short, std::slice::from_ref(&availability))?;

    // A compliant customer and a non-compliant one.
    let schema = models::short_input_schema();
    let step = |orders: &[&str], pays: &[(&str, i64)]| -> Instance {
        let mut inst = Instance::empty(&schema);
        for o in orders {
            inst.insert("order", Tuple::from_iter([*o])).unwrap();
        }
        for (p, amt) in pays {
            inst.insert("pay", Tuple::new(vec![Value::str(*p), Value::int(*amt)]))
                .unwrap();
        }
        inst
    };
    let compliant = InstanceSequence::new(
        schema.clone(),
        vec![step(&["time"], &[]), step(&[], &[("time", 855)])],
    )?;
    let offending = InstanceSequence::new(
        schema.clone(),
        vec![step(&["lemonde"], &[]), step(&[], &[("lemonde", 8350)])],
    )?;

    for (name, inputs) in [("compliant", &compliant), ("offending", &offending)] {
        let run = policed.run(&db, inputs)?;
        println!(
            "{name} customer: error-free = {}, policy satisfied = {}",
            ControlDiscipline::ErrorFree.accepts(&run),
            availability.satisfied_on_run(&run, &db)?
        );
    }

    // Theorem 4.4: every error-free run of the policed model satisfies the
    // policy.
    let verdict = error_free_runs_satisfy(&policed, &db, &availability)?;
    println!(
        "verified: every error-free run respects availability: {}",
        verdict.holds()
    );

    // But the un-policed model admits violating (yet error-free) runs.
    let verdict = error_free_runs_satisfy(&short, &db, &availability)?;
    println!(
        "without enforcement the property holds on all runs: {}",
        verdict.holds()
    );
    Ok(())
}
