//! Propositional formulas (the target of first-order grounding).

use crate::Var;
use std::collections::BTreeSet;
use std::fmt;

/// A propositional formula over variables [`Var`].
///
/// This is the intermediate representation produced by grounding an ∃*∀*FO
/// sentence over its small model domain (see `rtx-logic::bernays`).  `And` and
/// `Or` are n-ary to keep grounded formulas shallow.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PropFormula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A propositional variable.
    Atom(Var),
    /// Negation.
    Not(Box<PropFormula>),
    /// n-ary conjunction (empty conjunction is true).
    And(Vec<PropFormula>),
    /// n-ary disjunction (empty disjunction is false).
    Or(Vec<PropFormula>),
}

impl PropFormula {
    /// A variable atom.
    pub fn var(index: u32) -> Self {
        PropFormula::Atom(Var(index))
    }

    /// Negation, with constant folding.
    ///
    /// An associated constructor (not `std::ops::Not`): it takes the operand
    /// by value and folds constants.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: PropFormula) -> Self {
        match f {
            PropFormula::True => PropFormula::False,
            PropFormula::False => PropFormula::True,
            PropFormula::Not(inner) => *inner,
            other => PropFormula::Not(Box::new(other)),
        }
    }

    /// Conjunction, with constant folding and flattening.
    pub fn and(fs: Vec<PropFormula>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                PropFormula::True => {}
                PropFormula::False => return PropFormula::False,
                PropFormula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => PropFormula::True,
            1 => out.into_iter().next().expect("len checked"),
            _ => PropFormula::And(out),
        }
    }

    /// Disjunction, with constant folding and flattening.
    pub fn or(fs: Vec<PropFormula>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                PropFormula::False => {}
                PropFormula::True => return PropFormula::True,
                PropFormula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => PropFormula::False,
            1 => out.into_iter().next().expect("len checked"),
            _ => PropFormula::Or(out),
        }
    }

    /// Implication `a → b` as `¬a ∨ b`.
    pub fn implies(a: PropFormula, b: PropFormula) -> Self {
        PropFormula::or(vec![PropFormula::not(a), b])
    }

    /// Biconditional `a ↔ b`.
    pub fn iff(a: PropFormula, b: PropFormula) -> Self {
        PropFormula::and(vec![
            PropFormula::implies(a.clone(), b.clone()),
            PropFormula::implies(b, a),
        ])
    }

    /// The set of variables occurring in the formula.
    pub fn variables(&self) -> BTreeSet<Var> {
        let mut out = BTreeSet::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut BTreeSet<Var>) {
        match self {
            PropFormula::True | PropFormula::False => {}
            PropFormula::Atom(v) => {
                out.insert(*v);
            }
            PropFormula::Not(f) => f.collect_vars(out),
            PropFormula::And(fs) | PropFormula::Or(fs) => {
                for f in fs {
                    f.collect_vars(out);
                }
            }
        }
    }

    /// The largest variable index occurring in the formula, plus one.
    pub fn num_vars(&self) -> u32 {
        self.variables().iter().map(|v| v.0 + 1).max().unwrap_or(0)
    }

    /// Evaluates the formula under an assignment function.
    pub fn eval<F>(&self, assignment: &F) -> bool
    where
        F: Fn(Var) -> bool,
    {
        match self {
            PropFormula::True => true,
            PropFormula::False => false,
            PropFormula::Atom(v) => assignment(*v),
            PropFormula::Not(f) => !f.eval(assignment),
            PropFormula::And(fs) => fs.iter().all(|f| f.eval(assignment)),
            PropFormula::Or(fs) => fs.iter().any(|f| f.eval(assignment)),
        }
    }

    /// Structural size (number of nodes), used by the benchmarks to report
    /// grounded-formula growth.
    pub fn size(&self) -> usize {
        match self {
            PropFormula::True | PropFormula::False | PropFormula::Atom(_) => 1,
            PropFormula::Not(f) => 1 + f.size(),
            PropFormula::And(fs) | PropFormula::Or(fs) => {
                1 + fs.iter().map(PropFormula::size).sum::<usize>()
            }
        }
    }
}

impl fmt::Display for PropFormula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PropFormula::True => write!(f, "⊤"),
            PropFormula::False => write!(f, "⊥"),
            PropFormula::Atom(v) => write!(f, "{v}"),
            PropFormula::Not(inner) => write!(f, "¬{inner}"),
            PropFormula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            PropFormula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constant_folding() {
        assert_eq!(PropFormula::not(PropFormula::True), PropFormula::False);
        assert_eq!(
            PropFormula::and(vec![PropFormula::True, PropFormula::var(0)]),
            PropFormula::var(0)
        );
        assert_eq!(
            PropFormula::and(vec![PropFormula::False, PropFormula::var(0)]),
            PropFormula::False
        );
        assert_eq!(
            PropFormula::or(vec![PropFormula::False, PropFormula::var(1)]),
            PropFormula::var(1)
        );
        assert_eq!(
            PropFormula::or(vec![PropFormula::True, PropFormula::var(1)]),
            PropFormula::True
        );
        assert_eq!(PropFormula::and(vec![]), PropFormula::True);
        assert_eq!(PropFormula::or(vec![]), PropFormula::False);
    }

    #[test]
    fn double_negation_cancels() {
        let f = PropFormula::not(PropFormula::not(PropFormula::var(2)));
        assert_eq!(f, PropFormula::var(2));
    }

    #[test]
    fn flattening_nested_connectives() {
        let f = PropFormula::and(vec![
            PropFormula::and(vec![PropFormula::var(0), PropFormula::var(1)]),
            PropFormula::var(2),
        ]);
        assert_eq!(
            f,
            PropFormula::And(vec![
                PropFormula::var(0),
                PropFormula::var(1),
                PropFormula::var(2)
            ])
        );
    }

    #[test]
    fn variables_and_num_vars() {
        let f = PropFormula::implies(PropFormula::var(0), PropFormula::var(4));
        assert_eq!(f.variables().len(), 2);
        assert_eq!(f.num_vars(), 5);
        assert_eq!(PropFormula::True.num_vars(), 0);
    }

    #[test]
    fn eval_matches_semantics() {
        let f = PropFormula::iff(PropFormula::var(0), PropFormula::var(1));
        assert!(f.eval(&|_| true));
        assert!(f.eval(&|_| false));
        assert!(!f.eval(&|v: Var| v.0 == 0));
    }

    #[test]
    fn size_counts_nodes() {
        let f = PropFormula::and(vec![
            PropFormula::var(0),
            PropFormula::not(PropFormula::var(1)),
        ]);
        assert_eq!(f.size(), 4);
    }

    #[test]
    fn display_is_readable() {
        let f = PropFormula::or(vec![
            PropFormula::var(0),
            PropFormula::not(PropFormula::var(1)),
        ]);
        assert_eq!(f.to_string(), "(v0 ∨ ¬v1)");
    }
}
