//! # rtx-sat
//!
//! A small, dependency-free SAT solver used as the decision engine for the
//! Bernays–Schönfinkel (∃*∀*FO) satisfiability checks that all of the paper's
//! decision procedures reduce to (Theorems 3.1–3.3, 3.5, 4.4, 4.6).
//!
//! The pipeline is:
//!
//! 1. `rtx-logic` grounds an ∃*∀* sentence over its small model domain,
//!    producing a [`PropFormula`] whose atoms are ground relational facts;
//! 2. the formula is converted to CNF — either directly for small formulas or
//!    via the Tseitin transformation ([`tseitin_cnf`]) for large ones;
//! 3. the [`Solver`] (iterative DPLL with unit propagation, pure-literal
//!    elimination and conflict-directed backjumping) decides satisfiability
//!    and, when satisfiable, returns a [`Model`] from which the verification
//!    crate reconstructs witness input sequences.
//!
//! The solver is deliberately self-contained (`std` only) and deterministic:
//! given the same clause set it always explores the same tree, which keeps the
//! higher-level decision procedures reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod formula;
mod solver;
mod tseitin;

pub use cnf::{Clause, Cnf, Lit, Var};
pub use formula::PropFormula;
pub use solver::{Model, SatResult, Solver, SolverStats};
pub use tseitin::{direct_cnf, tseitin_cnf};

/// Convenience helper: decides satisfiability of a propositional formula.
///
/// Uses the Tseitin encoding (linear size) and the default solver
/// configuration.  Returns the satisfying assignment restricted to the
/// variables that occur in `formula` when satisfiable.
pub fn solve_formula(formula: &PropFormula) -> SatResult {
    let (cnf, _aux_start) = tseitin_cnf(formula);
    let mut solver = Solver::new(cnf);
    solver.solve()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_formula_end_to_end() {
        // (x ∨ y) ∧ (¬x ∨ y) ∧ ¬y is unsatisfiable.
        let x = PropFormula::var(0);
        let y = PropFormula::var(1);
        let f = PropFormula::and(vec![
            PropFormula::or(vec![x.clone(), y.clone()]),
            PropFormula::or(vec![PropFormula::not(x.clone()), y.clone()]),
            PropFormula::not(y.clone()),
        ]);
        assert!(matches!(solve_formula(&f), SatResult::Unsat));

        // (x ∨ y) ∧ ¬x is satisfiable with y = true.
        let g = PropFormula::and(vec![
            PropFormula::or(vec![x.clone(), y.clone()]),
            PropFormula::not(x),
        ]);
        match solve_formula(&g) {
            SatResult::Sat(model) => {
                assert_eq!(model.value(Var(0)), Some(false));
                assert_eq!(model.value(Var(1)), Some(true));
            }
            SatResult::Unsat => panic!("expected satisfiable"),
        }
    }

    #[test]
    fn trivial_formulas() {
        assert!(matches!(
            solve_formula(&PropFormula::True),
            SatResult::Sat(_)
        ));
        assert!(matches!(
            solve_formula(&PropFormula::False),
            SatResult::Unsat
        ));
    }
}
