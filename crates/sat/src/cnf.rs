//! Variables, literals, clauses, and CNF formulas.

use std::fmt;

/// A propositional variable, identified by a dense non-negative index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub u32);

impl Var {
    /// The variable index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A literal: a variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit {
    var: Var,
    positive: bool,
}

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: Var) -> Self {
        Lit {
            var,
            positive: true,
        }
    }

    /// The negative literal of `var`.
    pub fn neg(var: Var) -> Self {
        Lit {
            var,
            positive: false,
        }
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        self.var
    }

    /// True for a positive literal.
    pub fn is_positive(self) -> bool {
        self.positive
    }

    /// The complementary literal.
    pub fn negated(self) -> Lit {
        Lit {
            var: self.var,
            positive: !self.positive,
        }
    }

    /// Evaluates the literal under a truth value for its variable.
    pub fn eval(self, value: bool) -> bool {
        value == self.positive
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "{}", self.var)
        } else {
            write!(f, "¬{}", self.var)
        }
    }
}

/// A disjunction of literals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Clause {
    literals: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from literals; duplicate literals are removed.
    pub fn new(mut literals: Vec<Lit>) -> Self {
        literals.sort();
        literals.dedup();
        Clause { literals }
    }

    /// The literals of the clause.
    pub fn literals(&self) -> &[Lit] {
        &self.literals
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.literals.len()
    }

    /// True for the empty clause (always false).
    pub fn is_empty(&self) -> bool {
        self.literals.is_empty()
    }

    /// True if the clause contains both a literal and its negation.
    pub fn is_tautology(&self) -> bool {
        // literals are sorted by (var, polarity); complementary pairs are adjacent
        self.literals
            .windows(2)
            .any(|w| w[0].var() == w[1].var() && w[0].is_positive() != w[1].is_positive())
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.literals.is_empty() {
            return write!(f, "⊥");
        }
        for (i, l) in self.literals.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        Ok(())
    }
}

/// A CNF formula: a conjunction of clauses over variables `0..num_vars`.
#[derive(Debug, Clone, Default)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Clause>,
}

impl Cnf {
    /// Creates an empty CNF (trivially satisfiable) with `num_vars` variables.
    pub fn new(num_vars: u32) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
        }
    }

    /// Number of variables (variables are `0..num_vars`).
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// The clauses.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Allocates a fresh variable.
    pub fn fresh_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Adds a clause.  Tautological clauses are silently dropped; the variable
    /// count grows to cover every referenced variable.
    pub fn add_clause(&mut self, clause: Clause) {
        for lit in clause.literals() {
            if lit.var().0 >= self.num_vars {
                self.num_vars = lit.var().0 + 1;
            }
        }
        if !clause.is_tautology() {
            self.clauses.push(clause);
        }
    }

    /// Adds a clause given as raw literals.
    pub fn add(&mut self, literals: Vec<Lit>) {
        self.add_clause(Clause::new(literals));
    }

    /// Evaluates the CNF under a complete assignment (indexed by variable).
    pub fn eval(&self, assignment: &[bool]) -> bool {
        self.clauses.iter().all(|c| {
            c.literals()
                .iter()
                .any(|l| assignment.get(l.var().index()).is_some_and(|&v| l.eval(v)))
        })
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, c) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            write!(f, "({c})")?;
        }
        if self.clauses.is_empty() {
            write!(f, "⊤")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_negation_and_eval() {
        let l = Lit::pos(Var(3));
        assert!(l.eval(true));
        assert!(!l.eval(false));
        let n = l.negated();
        assert!(n.eval(false));
        assert_eq!(n.negated(), l);
    }

    #[test]
    fn clause_dedup_and_tautology() {
        let c = Clause::new(vec![Lit::pos(Var(0)), Lit::pos(Var(0)), Lit::neg(Var(1))]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_tautology());
        let t = Clause::new(vec![Lit::pos(Var(0)), Lit::neg(Var(0))]);
        assert!(t.is_tautology());
        assert!(Clause::new(vec![]).is_empty());
    }

    #[test]
    fn cnf_grows_variable_count() {
        let mut cnf = Cnf::new(0);
        cnf.add(vec![Lit::pos(Var(5))]);
        assert_eq!(cnf.num_vars(), 6);
        assert_eq!(cnf.num_clauses(), 1);
    }

    #[test]
    fn cnf_drops_tautologies() {
        let mut cnf = Cnf::new(2);
        cnf.add(vec![Lit::pos(Var(0)), Lit::neg(Var(0))]);
        assert_eq!(cnf.num_clauses(), 0);
    }

    #[test]
    fn cnf_eval() {
        let mut cnf = Cnf::new(2);
        cnf.add(vec![Lit::pos(Var(0)), Lit::pos(Var(1))]);
        cnf.add(vec![Lit::neg(Var(0))]);
        assert!(cnf.eval(&[false, true]));
        assert!(!cnf.eval(&[true, true]));
        assert!(!cnf.eval(&[false, false]));
    }

    #[test]
    fn fresh_var_is_unique() {
        let mut cnf = Cnf::new(3);
        let v = cnf.fresh_var();
        assert_eq!(v, Var(3));
        assert_eq!(cnf.num_vars(), 4);
    }

    #[test]
    fn display_forms() {
        let mut cnf = Cnf::new(2);
        assert_eq!(cnf.to_string(), "⊤");
        cnf.add(vec![Lit::pos(Var(0)), Lit::neg(Var(1))]);
        assert_eq!(cnf.to_string(), "(v0 ∨ ¬v1)");
        assert_eq!(Clause::new(vec![]).to_string(), "⊥");
    }
}
