//! Conversion of propositional formulas to CNF.
//!
//! Two strategies are provided:
//!
//! * [`direct_cnf`] — distributes disjunctions over conjunctions.  Exact (no
//!   auxiliary variables) but worst-case exponential; used only for very small
//!   formulas and as the reference implementation in tests.
//! * [`tseitin_cnf`] — the Tseitin transformation.  Linear in the formula
//!   size, introduces one auxiliary variable per internal connective, and
//!   preserves satisfiability (and models restricted to the original
//!   variables).

use crate::{Cnf, Lit, PropFormula};

/// Converts a formula to an equisatisfiable CNF using the Tseitin
/// transformation.
///
/// Returns the CNF together with the index of the first auxiliary (Tseitin)
/// variable; variables below that index are exactly the variables of the
/// input formula, so a satisfying assignment of the CNF restricted to
/// `0..aux_start` is a satisfying assignment of `formula`.
pub fn tseitin_cnf(formula: &PropFormula) -> (Cnf, u32) {
    let aux_start = formula.num_vars();
    let mut cnf = Cnf::new(aux_start);
    match formula {
        PropFormula::True => {}
        PropFormula::False => cnf.add(vec![]),
        other => {
            let root = encode(other, &mut cnf);
            cnf.add(vec![root]);
        }
    }
    (cnf, aux_start)
}

/// Encodes `formula`, returning a literal equivalent to it under the added
/// defining clauses.
fn encode(formula: &PropFormula, cnf: &mut Cnf) -> Lit {
    match formula {
        PropFormula::Atom(v) => Lit::pos(*v),
        PropFormula::Not(inner) => encode(inner, cnf).negated(),
        PropFormula::True => {
            let v = cnf.fresh_var();
            cnf.add(vec![Lit::pos(v)]);
            Lit::pos(v)
        }
        PropFormula::False => {
            let v = cnf.fresh_var();
            cnf.add(vec![Lit::neg(v)]);
            Lit::pos(v)
        }
        PropFormula::And(parts) => {
            let lits: Vec<Lit> = parts.iter().map(|p| encode(p, cnf)).collect();
            let out = Lit::pos(cnf.fresh_var());
            // out → each lit
            for &l in &lits {
                cnf.add(vec![out.negated(), l]);
            }
            // all lits → out
            let mut clause: Vec<Lit> = lits.iter().map(|l| l.negated()).collect();
            clause.push(out);
            cnf.add(clause);
            out
        }
        PropFormula::Or(parts) => {
            let lits: Vec<Lit> = parts.iter().map(|p| encode(p, cnf)).collect();
            let out = Lit::pos(cnf.fresh_var());
            // each lit → out
            for &l in &lits {
                cnf.add(vec![l.negated(), out]);
            }
            // out → some lit
            let mut clause = lits;
            clause.push(out.negated());
            cnf.add(clause);
            out
        }
    }
}

/// Converts a formula to an *equivalent* CNF by pushing negations to atoms and
/// distributing ∨ over ∧.  Exponential in the worst case; intended for tests
/// and very small formulas only.
pub fn direct_cnf(formula: &PropFormula) -> Cnf {
    let mut cnf = Cnf::new(formula.num_vars());
    let clauses = clausify(formula, true);
    match clauses {
        None => {}
        Some(cs) => {
            for c in cs {
                cnf.add(c);
            }
        }
    }
    cnf
}

/// Returns `None` for "no clauses needed" (the formula is valid under the
/// polarity) or the clause set otherwise.
fn clausify(formula: &PropFormula, polarity: bool) -> Option<Vec<Vec<Lit>>> {
    match (formula, polarity) {
        (PropFormula::True, true) | (PropFormula::False, false) => None,
        (PropFormula::True, false) | (PropFormula::False, true) => Some(vec![vec![]]),
        (PropFormula::Atom(v), pol) => {
            Some(vec![vec![if pol { Lit::pos(*v) } else { Lit::neg(*v) }]])
        }
        (PropFormula::Not(inner), pol) => clausify(inner, !pol),
        (PropFormula::And(parts), true) | (PropFormula::Or(parts), false) => {
            // Conjunctive case (And under positive polarity, Or under negative
            // polarity): the clause sets of the children are simply unioned.
            // Polarity is unchanged for the children in both cases.
            let mut out = Vec::new();
            for p in parts {
                if let Some(cs) = clausify(p, polarity) {
                    out.extend(cs);
                }
            }
            if out.is_empty() {
                None
            } else {
                Some(out)
            }
        }
        (PropFormula::Or(parts), true) | (PropFormula::And(parts), false) => {
            // Disjunctive case: cross product of the parts' clause sets.
            // Polarity is unchanged for the children in both cases.
            let mut acc: Vec<Vec<Lit>> = vec![vec![]];
            for p in parts {
                match clausify(p, polarity) {
                    None => return None, // one disjunct is valid → whole disjunction valid
                    Some(cs) => {
                        let mut next = Vec::new();
                        for prefix in &acc {
                            for c in &cs {
                                let mut merged = prefix.clone();
                                merged.extend(c.iter().copied());
                                next.push(merged);
                            }
                        }
                        acc = next;
                    }
                }
            }
            Some(acc)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SatResult, Solver, Var};

    /// Brute-force satisfiability over the formula's own variables.
    fn brute_force_sat(f: &PropFormula) -> bool {
        let n = f.num_vars();
        assert!(n <= 16, "brute force limited to small formulas");
        (0..(1u32 << n)).any(|bits| f.eval(&|v: Var| bits & (1 << v.0) != 0))
    }

    fn sample_formulas() -> Vec<PropFormula> {
        let x = PropFormula::var(0);
        let y = PropFormula::var(1);
        let z = PropFormula::var(2);
        vec![
            PropFormula::True,
            PropFormula::False,
            x.clone(),
            PropFormula::not(x.clone()),
            PropFormula::and(vec![x.clone(), PropFormula::not(x.clone())]),
            PropFormula::or(vec![x.clone(), PropFormula::not(x.clone())]),
            PropFormula::iff(x.clone(), y.clone()),
            PropFormula::and(vec![
                PropFormula::iff(x.clone(), y.clone()),
                PropFormula::iff(y.clone(), z.clone()),
                PropFormula::not(PropFormula::iff(x.clone(), z.clone())),
            ]),
            PropFormula::implies(
                PropFormula::and(vec![x.clone(), y.clone()]),
                PropFormula::or(vec![z.clone(), PropFormula::not(x.clone())]),
            ),
            PropFormula::not(PropFormula::or(vec![
                PropFormula::and(vec![x.clone(), y.clone()]),
                PropFormula::and(vec![PropFormula::not(x.clone()), z.clone()]),
                PropFormula::and(vec![y.clone(), PropFormula::not(z.clone())]),
                PropFormula::and(vec![
                    PropFormula::not(y.clone()),
                    PropFormula::not(z.clone()),
                    x.clone(),
                ]),
                PropFormula::and(vec![
                    PropFormula::not(x.clone()),
                    PropFormula::not(y.clone()),
                    PropFormula::not(z.clone()),
                ]),
            ])),
        ]
    }

    #[test]
    fn tseitin_preserves_satisfiability() {
        for f in sample_formulas() {
            let (cnf, _) = tseitin_cnf(&f);
            let mut solver = Solver::new(cnf);
            let solver_sat = matches!(solver.solve(), SatResult::Sat(_));
            assert_eq!(solver_sat, brute_force_sat(&f), "formula {f}");
        }
    }

    #[test]
    fn tseitin_models_restrict_to_original_vars() {
        let f = PropFormula::and(vec![
            PropFormula::or(vec![PropFormula::var(0), PropFormula::var(1)]),
            PropFormula::not(PropFormula::var(0)),
        ]);
        let (cnf, aux_start) = tseitin_cnf(&f);
        assert_eq!(aux_start, 2);
        let mut solver = Solver::new(cnf);
        match solver.solve() {
            SatResult::Sat(model) => {
                let assignment = |v: Var| model.value(v).unwrap_or(false);
                assert!(f.eval(&assignment));
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn direct_cnf_is_equivalent_on_small_formulas() {
        for f in sample_formulas() {
            let cnf = direct_cnf(&f);
            let n = f.num_vars().max(cnf.num_vars());
            for bits in 0..(1u32 << n) {
                let assignment: Vec<bool> = (0..n).map(|i| bits & (1 << i) != 0).collect();
                let f_val = f.eval(&|v: Var| assignment.get(v.index()).copied().unwrap_or(false));
                assert_eq!(cnf.eval(&assignment), f_val, "formula {f} bits {bits:b}");
            }
        }
    }

    #[test]
    fn tseitin_of_constants() {
        let (cnf, _) = tseitin_cnf(&PropFormula::True);
        assert_eq!(cnf.num_clauses(), 0);
        let (cnf, _) = tseitin_cnf(&PropFormula::False);
        let mut solver = Solver::new(cnf);
        assert!(matches!(solver.solve(), SatResult::Unsat));
    }
}
