//! An iterative DPLL solver with unit propagation and conflict-directed
//! backjumping over a trail.

use crate::{Cnf, Lit, Var};
use std::fmt;

/// A satisfying assignment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<Option<bool>>,
}

impl Model {
    /// The value of a variable in the model.  Variables that were irrelevant
    /// to satisfiability may be unassigned (`None`); callers may treat them as
    /// either polarity.
    pub fn value(&self, var: Var) -> Option<bool> {
        self.values.get(var.index()).copied().flatten()
    }

    /// The value of a variable, defaulting unassigned variables to `false`.
    pub fn value_or_false(&self, var: Var) -> bool {
        self.value(var).unwrap_or(false)
    }

    /// Number of variable slots in the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if the model has no variable slots.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// The outcome of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SatResult {
    /// Satisfiable, with a witness model.
    Sat(Model),
    /// Unsatisfiable.
    Unsat,
}

impl SatResult {
    /// True for [`SatResult::Sat`].
    pub fn is_sat(&self) -> bool {
        matches!(self, SatResult::Sat(_))
    }
}

/// Solver statistics, exposed for the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} conflicts={}",
            self.decisions, self.propagations, self.conflicts
        )
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assignment {
    Unassigned,
    True,
    False,
}

impl Assignment {
    fn from_bool(b: bool) -> Self {
        if b {
            Assignment::True
        } else {
            Assignment::False
        }
    }
    fn satisfies(self, lit: Lit) -> bool {
        match self {
            Assignment::Unassigned => false,
            Assignment::True => lit.is_positive(),
            Assignment::False => !lit.is_positive(),
        }
    }
    fn falsifies(self, lit: Lit) -> bool {
        match self {
            Assignment::Unassigned => false,
            Assignment::True => !lit.is_positive(),
            Assignment::False => lit.is_positive(),
        }
    }
}

/// An iterative DPLL SAT solver.
///
/// Features: two-watched-literal–free counting propagation over occurrence
/// lists, chronological backtracking with decision flipping, a
/// most-occurrences decision heuristic, and deterministic behaviour.
/// This is ample for the grounded ∃*∀* instances produced by the verification
/// crate, which are wide but shallow.
#[derive(Debug)]
pub struct Solver {
    cnf: Cnf,
    assignment: Vec<Assignment>,
    /// For each variable, indexes of clauses in which it occurs.
    occurrences: Vec<Vec<usize>>,
    /// Trail of assigned literals, with the decision level at which each was set.
    trail: Vec<(Lit, usize)>,
    /// Indexes into `trail` where each decision level starts.
    level_starts: Vec<usize>,
    stats: SolverStats,
}

impl Solver {
    /// Creates a solver for a CNF formula.
    pub fn new(cnf: Cnf) -> Self {
        let n = cnf.num_vars() as usize;
        let mut occurrences = vec![Vec::new(); n];
        for (ci, clause) in cnf.clauses().iter().enumerate() {
            for lit in clause.literals() {
                occurrences[lit.var().index()].push(ci);
            }
        }
        Solver {
            cnf,
            assignment: vec![Assignment::Unassigned; n],
            occurrences,
            trail: Vec::new(),
            level_starts: Vec::new(),
            stats: SolverStats::default(),
        }
    }

    /// Solver statistics accumulated so far.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Decides satisfiability.
    pub fn solve(&mut self) -> SatResult {
        // An explicit empty clause is immediately unsatisfiable.
        if self.cnf.clauses().iter().any(|c| c.is_empty()) {
            return SatResult::Unsat;
        }

        // Each stack entry records the decision literal and whether the
        // flipped polarity has already been tried.
        let mut decisions: Vec<(Lit, bool)> = Vec::new();

        // Initial unit propagation at level 0.
        if !self.propagate() {
            return SatResult::Unsat;
        }

        loop {
            match self.pick_branch_variable() {
                None => {
                    return SatResult::Sat(self.extract_model());
                }
                Some(var) => {
                    let lit = Lit::pos(var);
                    self.stats.decisions += 1;
                    self.push_level(lit);
                    decisions.push((lit, false));
                }
            }

            // Propagate; on conflict, backtrack.
            while !self.propagate() {
                self.stats.conflicts += 1;
                // Find the most recent decision that has an untried polarity.
                loop {
                    match decisions.pop() {
                        None => return SatResult::Unsat,
                        Some((lit, true)) => {
                            // Both polarities tried: undo and continue popping.
                            self.pop_level();
                            let _ = lit;
                        }
                        Some((lit, false)) => {
                            self.pop_level();
                            let flipped = lit.negated();
                            self.push_level(flipped);
                            decisions.push((flipped, true));
                            break;
                        }
                    }
                }
            }
        }
    }

    fn extract_model(&self) -> Model {
        let values = self
            .assignment
            .iter()
            .map(|a| match a {
                Assignment::Unassigned => None,
                Assignment::True => Some(true),
                Assignment::False => Some(false),
            })
            .collect();
        Model { values }
    }

    fn push_level(&mut self, decision: Lit) {
        self.level_starts.push(self.trail.len());
        self.enqueue(decision);
    }

    fn pop_level(&mut self) {
        let start = self.level_starts.pop().unwrap_or(0);
        while self.trail.len() > start {
            let (lit, _) = self.trail.pop().expect("trail length checked");
            self.assignment[lit.var().index()] = Assignment::Unassigned;
        }
    }

    fn enqueue(&mut self, lit: Lit) -> bool {
        let current = self.assignment[lit.var().index()];
        if current.satisfies(lit) {
            return true;
        }
        if current.falsifies(lit) {
            return false;
        }
        self.assignment[lit.var().index()] = Assignment::from_bool(lit.is_positive());
        self.trail.push((lit, self.level_starts.len()));
        true
    }

    /// Unit propagation to fixpoint.  Returns false on conflict.
    fn propagate(&mut self) -> bool {
        let mut queue_start = self.trail.len().saturating_sub(1);
        // Re-scan from the start of the current level to pick up the decision
        // literal itself; if the trail is empty scan all clauses once.
        if self.trail.is_empty() {
            // Level 0: scan every clause for units.
            loop {
                let mut changed = false;
                for ci in 0..self.cnf.num_clauses() {
                    match self.clause_status(ci) {
                        ClauseStatus::Conflict => return false,
                        ClauseStatus::Unit(lit) => {
                            self.stats.propagations += 1;
                            if !self.enqueue(lit) {
                                return false;
                            }
                            changed = true;
                        }
                        _ => {}
                    }
                }
                if !changed {
                    break;
                }
            }
            return true;
        }
        if let Some(&start) = self.level_starts.last() {
            queue_start = start;
        }
        let mut i = queue_start;
        while i < self.trail.len() {
            let (lit, _) = self.trail[i];
            let falsified = lit.negated();
            let clause_ids = self.occurrences[falsified.var().index()].clone();
            for ci in clause_ids {
                match self.clause_status(ci) {
                    ClauseStatus::Conflict => return false,
                    ClauseStatus::Unit(unit_lit) => {
                        self.stats.propagations += 1;
                        if !self.enqueue(unit_lit) {
                            return false;
                        }
                    }
                    _ => {}
                }
            }
            i += 1;
        }
        true
    }

    fn clause_status(&self, clause_index: usize) -> ClauseStatus {
        let clause = &self.cnf.clauses()[clause_index];
        let mut unassigned = None;
        let mut unassigned_count = 0usize;
        for &lit in clause.literals() {
            let a = self.assignment[lit.var().index()];
            if a.satisfies(lit) {
                return ClauseStatus::Satisfied;
            }
            if a == Assignment::Unassigned {
                unassigned_count += 1;
                unassigned = Some(lit);
            }
        }
        match (unassigned_count, unassigned) {
            (0, _) => ClauseStatus::Conflict,
            (1, Some(lit)) => ClauseStatus::Unit(lit),
            _ => ClauseStatus::Unresolved,
        }
    }

    /// Picks the unassigned variable with the most occurrences in unresolved
    /// clauses (deterministic tie-break by index).
    fn pick_branch_variable(&self) -> Option<Var> {
        let mut best: Option<(usize, usize)> = None; // (occurrences, index)
        for (i, a) in self.assignment.iter().enumerate() {
            if *a == Assignment::Unassigned {
                let occ = self.occurrences[i].len();
                match best {
                    Some((best_occ, _)) if best_occ >= occ => {}
                    _ => best = Some((occ, i)),
                }
            }
        }
        best.map(|(_, i)| Var(i as u32))
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ClauseStatus {
    Satisfied,
    Conflict,
    Unit(Lit),
    Unresolved,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Clause;

    fn cnf_from(clauses: &[&[i32]]) -> Cnf {
        let mut cnf = Cnf::new(0);
        for clause in clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| {
                    let v = Var(l.unsigned_abs() - 1);
                    if l > 0 {
                        Lit::pos(v)
                    } else {
                        Lit::neg(v)
                    }
                })
                .collect();
            cnf.add_clause(Clause::new(lits));
        }
        cnf
    }

    fn solve(clauses: &[&[i32]]) -> SatResult {
        Solver::new(cnf_from(clauses)).solve()
    }

    #[test]
    fn empty_cnf_is_sat() {
        assert!(solve(&[]).is_sat());
    }

    #[test]
    fn empty_clause_is_unsat() {
        assert!(!solve(&[&[]]).is_sat());
    }

    #[test]
    fn unit_clauses_propagate() {
        match solve(&[&[1], &[-2], &[2, 3]]) {
            SatResult::Sat(m) => {
                assert_eq!(m.value(Var(0)), Some(true));
                assert_eq!(m.value(Var(1)), Some(false));
                assert_eq!(m.value(Var(2)), Some(true));
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn contradictory_units_are_unsat() {
        assert!(!solve(&[&[1], &[-1]]).is_sat());
    }

    #[test]
    fn classic_pigeonhole_2_into_1_is_unsat() {
        // p11, p21: both pigeons into hole 1, can't share.
        assert!(!solve(&[&[1], &[2], &[-1, -2]]).is_sat());
    }

    #[test]
    fn pigeonhole_3_into_2_is_unsat() {
        // variables p_{i,j}: pigeon i in hole j; i in 1..=3, j in 1..=2
        // var index = (i-1)*2 + j
        let mut clauses: Vec<Vec<i32>> = Vec::new();
        for i in 0..3 {
            clauses.push(vec![i * 2 + 1, i * 2 + 2]);
        }
        for j in 1..=2i32 {
            for a in 0..3i32 {
                for b in (a + 1)..3i32 {
                    clauses.push(vec![-(a * 2 + j), -(b * 2 + j)]);
                }
            }
        }
        let refs: Vec<&[i32]> = clauses.iter().map(|c| c.as_slice()).collect();
        assert!(!solve(&refs).is_sat());
    }

    #[test]
    fn satisfiable_3cnf_returns_a_model_that_checks_out() {
        let clauses: &[&[i32]] = &[
            &[1, 2, -3],
            &[-1, 3, 4],
            &[-2, -4, 5],
            &[1, -5, 3],
            &[2, 4, 5],
            &[-1, -2, -5],
        ];
        let cnf = cnf_from(clauses);
        match Solver::new(cnf.clone()).solve() {
            SatResult::Sat(m) => {
                let assignment: Vec<bool> = (0..cnf.num_vars())
                    .map(|i| m.value_or_false(Var(i)))
                    .collect();
                assert!(cnf.eval(&assignment));
            }
            SatResult::Unsat => panic!("expected sat"),
        }
    }

    #[test]
    fn stats_are_recorded() {
        let mut solver = Solver::new(cnf_from(&[&[1, 2], &[-1, 2], &[1, -2], &[-1, -2]]));
        let result = solver.solve();
        assert!(!result.is_sat());
        assert!(solver.stats().conflicts >= 1);
    }

    #[test]
    fn model_accessors() {
        match solve(&[&[1]]) {
            SatResult::Sat(m) => {
                assert!(!m.is_empty());
                assert_eq!(m.len(), 1);
                assert!(m.value_or_false(Var(0)));
                assert_eq!(m.value(Var(99)), None);
            }
            SatResult::Unsat => panic!(),
        }
    }

    /// Exhaustive cross-check against brute force on random-ish small CNFs.
    #[test]
    fn agrees_with_brute_force_on_small_instances() {
        // deterministic pseudo-random generator (xorshift) to avoid a rand dependency here
        let mut state: u64 = 0x9E3779B97F4A7C15;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _case in 0..200 {
            let num_vars = 1 + (next() % 5) as u32;
            let num_clauses = (next() % 8) as usize;
            let mut cnf = Cnf::new(num_vars);
            for _ in 0..num_clauses {
                let len = 1 + (next() % 3) as usize;
                let mut lits = Vec::new();
                for _ in 0..len {
                    let v = Var((next() % num_vars as u64) as u32);
                    let pos = next() % 2 == 0;
                    lits.push(if pos { Lit::pos(v) } else { Lit::neg(v) });
                }
                cnf.add_clause(Clause::new(lits));
            }
            let brute = (0..(1u32 << num_vars)).any(|bits| {
                let assignment: Vec<bool> = (0..num_vars).map(|i| bits & (1 << i) != 0).collect();
                cnf.eval(&assignment)
            });
            let solved = Solver::new(cnf).solve().is_sat();
            assert_eq!(solved, brute);
        }
    }
}
