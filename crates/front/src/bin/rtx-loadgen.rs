//! `rtx-loadgen` — a load generator simulating a fleet of concurrent
//! customer sessions against the sharded runtime.
//!
//! ```text
//! rtx-loadgen [--mode direct|wire] [--sessions N] [--steps K] [--shards S]
//!             [--threads T] [--addr host:port] [--seed N]
//! ```
//!
//! The fleet mixes every servable workload: the paper's `short` customers,
//! `category` customers, **demand-driven** `storefront` browsers, and the
//! four monitored guardrail scenarios (clean traffic, observers attached in
//! direct mode).  Session `i`'s inputs are deterministic in `--seed`, so two
//! runs of the same configuration replay the same fleet.
//!
//! * `--mode direct` (default) opens sessions in process on a
//!   [`ShardedRuntime`] — this is the scale path: `--sessions 100000` holds
//!   100k+ concurrent sessions over one shared catalog.
//! * `--mode wire` drives the same traffic through the `rtx-frontd` line
//!   protocol (spawning an in-process server unless `--addr` points at a
//!   running one), retrying on `BUSY` backpressure.

use rtx_core::{MonitorPolicy, ShardedRuntime};
use rtx_datalog::{Parallelism, ResidentDb};
use rtx_front::{combined_catalog, render_instance, FrontClient, FrontConfig, FrontServer};
use rtx_relational::InstanceSequence;
use rtx_workloads::scenarios::Scenario;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;

struct Config {
    mode: Mode,
    sessions: usize,
    steps: usize,
    shards: usize,
    threads: usize,
    addr: Option<String>,
    seed: u64,
}

#[derive(PartialEq)]
enum Mode {
    Direct,
    Wire,
}

/// One simulated session: which model to open (and how), and its input
/// sequence.  `kind = i % 7` cycles through every servable workload.
struct Plan {
    name: String,
    model: &'static str,
    demanded: bool,
    monitored: bool,
    inputs: InstanceSequence,
}

fn plan(i: usize, steps: usize, seed: u64, catalog: &rtx_relational::Instance) -> Plan {
    let scenarios = Scenario::all();
    let session_seed = seed + i as u64;
    match i % 7 {
        0 => Plan {
            name: format!("short-{i}"),
            model: "short",
            demanded: false,
            monitored: false,
            inputs: rtx_workloads::customer_session(catalog, steps, 200, 0.9, session_seed),
        },
        1 => Plan {
            name: format!("category-{i}"),
            model: "category",
            demanded: false,
            monitored: false,
            inputs: rtx_workloads::customer_session(catalog, steps, 200, 0.9, session_seed),
        },
        2 => Plan {
            name: format!("storefront-{i}"),
            model: "storefront",
            demanded: true,
            monitored: false,
            inputs: rtx_workloads::browse_session(steps, 200, session_seed),
        },
        k => {
            let scenario = &scenarios[k - 3];
            Plan {
                name: format!("{}-{i}", scenario.name),
                model: scenario.name,
                demanded: false,
                monitored: true,
                inputs: scenario.clean_inputs.clone(),
            }
        }
    }
}

fn run_direct(config: &Config) -> Result<u64, String> {
    let catalog = combined_catalog();
    let fleet = ShardedRuntime::shared_with(
        Arc::new(ResidentDb::new(catalog.clone())),
        config.shards,
        Parallelism::default(),
    );
    let db = Arc::clone(fleet.database());
    let catalog = Arc::new(catalog);

    let mut handles = Vec::with_capacity(config.threads);
    for t in 0..config.threads {
        let fleet = fleet.clone();
        let db = Arc::clone(&db);
        let catalog = Arc::clone(&catalog);
        let (sessions, steps, seed, threads) =
            (config.sessions, config.steps, config.seed, config.threads);
        handles.push(std::thread::spawn(move || -> Result<u64, String> {
            let scenarios = Scenario::all();
            // Phase 1: open this thread's whole slice of the fleet, so the
            // configured session count is genuinely *concurrent* — every
            // session stays open while every other one steps.
            let mut local = Vec::new();
            for i in (t..sessions).step_by(threads) {
                let plan = plan(i, steps, seed, &catalog);
                let transducer = rtx_front::lookup_model(plan.model)
                    .expect("planned models exist")
                    .transducer;
                let mut session = if plan.demanded {
                    fleet.open_session_with_demand(
                        plan.name.clone(),
                        transducer,
                        rtx_workloads::storefront_demand(),
                    )
                } else {
                    fleet.open_session(plan.name.clone(), transducer)
                }
                .map_err(|e| format!("{}: {e}", plan.name))?;
                if plan.monitored {
                    let scenario = scenarios
                        .iter()
                        .find(|s| s.name == plan.model)
                        .expect("monitored plans are scenarios");
                    session.set_monitor_policy(MonitorPolicy::Observe);
                    session.attach_observer(Box::new(
                        scenario.monitor(&db).map_err(|e| e.to_string())?,
                    ));
                }
                local.push((plan, session));
            }
            // Phase 2: step the slice round-robin, one input per session
            // per round — the interleaving a real fleet produces.
            let mut stepped = 0u64;
            let rounds = local
                .iter()
                .map(|(plan, _)| plan.inputs.len())
                .max()
                .unwrap_or(0);
            for round in 0..rounds {
                for (plan, session) in &mut local {
                    if let Some(input) = plan.inputs.get(round) {
                        session
                            .step(input)
                            .map_err(|e| format!("{}: {e}", plan.name))?;
                        stepped += 1;
                    }
                }
            }
            Ok(stepped)
        }));
    }
    let mut total = 0u64;
    for handle in handles {
        total += handle.join().map_err(|_| "worker panicked".to_string())??;
    }
    let health = fleet.health();
    if !health.quarantined_sessions.is_empty() || health.rejections != 0 {
        return Err(format!(
            "clean traffic must not quarantine or reject: {health:?}"
        ));
    }
    Ok(total)
}

fn run_wire(config: &Config) -> Result<u64, String> {
    // Spawn an in-process server unless the caller pointed us at one.
    let (addr, serving) = match &config.addr {
        Some(addr) => (addr.parse().map_err(|e| format!("--addr: {e}"))?, None),
        None => {
            let server = FrontServer::bind(
                "127.0.0.1:0",
                FrontConfig {
                    shards: config.shards,
                    ..FrontConfig::default()
                },
            )
            .map_err(|e| e.to_string())?;
            let addr = server.local_addr().map_err(|e| e.to_string())?;
            (addr, Some(std::thread::spawn(move || server.serve())))
        }
    };

    let catalog = Arc::new(combined_catalog());
    let mut handles = Vec::with_capacity(config.threads);
    for t in 0..config.threads {
        let catalog = Arc::clone(&catalog);
        let (sessions, steps, seed, threads) =
            (config.sessions, config.steps, config.seed, config.threads);
        handles.push(std::thread::spawn(move || -> Result<u64, String> {
            let mut client = FrontClient::connect(addr).map_err(|e| e.to_string())?;
            let mut stepped = 0u64;
            for i in (t..sessions).step_by(threads) {
                let plan = plan(i, steps, seed, &catalog);
                let open = if plan.demanded {
                    format!("OPEN {} {} demand", plan.name, plan.model)
                } else {
                    format!("OPEN {} {}", plan.name, plan.model)
                };
                let reply = client.request_retrying(&open).map_err(|e| e.to_string())?;
                if !reply.starts_with("OK") {
                    return Err(format!("{open}: {reply}"));
                }
                // Batched ingestion: the whole session's steps go down the
                // wire as one BATCH, one shard-queue entry.
                let lines: Vec<String> = plan.inputs.iter().map(render_instance).collect();
                let replies = client
                    .batch(&plan.name, &lines)
                    .map_err(|e| e.to_string())?;
                let last = replies.last().cloned().unwrap_or_default();
                if last.starts_with("BUSY") {
                    // The batch never entered the queue; resubmit it.
                    let replies = client
                        .batch(&plan.name, &lines)
                        .map_err(|e| e.to_string())?;
                    stepped += replies.iter().filter(|r| r.starts_with("OUT")).count() as u64;
                } else {
                    stepped += replies.iter().filter(|r| r.starts_with("OUT")).count() as u64;
                }
                let close = client
                    .request_retrying(&format!("CLOSE {}", plan.name))
                    .map_err(|e| e.to_string())?;
                if !close.starts_with("OK") {
                    return Err(format!("CLOSE {}: {close}", plan.name));
                }
            }
            Ok(stepped)
        }));
    }
    let mut total = 0u64;
    for handle in handles {
        total += handle.join().map_err(|_| "client panicked".to_string())??;
    }
    if let Some(serving) = serving {
        let mut client = FrontClient::connect(addr).map_err(|e| e.to_string())?;
        client.request("SHUTDOWN").map_err(|e| e.to_string())?;
        serving
            .join()
            .map_err(|_| "server panicked".to_string())?
            .map_err(|e| e.to_string())?;
    }
    Ok(total)
}

fn main() -> ExitCode {
    let mut config = Config {
        mode: Mode::Direct,
        sessions: 512,
        steps: 4,
        shards: 4,
        threads: 4,
        addr: None,
        seed: 42,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match arg.as_str() {
            "--mode" => {
                config.mode = match value("--mode").as_str() {
                    "direct" => Mode::Direct,
                    "wire" => Mode::Wire,
                    other => {
                        eprintln!("unknown mode `{other}` (direct|wire)");
                        return ExitCode::FAILURE;
                    }
                }
            }
            "--sessions" => config.sessions = value("--sessions").parse().expect("--sessions: int"),
            "--steps" => config.steps = value("--steps").parse().expect("--steps: int"),
            "--shards" => config.shards = value("--shards").parse().expect("--shards: int"),
            "--threads" => config.threads = value("--threads").parse().expect("--threads: int"),
            "--seed" => config.seed = value("--seed").parse().expect("--seed: int"),
            "--addr" => config.addr = Some(value("--addr")),
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!(
                    "usage: rtx-loadgen [--mode direct|wire] [--sessions N] [--steps K] \
                     [--shards S] [--threads T] [--addr host:port] [--seed N]"
                );
                return ExitCode::FAILURE;
            }
        }
    }
    config.threads = config.threads.max(1);

    let started = Instant::now();
    let result = match config.mode {
        Mode::Direct => run_direct(&config),
        Mode::Wire => run_wire(&config),
    };
    match result {
        Ok(total_steps) => {
            let elapsed = started.elapsed();
            let rate = total_steps as f64 / elapsed.as_secs_f64().max(1e-9);
            println!(
                "loadgen: mode={} sessions={} shards={} threads={} steps={} elapsed_ms={} steps_per_sec={:.0}",
                if config.mode == Mode::Direct { "direct" } else { "wire" },
                config.sessions,
                config.shards,
                config.threads,
                total_steps,
                elapsed.as_millis(),
                rate
            );
            ExitCode::SUCCESS
        }
        Err(detail) => {
            eprintln!("loadgen: {detail}");
            ExitCode::FAILURE
        }
    }
}
