//! `rtx-frontd` — the line-protocol front-end daemon for the sharded
//! session runtime.
//!
//! ```text
//! rtx-frontd [--addr 127.0.0.1:7171] [--shards N] [--queue-depth N] [--smoke]
//! ```
//!
//! `--smoke` binds an ephemeral port, runs the scripted
//! [`rtx_front::run_smoke`] exchange against itself and exits non-zero on
//! any mismatch — the CI end-to-end check.

use rtx_front::{run_smoke, FrontConfig, FrontServer};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut addr = "127.0.0.1:7171".to_string();
    let mut config = FrontConfig::default();
    let mut smoke = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |what: &str| {
            args.next()
                .unwrap_or_else(|| panic!("{what} requires a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--shards" => {
                config.shards = value("--shards").parse().expect("--shards: positive int")
            }
            "--queue-depth" => {
                config.queue_depth = value("--queue-depth")
                    .parse()
                    .expect("--queue-depth: positive int")
            }
            "--smoke" => smoke = true,
            other => {
                eprintln!("unknown flag `{other}`");
                eprintln!("usage: rtx-frontd [--addr A] [--shards N] [--queue-depth N] [--smoke]");
                return ExitCode::FAILURE;
            }
        }
    }

    if smoke {
        addr = "127.0.0.1:0".to_string();
    }
    let server = match FrontServer::bind(&addr, config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("rtx-frontd: bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let bound = server.local_addr().expect("bound listener has an address");
    println!(
        "rtx-frontd: serving on {bound} with {} shards (queue depth {})",
        config.shards, config.queue_depth
    );

    if smoke {
        let client = std::thread::spawn(move || run_smoke(bound));
        if let Err(e) = server.serve() {
            eprintln!("rtx-frontd: serve: {e}");
            return ExitCode::FAILURE;
        }
        return match client.join().expect("smoke client panicked") {
            Ok(()) => {
                println!("rtx-frontd: smoke exchange passed");
                ExitCode::SUCCESS
            }
            Err(detail) => {
                eprintln!("rtx-frontd: smoke exchange failed: {detail}");
                ExitCode::FAILURE
            }
        };
    }

    match server.serve() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rtx-frontd: serve: {e}");
            ExitCode::FAILURE
        }
    }
}
