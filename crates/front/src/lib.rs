//! # rtx-front
//!
//! A wire-protocol front-end for the sharded session runtime
//! ([`rtx_core::ShardedRuntime`]), plus the pieces a load generator needs to
//! drive it: a combined catalog covering every bundled business model, a
//! model registry, and a line-protocol client.
//!
//! The paper's setting is many customers interacting with one electronic
//! commerce service over a network; this crate is that network boundary.
//! Deliberately **no external async runtime** is used (the workspace is
//! offline and dependency-free): concurrency is plain threads plus bounded
//! queues, which makes the backpressure story explicit rather than hidden in
//! an executor —
//!
//! * one accept loop, one thread per connection, parsing line-delimited
//!   commands;
//! * one worker thread per shard **owning** that shard's sessions (sessions
//!   never migrate, so no session-level locking exists anywhere);
//! * a bounded [`mpsc::sync_channel`] in front of every shard worker: a
//!   command for a full queue is answered `BUSY` immediately — callers see
//!   overload as a typed reply, never as an unbounded queue or a stalled
//!   socket;
//! * batched ingestion: a `BATCH` submits many steps as **one** queue entry,
//!   so a high-rate client amortizes queue traffic without starving
//!   interactive sessions (per-shard FIFO order is preserved).
//!
//! # Protocol
//!
//! Requests are single lines, replies are single lines (except `BATCH`,
//! which replies one `OUT` line per step followed by `OK`):
//!
//! | request | reply |
//! |---|---|
//! | `OPEN <session> <model> [demand]` | `OK open <session> shard=<k>` |
//! | `STEP <session> <facts>` | `OUT <facts>` |
//! | `BATCH <session> <n>` + n fact lines | n× `OUT <facts>`, then `OK batch <n>` |
//! | `CLOSE <session>` | `OK close <session>` |
//! | `HEALTH` | `OK health active=… quarantined=… violations=… rejections=…` |
//! | `SHUTDOWN` | `OK bye` |
//!
//! plus `ERR <detail>` for any failure and `BUSY <detail>` for backpressure.
//! `<facts>` is `-` (empty instance) or `rel(v,…);rel(v,…)` with integer or
//! bare-string values — see [`parse_facts`]/[`render_instance`], which
//! round-trip.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use rtx_core::{models, SessionDemand, ShardedRuntime, ShardedSession, SpocusTransducer};
use rtx_datalog::{Parallelism, ResidentDb};
use rtx_relational::{Instance, Schema, Tuple, Value};
use rtx_workloads::scenarios::Scenario;
use std::collections::{BTreeMap, HashMap};
use std::io::{self, BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc};
use std::thread;

/// A named business model servable by the front-end: the transducer plus,
/// when the model supports it, the demand a `OPEN … demand` session is
/// opened with.
pub struct FrontModel {
    /// Model name, as used in `OPEN` commands.
    pub name: &'static str,
    /// The Spocus business model.
    pub transducer: Arc<SpocusTransducer>,
    /// The demand of an `OPEN … demand` session, for models that define one.
    pub demand: Option<SessionDemand>,
}

/// Looks up a servable model by name: the paper's `short` model, the
/// workload `category`/`storefront` models (the latter with its
/// per-session demand), and the four guardrail scenarios.
pub fn lookup_model(name: &str) -> Option<FrontModel> {
    match name {
        "short" => Some(FrontModel {
            name: "short",
            transducer: Arc::new(models::short()),
            demand: None,
        }),
        "category" => Some(FrontModel {
            name: "category",
            transducer: Arc::new(rtx_workloads::category_model()),
            demand: None,
        }),
        "storefront" => Some(FrontModel {
            name: "storefront",
            transducer: Arc::new(rtx_workloads::storefront_model()),
            demand: Some(rtx_workloads::storefront_demand()),
        }),
        _ => Scenario::all()
            .into_iter()
            .find(|s| s.name == name)
            .map(|s| FrontModel {
                name: s.name,
                transducer: s.transducer,
                demand: None,
            }),
    }
}

/// The model names [`lookup_model`] serves.
pub const MODEL_NAMES: &[&str] = &[
    "short",
    "category",
    "storefront",
    "auction",
    "inventory",
    "escrow",
    "fraud",
];

/// One catalog covering **every** servable model's `db` schema: the paper's
/// Figure 1 rows, a generated category catalog (products `p0`–`p199` with
/// prices and categories), and the guardrail scenarios' fixtures.  The
/// front-end makes this resident once and shares it across all shards.
pub fn combined_catalog() -> Instance {
    let mut sources = vec![
        models::figure1_database(),
        rtx_workloads::category_catalog(200, 8, 1),
    ];
    sources.extend(Scenario::all().into_iter().map(|s| s.database));

    let mut arities: BTreeMap<String, usize> = BTreeMap::new();
    for source in &sources {
        for (name, relation) in source.iter() {
            let prior = arities.insert(name.as_str().to_string(), relation.arity());
            assert!(
                prior.is_none_or(|a| a == relation.arity()),
                "model catalogs disagree on the arity of `{name}`"
            );
        }
    }
    let schema = Schema::from_pairs(arities).expect("catalog relation names are distinct");
    let mut combined = Instance::empty(&schema);
    for source in &sources {
        for (name, relation) in source.iter() {
            combined
                .absorb_relation(name.clone(), relation)
                .expect("arities were checked above");
        }
    }
    combined
}

/// Parses a `<facts>` spec (`-`, or `rel(v,…);rel(v,…)`) into an instance
/// of `schema`.  Values parsing as `i64` become integers, everything else a
/// string symbol — the inverse of [`render_instance`] for the value shapes
/// the bundled workloads use.
pub fn parse_facts(spec: &str, schema: &Schema) -> Result<Instance, String> {
    let mut instance = Instance::empty(schema);
    let spec = spec.trim();
    if spec == "-" || spec.is_empty() {
        return Ok(instance);
    }
    for fact in spec.split(';').filter(|f| !f.is_empty()) {
        let (relation, args) = fact
            .strip_suffix(')')
            .and_then(|f| f.split_once('('))
            .ok_or_else(|| format!("malformed fact `{fact}`: expected rel(v,...)"))?;
        let values: Vec<Value> = if args.is_empty() {
            Vec::new()
        } else {
            args.split(',').map(|tok| parse_value(tok.trim())).collect()
        };
        instance
            .insert(relation, Tuple::new(values))
            .map_err(|e| e.to_string())?;
    }
    Ok(instance)
}

fn parse_value(token: &str) -> Value {
    token
        .parse::<i64>()
        .map(Value::int)
        .unwrap_or_else(|_| Value::str(token))
}

/// Renders an instance as a sorted `rel(v,…);rel(v,…)` facts spec (`-` when
/// empty) — the reply format of `STEP`, and valid [`parse_facts`] input.
pub fn render_instance(instance: &Instance) -> String {
    let mut facts: Vec<String> = Vec::new();
    for (name, relation) in instance.iter() {
        for tuple in relation.iter() {
            let values: Vec<String> = (0..relation.arity())
                .map(|i| render_value(tuple.get(i).expect("arity-checked tuple")))
                .collect();
            facts.push(format!("{}({})", name.as_str(), values.join(",")));
        }
    }
    if facts.is_empty() {
        return "-".to_string();
    }
    facts.sort();
    facts.join(";")
}

fn render_value(value: &Value) -> String {
    match value.as_int() {
        Some(i) => i.to_string(),
        None => value.as_str().unwrap_or_default().to_string(),
    }
}

/// Front-end server configuration.
#[derive(Debug, Clone, Copy)]
pub struct FrontConfig {
    /// Number of shard workers (session shards).
    pub shards: usize,
    /// Per-shard bounded queue depth: commands beyond this are answered
    /// `BUSY` instead of queueing without bound.
    pub queue_depth: usize,
    /// Total evaluation worker budget, divided among the shards.
    pub parallelism: Parallelism,
}

impl Default for FrontConfig {
    fn default() -> Self {
        FrontConfig {
            shards: 2,
            queue_depth: 64,
            parallelism: Parallelism::default(),
        }
    }
}

/// A shard-worker command, carried over the bounded per-shard queue.
enum Request {
    Open {
        session: String,
        model: String,
        demanded: bool,
    },
    /// One or more steps for one session — a `STEP` is a batch of one.
    Steps {
        session: String,
        facts: Vec<String>,
        batch: bool,
    },
    Close {
        session: String,
    },
}

struct Job {
    request: Request,
    reply: mpsc::Sender<Vec<String>>,
}

/// The line-protocol server: a [`ShardedRuntime`] fronted by one bounded
/// queue + worker thread per shard.  See the [crate docs](self) for the
/// protocol and threading model.
pub struct FrontServer {
    listener: TcpListener,
    fleet: ShardedRuntime,
    queues: Vec<mpsc::SyncSender<Job>>,
    workers: Vec<thread::JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

impl FrontServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and spawns
    /// the shard workers over a freshly resident [`combined_catalog`].
    pub fn bind(addr: &str, config: FrontConfig) -> io::Result<FrontServer> {
        let listener = TcpListener::bind(addr)?;
        let fleet = ShardedRuntime::shared_with(
            Arc::new(ResidentDb::new(combined_catalog())),
            config.shards,
            config.parallelism,
        );
        let mut queues = Vec::with_capacity(fleet.shard_count());
        let mut workers = Vec::with_capacity(fleet.shard_count());
        for shard in 0..fleet.shard_count() {
            let (tx, rx) = mpsc::sync_channel::<Job>(config.queue_depth.max(1));
            let fleet = fleet.clone();
            workers.push(
                thread::Builder::new()
                    .name(format!("rtx-front-shard-{shard}"))
                    .spawn(move || shard_worker(fleet, rx))
                    .expect("spawn shard worker"),
            );
            queues.push(tx);
        }
        Ok(FrontServer {
            listener,
            fleet,
            queues,
            workers,
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound address (useful with an ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until a client sends `SHUTDOWN`, then drains:
    /// joins every connection thread, closes the shard queues and joins the
    /// workers.
    pub fn serve(self) -> io::Result<()> {
        let addr = self.listener.local_addr()?;
        let mut connections = Vec::new();
        loop {
            let (stream, _) = self.listener.accept()?;
            if self.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let fleet = self.fleet.clone();
            let queues = self.queues.clone();
            let shutdown = Arc::clone(&self.shutdown);
            connections.push(
                thread::Builder::new()
                    .name("rtx-front-conn".to_string())
                    .spawn(move || {
                        let _ = serve_connection(stream, fleet, queues, shutdown, addr);
                    })
                    .expect("spawn connection handler"),
            );
        }
        for conn in connections {
            let _ = conn.join();
        }
        drop(self.queues);
        for worker in self.workers {
            let _ = worker.join();
        }
        Ok(())
    }
}

/// Handles one client connection: parse a command line, route it to the
/// owning shard's queue (or answer directly for `HEALTH`/`SHUTDOWN`), relay
/// the worker's reply lines.
fn serve_connection(
    stream: TcpStream,
    fleet: ShardedRuntime,
    queues: Vec<mpsc::SyncSender<Job>>,
    shutdown: Arc<AtomicBool>,
    server_addr: SocketAddr,
) -> io::Result<()> {
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    let mut line = String::new();
    loop {
        line.clear();
        if reader.read_line(&mut line)? == 0 {
            return Ok(());
        }
        let command = line.trim();
        if command.is_empty() {
            continue;
        }
        let mut parts = command.splitn(3, ' ');
        let verb = parts.next().unwrap_or_default().to_ascii_uppercase();
        match verb.as_str() {
            "HEALTH" => {
                let health = fleet.health();
                writeln!(
                    writer,
                    "OK health active={} quarantined={} violations={} rejections={}",
                    health.active_sessions,
                    health.quarantined_sessions.len(),
                    health.violations,
                    health.rejections
                )?;
            }
            "SHUTDOWN" => {
                shutdown.store(true, Ordering::SeqCst);
                writeln!(writer, "OK bye")?;
                // Wake the accept loop so it observes the flag.
                let _ = TcpStream::connect(server_addr);
                return Ok(());
            }
            "OPEN" => {
                let session = parts.next().unwrap_or_default().to_string();
                let rest = parts.next().unwrap_or_default();
                let mut rest = rest.split_whitespace();
                let model = rest.next().unwrap_or_default().to_string();
                let demanded = rest.next() == Some("demand");
                if session.is_empty() || model.is_empty() {
                    writeln!(writer, "ERR usage: OPEN <session> <model> [demand]")?;
                    continue;
                }
                let request = Request::Open {
                    session,
                    model,
                    demanded,
                };
                dispatch(&fleet, &queues, request, &mut writer)?;
            }
            "STEP" => {
                let session = parts.next().unwrap_or_default().to_string();
                let facts = parts.next().unwrap_or("-").trim().to_string();
                if session.is_empty() {
                    writeln!(writer, "ERR usage: STEP <session> <facts>")?;
                    continue;
                }
                let request = Request::Steps {
                    session,
                    facts: vec![facts],
                    batch: false,
                };
                dispatch(&fleet, &queues, request, &mut writer)?;
            }
            "BATCH" => {
                let session = parts.next().unwrap_or_default().to_string();
                let count: usize = match parts.next().unwrap_or_default().trim().parse() {
                    Ok(n) => n,
                    Err(_) => {
                        writeln!(writer, "ERR usage: BATCH <session> <count>")?;
                        continue;
                    }
                };
                let mut facts = Vec::with_capacity(count);
                for _ in 0..count {
                    let mut step_line = String::new();
                    if reader.read_line(&mut step_line)? == 0 {
                        return Ok(());
                    }
                    facts.push(step_line.trim().to_string());
                }
                if session.is_empty() {
                    writeln!(writer, "ERR usage: BATCH <session> <count>")?;
                    continue;
                }
                let request = Request::Steps {
                    session,
                    facts,
                    batch: true,
                };
                dispatch(&fleet, &queues, request, &mut writer)?;
            }
            "CLOSE" => {
                let session = parts.next().unwrap_or_default().to_string();
                if session.is_empty() {
                    writeln!(writer, "ERR usage: CLOSE <session>")?;
                    continue;
                }
                dispatch(&fleet, &queues, Request::Close { session }, &mut writer)?;
            }
            _ => {
                writeln!(writer, "ERR unknown command `{verb}`")?;
            }
        }
    }
}

/// Routes a request to its session's home shard with **explicit
/// backpressure**: a full shard queue answers `BUSY` right away instead of
/// blocking the connection or queueing without bound.
fn dispatch(
    fleet: &ShardedRuntime,
    queues: &[mpsc::SyncSender<Job>],
    request: Request,
    writer: &mut TcpStream,
) -> io::Result<()> {
    let session = match &request {
        Request::Open { session, .. } => session,
        Request::Steps { session, .. } => session,
        Request::Close { session } => session,
    };
    let shard = fleet.shard_of(session);
    let (reply_tx, reply_rx) = mpsc::channel();
    let job = Job {
        request,
        reply: reply_tx,
    };
    match queues[shard].try_send(job) {
        Ok(()) => match reply_rx.recv() {
            Ok(lines) => {
                for reply in lines {
                    writeln!(writer, "{reply}")?;
                }
                Ok(())
            }
            Err(_) => {
                writeln!(writer, "ERR shard {shard} worker is gone")
            }
        },
        Err(mpsc::TrySendError::Full(_)) => {
            writeln!(writer, "BUSY shard {shard} queue is full, retry")
        }
        Err(mpsc::TrySendError::Disconnected(_)) => {
            writeln!(writer, "ERR shard {shard} worker is gone")
        }
    }
}

/// One shard's worker loop: owns every session routed to this shard, and is
/// the only thread that ever steps them.
fn shard_worker(fleet: ShardedRuntime, jobs: mpsc::Receiver<Job>) {
    let mut sessions: HashMap<String, ShardedSession> = HashMap::new();
    while let Ok(job) = jobs.recv() {
        let reply = execute(&fleet, &mut sessions, job.request);
        let _ = job.reply.send(reply);
    }
}

fn execute(
    fleet: &ShardedRuntime,
    sessions: &mut HashMap<String, ShardedSession>,
    request: Request,
) -> Vec<String> {
    match request {
        Request::Open {
            session,
            model,
            demanded,
        } => {
            let Some(front_model) = lookup_model(&model) else {
                return vec![format!(
                    "ERR unknown model `{model}` (known: {})",
                    MODEL_NAMES.join(", ")
                )];
            };
            let opened = if demanded {
                let Some(demand) = front_model.demand else {
                    return vec![format!("ERR model `{model}` defines no demand")];
                };
                fleet.open_session_with_demand(session.clone(), front_model.transducer, demand)
            } else {
                fleet.open_session(session.clone(), front_model.transducer)
            };
            match opened {
                Ok(opened) => {
                    let shard = opened.shard();
                    sessions.insert(session.clone(), opened);
                    vec![format!("OK open {session} shard={shard}")]
                }
                Err(e) => vec![format!("ERR {e}")],
            }
        }
        Request::Steps {
            session,
            facts,
            batch,
        } => {
            let Some(open) = sessions.get_mut(&session) else {
                return vec![format!("ERR no open session `{session}` on this shard")];
            };
            let total = facts.len();
            let mut lines = Vec::with_capacity(total + usize::from(batch));
            for spec in facts {
                let input = match parse_facts(&spec, open.transducer().schema().input()) {
                    Ok(input) => input,
                    Err(detail) => {
                        lines.push(format!("ERR {detail}"));
                        continue;
                    }
                };
                match open.step(&input) {
                    Ok(output) => lines.push(format!("OUT {}", render_instance(&output))),
                    Err(e) => lines.push(format!("ERR {e}")),
                }
            }
            if batch {
                lines.push(format!("OK batch {total}"));
            }
            lines
        }
        Request::Close { session } => match sessions.remove(&session) {
            Some(_) => vec![format!("OK close {session}")],
            None => vec![format!("ERR no open session `{session}` on this shard")],
        },
    }
}

/// A blocking line-protocol client for [`FrontServer`].
pub struct FrontClient {
    reader: BufReader<TcpStream>,
    writer: TcpStream,
}

impl FrontClient {
    /// Connects to a front-end server.
    pub fn connect(addr: SocketAddr) -> io::Result<FrontClient> {
        let stream = TcpStream::connect(addr)?;
        Ok(FrontClient {
            reader: BufReader::new(stream.try_clone()?),
            writer: stream,
        })
    }

    /// Sends one command line and reads one reply line.
    pub fn request(&mut self, command: &str) -> io::Result<String> {
        writeln!(self.writer, "{command}")?;
        self.read_reply()
    }

    /// Sends one command and retries for as long as the server answers
    /// `BUSY` — the client-side half of the explicit backpressure contract.
    pub fn request_retrying(&mut self, command: &str) -> io::Result<String> {
        loop {
            let reply = self.request(command)?;
            if !reply.starts_with("BUSY") {
                return Ok(reply);
            }
            thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    /// Sends a `BATCH` header plus its step lines, returning every reply
    /// line up to and including the terminating `OK`/`ERR`/`BUSY`.
    pub fn batch(&mut self, session: &str, steps: &[String]) -> io::Result<Vec<String>> {
        writeln!(self.writer, "BATCH {session} {}", steps.len())?;
        for step in steps {
            writeln!(self.writer, "{step}")?;
        }
        let mut replies = Vec::new();
        loop {
            let reply = self.read_reply()?;
            let done = !reply.starts_with("OUT");
            replies.push(reply);
            if done {
                return Ok(replies);
            }
        }
    }

    fn read_reply(&mut self) -> io::Result<String> {
        let mut reply = String::new();
        if self.reader.read_line(&mut reply)? == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_string())
    }
}

/// The end-to-end smoke exchange `rtx-frontd --smoke` (and CI) runs against
/// a live server: open plain and demanded sessions, step them, batch-step,
/// read health, shut the server down.  Returns the first mismatch as an
/// error.
pub fn run_smoke(addr: SocketAddr) -> Result<(), String> {
    let fail = |detail: String| -> Result<(), String> { Err(detail) };
    let mut client = FrontClient::connect(addr).map_err(|e| e.to_string())?;
    let expect = |got: String, want_prefix: &str| -> Result<String, String> {
        if got.starts_with(want_prefix) {
            Ok(got)
        } else {
            Err(format!("expected `{want_prefix}…`, got `{got}`"))
        }
    };

    let mut req = |cmd: &str| client.request_retrying(cmd).map_err(|e| e.to_string());
    expect(req("OPEN smoke-1 short")?, "OK open smoke-1 shard=")?;
    let out = expect(req("STEP smoke-1 order(time)")?, "OUT ")?;
    if !out.contains("sendbill(time,855)") {
        return fail(format!("ordering time must bill 855, got `{out}`"));
    }
    expect(req("OPEN probe storefront demand")?, "OK open probe")?;
    let out = expect(req("STEP probe browse(p1);refresh(t0)")?, "OUT ")?;
    if !out.contains("detail(p1,") {
        return fail(format!("browsing p1 must return its detail, got `{out}`"));
    }
    // A malformed model name and a duplicate open are typed errors.
    expect(req("OPEN smoke-1 short")?, "ERR ")?;
    expect(req("OPEN x no-such-model")?, "ERR ")?;

    let batch = client
        .batch(
            "smoke-1",
            &["pay(time,855)".to_string(), "order(newsweek)".to_string()],
        )
        .map_err(|e| e.to_string())?;
    if batch.len() != 3
        || !batch[0].contains("deliver(time)")
        || !batch[1].contains("sendbill(newsweek,845)")
        || batch[2] != "OK batch 2"
    {
        return fail(format!("unexpected batch replies: {batch:?}"));
    }

    let mut req = |cmd: &str| client.request_retrying(cmd).map_err(|e| e.to_string());
    let health = expect(req("HEALTH")?, "OK health ")?;
    if !health.contains("active=2") {
        return fail(format!("two sessions must be active, got `{health}`"));
    }
    expect(req("CLOSE probe")?, "OK close probe")?;
    expect(req("SHUTDOWN")?, "OK bye")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn facts_round_trip_through_render_and_parse() {
        let schema = models::short_input_schema();
        let mut inst = Instance::empty(&schema);
        inst.insert("order", Tuple::from_iter(["time"])).unwrap();
        inst.insert("pay", Tuple::new(vec![Value::str("time"), Value::int(855)]))
            .unwrap();
        let rendered = render_instance(&inst);
        assert_eq!(rendered, "order(time);pay(time,855)");
        assert_eq!(parse_facts(&rendered, &schema).unwrap(), inst);

        let empty = Instance::empty(&schema);
        assert_eq!(render_instance(&empty), "-");
        assert_eq!(parse_facts("-", &schema).unwrap(), empty);
        assert_eq!(parse_facts("", &schema).unwrap(), empty);

        // Malformed facts and schema violations are typed errors.
        assert!(parse_facts("order(", &schema).is_err());
        assert!(parse_facts("nope(x)", &schema).is_err());
        assert!(parse_facts("order(x,y,z)", &schema).is_err());
    }

    #[test]
    fn combined_catalog_covers_every_model() {
        let db = Arc::new(ResidentDb::new(combined_catalog()));
        let fleet = ShardedRuntime::shared(Arc::clone(&db), 2);
        for name in MODEL_NAMES {
            let model = lookup_model(name).unwrap();
            let _session = fleet
                .open_session(format!("cover-{name}"), model.transducer)
                .unwrap_or_else(|e| panic!("{name}: {e}"));
        }
        assert!(lookup_model("no-such-model").is_none());
    }

    #[test]
    fn the_smoke_exchange_passes_against_a_live_server() {
        let server = FrontServer::bind(
            "127.0.0.1:0",
            FrontConfig {
                shards: 2,
                queue_depth: 8,
                parallelism: Parallelism::sequential(),
            },
        )
        .unwrap();
        let addr = server.local_addr().unwrap();
        let serving = thread::spawn(move || server.serve());
        run_smoke(addr).unwrap();
        serving.join().unwrap().unwrap();
    }

    #[test]
    fn wire_steps_match_the_in_process_session() {
        // The front-end is a transport, not a semantics layer: a session
        // driven over the wire must produce byte-identical rendered outputs
        // to the same session stepped in process.
        let db = Arc::new(ResidentDb::new(combined_catalog()));
        let reference_rt = ShardedRuntime::shared(db, 1);
        let mut reference = reference_rt
            .open_session("w", Arc::new(models::short()))
            .unwrap();
        let inputs = rtx_workloads::customer_session(&combined_catalog(), 5, 200, 0.9, 11);

        let server = FrontServer::bind("127.0.0.1:0", FrontConfig::default()).unwrap();
        let addr = server.local_addr().unwrap();
        let serving = thread::spawn(move || server.serve());
        let mut client = FrontClient::connect(addr).unwrap();
        client.request_retrying("OPEN w short").unwrap();
        for input in inputs.iter() {
            let expected = render_instance(&reference.step(input).unwrap());
            let got = client
                .request_retrying(&format!("STEP w {}", render_instance(input)))
                .unwrap();
            assert_eq!(got, format!("OUT {expected}"));
        }
        client.request_retrying("SHUTDOWN").unwrap();
        serving.join().unwrap().unwrap();
    }
}
