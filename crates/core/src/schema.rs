//! Transducer schemas.

use crate::CoreError;
use rtx_relational::{RelationName, Schema};
use std::collections::BTreeSet;
use std::fmt;

/// A transducer schema `(in, state, out, db, log)` (§2.2).
///
/// Invariants enforced at construction:
///
/// * the `in`, `state`, `out` and `db` components are pairwise disjoint;
/// * `log ⊆ in ∪ out`;
/// * every log relation exists (with consistent arity) in `in ∪ out`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransducerSchema {
    input: Schema,
    state: Schema,
    output: Schema,
    db: Schema,
    log: BTreeSet<RelationName>,
}

impl TransducerSchema {
    /// Creates a transducer schema, checking the §2.2 conditions.
    pub fn new(
        input: Schema,
        state: Schema,
        output: Schema,
        db: Schema,
        log: impl IntoIterator<Item = RelationName>,
    ) -> Result<Self, CoreError> {
        let components: [(&str, &Schema); 4] = [
            ("input", &input),
            ("state", &state),
            ("output", &output),
            ("db", &db),
        ];
        for i in 0..components.len() {
            for j in (i + 1)..components.len() {
                let (name_a, a) = components[i];
                let (name_b, b) = components[j];
                if !a.is_disjoint_from(b) {
                    return Err(CoreError::InvalidSchema {
                        detail: format!("{name_a} and {name_b} relations are not disjoint"),
                    });
                }
            }
        }
        let log: BTreeSet<RelationName> = log.into_iter().collect();
        for rel in &log {
            if !input.contains(rel.clone()) && !output.contains(rel.clone()) {
                return Err(CoreError::InvalidSchema {
                    detail: format!("log relation `{rel}` is neither an input nor an output"),
                });
            }
        }
        Ok(TransducerSchema {
            input,
            state,
            output,
            db,
            log,
        })
    }

    /// The input relations.
    pub fn input(&self) -> &Schema {
        &self.input
    }

    /// The state relations.
    pub fn state(&self) -> &Schema {
        &self.state
    }

    /// The output relations.
    pub fn output(&self) -> &Schema {
        &self.output
    }

    /// The database relations.
    pub fn db(&self) -> &Schema {
        &self.db
    }

    /// The log relation names.
    pub fn log(&self) -> &BTreeSet<RelationName> {
        &self.log
    }

    /// True if the log contains every input and output relation ("full log").
    pub fn is_full_log(&self) -> bool {
        self.input
            .names()
            .chain(self.output.names())
            .all(|n| self.log.contains(n))
    }

    /// The schema of the log relations (a sub-schema of `in ∪ out`).
    pub fn log_schema(&self) -> Schema {
        self.in_out_schema().restrict_to(self.log.iter().cloned())
    }

    /// The union `in ∪ out` (well-defined because they are disjoint).
    pub fn in_out_schema(&self) -> Schema {
        self.input
            .union(&self.output)
            .expect("input and output are disjoint by construction")
    }

    /// The union `in ∪ state ∪ db`: the relations an output rule body may
    /// mention.
    pub fn body_schema(&self) -> Schema {
        self.input
            .union(&self.state)
            .and_then(|s| s.union(&self.db))
            .expect("components are disjoint by construction")
    }

    /// The state schema a Spocus transducer must have: one `past-R` relation
    /// per input relation `R`, of the same arity (§3.1, item 1).
    pub fn cumulative_state_schema(input: &Schema) -> Schema {
        Schema::from_pairs(input.iter().map(|(name, arity)| (name.past(), arity)))
            .expect("renaming preserves distinctness")
    }

    /// True if this schema's state component is exactly the cumulative state
    /// schema for its inputs.
    pub fn has_cumulative_state(&self) -> bool {
        self.state == Self::cumulative_state_schema(&self.input)
    }
}

impl fmt::Display for TransducerSchema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "input:    {}", self.input)?;
        writeln!(f, "state:    {}", self.state)?;
        writeln!(f, "output:   {}", self.output)?;
        writeln!(f, "database: {}", self.db)?;
        write!(
            f,
            "log:      {{{}}}",
            self.log
                .iter()
                .map(|r| r.as_str().to_string())
                .collect::<Vec<_>>()
                .join(", ")
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn short_schema() -> TransducerSchema {
        let input = Schema::from_pairs([("order", 1), ("pay", 2)]).unwrap();
        let state = TransducerSchema::cumulative_state_schema(&input);
        let output = Schema::from_pairs([("sendbill", 2), ("deliver", 1)]).unwrap();
        let db = Schema::from_pairs([("price", 2), ("available", 1)]).unwrap();
        TransducerSchema::new(
            input,
            state,
            output,
            db,
            ["sendbill", "pay", "deliver"].map(RelationName::new),
        )
        .unwrap()
    }

    #[test]
    fn valid_schema_accessors() {
        let s = short_schema();
        assert_eq!(s.input().len(), 2);
        assert_eq!(s.state().len(), 2);
        assert!(s.state().contains("past-order"));
        assert_eq!(s.output().len(), 2);
        assert_eq!(s.db().len(), 2);
        assert_eq!(s.log().len(), 3);
        assert!(s.has_cumulative_state());
        assert!(!s.is_full_log());
        assert_eq!(s.log_schema().len(), 3);
        assert_eq!(s.in_out_schema().len(), 4);
        assert_eq!(s.body_schema().len(), 6);
    }

    #[test]
    fn overlapping_components_rejected() {
        let input = Schema::from_pairs([("order", 1)]).unwrap();
        let output = Schema::from_pairs([("order", 1)]).unwrap();
        let err = TransducerSchema::new(
            input,
            Schema::empty(),
            output,
            Schema::empty(),
            Vec::<RelationName>::new(),
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidSchema { .. }));
    }

    #[test]
    fn log_must_be_input_or_output() {
        let input = Schema::from_pairs([("order", 1)]).unwrap();
        let output = Schema::from_pairs([("deliver", 1)]).unwrap();
        let err = TransducerSchema::new(
            input.clone(),
            Schema::empty(),
            output.clone(),
            Schema::empty(),
            [RelationName::new("price")],
        )
        .unwrap_err();
        assert!(matches!(err, CoreError::InvalidSchema { .. }));

        let ok = TransducerSchema::new(
            input,
            Schema::empty(),
            output,
            Schema::empty(),
            [RelationName::new("deliver"), RelationName::new("order")],
        )
        .unwrap();
        assert!(ok.is_full_log());
    }

    #[test]
    fn cumulative_state_schema_shape() {
        let input = Schema::from_pairs([("order", 1), ("pay", 2)]).unwrap();
        let state = TransducerSchema::cumulative_state_schema(&input);
        assert_eq!(state.arity_of("past-order"), Some(1));
        assert_eq!(state.arity_of("past-pay"), Some(2));
    }

    #[test]
    fn display_mentions_all_components() {
        let text = short_schema().to_string();
        for needle in ["input", "state", "output", "database", "log", "past-order"] {
            assert!(text.contains(needle), "missing {needle} in {text}");
        }
    }
}
