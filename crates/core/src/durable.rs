//! A durable runtime: the resident session service backed by crash-safe
//! storage.
//!
//! [`Runtime`] alone serves sessions against an in-memory
//! [`ResidentDb`]; a process restart loses the
//! catalog.  [`DurableRuntime`] closes that gap by pairing the runtime with
//! an [`rtx_store::DurableStore`]: every catalog mutation is write-ahead
//! logged through the store's [`Vfs`] *before* it reaches
//! the resident database, and [`Runtime::open_durable`] recovers the exact
//! committed catalog after a crash — snapshot, WAL tail replay, torn-tail
//! handling and all (see the `rtx-store` crate docs for the lifecycle).
//!
//! Ordering per mutation: WAL append (+ fsync per
//! [`FsyncPolicy`]) → in-memory [`rtx_store::Store`] apply →
//! journal suffix replayed into the shared `ResidentDb` via
//! [`ResidentSync`], bumping exactly the touched relation's version stamp so
//! open sessions reseed only what changed.  The [`ResidentSync`] cursor uses
//! absolute journal offsets, so [`DurableRuntime::checkpoint`] (which
//! truncates the journal) never desynchronizes it.

use crate::shard::{ShardedRuntime, ShardedSession};
use crate::{CoreError, Runtime, Session, SpocusTransducer};
use rtx_datalog::ResidentDb;
use rtx_relational::Tuple;
use rtx_store::{DurableStore, FsyncPolicy, RecoveryReport, ResidentSync, Vfs};
use std::sync::{Arc, Mutex};

/// A [`Runtime`] whose catalog survives process crashes: mutations go
/// through a write-ahead log and recovery rebuilds the resident database
/// bit-identically.  See the [module docs](self).
#[derive(Debug)]
pub struct DurableRuntime {
    runtime: Runtime,
    durable: Mutex<DurableState>,
}

#[derive(Debug)]
struct DurableState {
    store: DurableStore,
    sync: ResidentSync,
}

impl DurableState {
    /// Replays the journal suffix of the last mutation into the shared
    /// resident database.
    fn flow(&mut self, db: &Arc<ResidentDb>) -> Result<(), CoreError> {
        self.sync.sync(self.store.store(), db)?;
        Ok(())
    }
}

impl Runtime {
    /// Opens (or recovers) a durable runtime on `vfs`: persisted state is
    /// recovered by the [`DurableStore`], made resident once, and served to
    /// sessions exactly like an in-memory [`Runtime`].
    ///
    /// The fsync `policy` may be overridden by the `RTX_FSYNC` environment
    /// variable (see [`FsyncPolicy::from_env`]).
    pub fn open_durable(
        vfs: Arc<dyn Vfs>,
        policy: FsyncPolicy,
    ) -> Result<(DurableRuntime, RecoveryReport), CoreError> {
        let (store, report) = DurableStore::open(vfs, policy)?;
        let (resident, sync) = store.store().to_resident()?;
        Ok((
            DurableRuntime {
                runtime: Runtime::shared(Arc::new(resident)),
                durable: Mutex::new(DurableState { store, sync }),
            },
            report,
        ))
    }
}

impl DurableRuntime {
    /// The session runtime serving the recovered catalog.
    pub fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    /// Opens a named session — delegates to [`Runtime::open_session`].
    pub fn open_session(
        &self,
        name: impl Into<String>,
        transducer: impl Into<Arc<SpocusTransducer>>,
    ) -> Result<Session, CoreError> {
        self.runtime.open_session(name, transducer)
    }

    /// Creates a catalog table durably, then makes it resident.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        arity: usize,
        attributes: Option<Vec<String>>,
    ) -> Result<(), CoreError> {
        let mut state = self.lock();
        state.store.create_table(name, arity, attributes)?;
        self.flow(&mut state)
    }

    /// Inserts a catalog row durably, then makes it resident.  Open
    /// sessions observe the change at their next step.  Returns `true` if
    /// the row was new.
    pub fn insert(&self, table: &str, row: Tuple) -> Result<bool, CoreError> {
        let mut state = self.lock();
        let new = state.store.insert(table, row)?;
        self.flow(&mut state)?;
        Ok(new)
    }

    /// Retracts a catalog row durably, then removes it from the resident
    /// database.  Returns `true` if the row was present.
    pub fn retract(&self, table: &str, row: &Tuple) -> Result<bool, CoreError> {
        let mut state = self.lock();
        let removed = state.store.retract(table, row)?;
        self.flow(&mut state)?;
        Ok(removed)
    }

    /// Forces every acknowledged write to stable storage, regardless of the
    /// fsync policy.
    pub fn sync(&self) -> Result<(), CoreError> {
        Ok(self.lock().store.sync()?)
    }

    /// Checkpoints the backing store: snapshots the catalog and truncates
    /// the WAL (see [`DurableStore::checkpoint`]).  The resident database
    /// and open sessions are unaffected — the journal's monotone base
    /// offset keeps the internal [`ResidentSync`] cursor valid across the
    /// truncation.
    pub fn checkpoint(&self) -> Result<(), CoreError> {
        Ok(self.lock().store.checkpoint()?)
    }

    /// The backing store's snapshot/WAL epoch (bumped per checkpoint).
    pub fn epoch(&self) -> u64 {
        self.lock().store.epoch()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DurableState> {
        self.durable.lock().expect("durable state poisoned")
    }

    fn flow(&self, state: &mut DurableState) -> Result<(), CoreError> {
        state.flow(self.runtime.database())
    }
}

/// A [`ShardedRuntime`] whose catalog survives process crashes: **one**
/// [`DurableStore`] write-ahead logs every catalog mutation and feeds every
/// shard through the single shared `Arc<ResidentDb>` — shards never hold
/// divergent catalog copies, and recovery rebuilds the fleet's database
/// bit-identically regardless of the shard count it reopens with.
#[derive(Debug)]
pub struct ShardedDurableRuntime {
    sharded: ShardedRuntime,
    durable: Mutex<DurableState>,
}

impl ShardedRuntime {
    /// Opens (or recovers) a sharded durable runtime on `vfs`: persisted
    /// state is recovered by the [`DurableStore`], made resident **once**,
    /// and served to sessions on `shards` shard runtimes.  The fsync
    /// `policy` may be overridden by the `RTX_FSYNC` environment variable
    /// (see [`FsyncPolicy::from_env`]; a malformed value is a hard error).
    pub fn open_durable(
        vfs: Arc<dyn Vfs>,
        policy: FsyncPolicy,
        shards: usize,
    ) -> Result<(ShardedDurableRuntime, RecoveryReport), CoreError> {
        let (store, report) = DurableStore::open(vfs, policy)?;
        let (resident, sync) = store.store().to_resident()?;
        Ok((
            ShardedDurableRuntime {
                sharded: ShardedRuntime::shared(Arc::new(resident), shards),
                durable: Mutex::new(DurableState { store, sync }),
            },
            report,
        ))
    }
}

impl ShardedDurableRuntime {
    /// The sharded session runtime serving the recovered catalog.
    pub fn sharded(&self) -> &ShardedRuntime {
        &self.sharded
    }

    /// Opens a named session on its home shard — delegates to
    /// [`ShardedRuntime::open_session`].
    pub fn open_session(
        &self,
        name: impl Into<String>,
        transducer: impl Into<Arc<SpocusTransducer>>,
    ) -> Result<ShardedSession, CoreError> {
        self.sharded.open_session(name, transducer)
    }

    /// Creates a catalog table durably, then makes it resident for every
    /// shard.
    pub fn create_table(
        &self,
        name: impl Into<String>,
        arity: usize,
        attributes: Option<Vec<String>>,
    ) -> Result<(), CoreError> {
        let mut state = self.lock();
        state.store.create_table(name, arity, attributes)?;
        state.flow(self.sharded.database())
    }

    /// Inserts a catalog row durably, then makes it resident.  Open
    /// sessions on every shard observe the change at their next step.
    /// Returns `true` if the row was new.
    pub fn insert(&self, table: &str, row: Tuple) -> Result<bool, CoreError> {
        let mut state = self.lock();
        let new = state.store.insert(table, row)?;
        state.flow(self.sharded.database())?;
        Ok(new)
    }

    /// Retracts a catalog row durably, then removes it from the resident
    /// database shared by every shard.  Returns `true` if the row was
    /// present.
    pub fn retract(&self, table: &str, row: &Tuple) -> Result<bool, CoreError> {
        let mut state = self.lock();
        let removed = state.store.retract(table, row)?;
        state.flow(self.sharded.database())?;
        Ok(removed)
    }

    /// Forces every acknowledged write to stable storage, regardless of the
    /// fsync policy.
    pub fn sync(&self) -> Result<(), CoreError> {
        Ok(self.lock().store.sync()?)
    }

    /// Checkpoints the backing store — see [`DurableRuntime::checkpoint`].
    pub fn checkpoint(&self) -> Result<(), CoreError> {
        Ok(self.lock().store.checkpoint()?)
    }

    /// The backing store's snapshot/WAL epoch (bumped per checkpoint).
    pub fn epoch(&self) -> u64 {
        self.lock().store.epoch()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, DurableState> {
        self.durable.lock().expect("durable state poisoned")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use rtx_relational::Value;
    use rtx_store::MemVfs;

    fn open(vfs: &MemVfs) -> (DurableRuntime, RecoveryReport) {
        Runtime::open_durable(Arc::new(vfs.clone()), FsyncPolicy::Always).unwrap()
    }

    /// Loads the Figure 1 catalog into a durable runtime.
    fn seed_figure1(rt: &DurableRuntime) {
        let db = models::figure1_database();
        for (name, relation) in db.iter() {
            rt.create_table(name.as_str(), relation.arity(), None)
                .unwrap();
            for tuple in relation.iter() {
                rt.insert(name.as_str(), tuple.clone()).unwrap();
            }
        }
    }

    #[test]
    fn durable_runtime_reopens_bit_identical() {
        let vfs = MemVfs::new();
        let (rt, report) = open(&vfs);
        assert_eq!(report, RecoveryReport::default());
        seed_figure1(&rt);
        rt.checkpoint().unwrap();
        // Post-checkpoint churn lands in the WAL tail.
        rt.insert(
            "price",
            Tuple::new(vec![Value::str("herald"), Value::int(500)]),
        )
        .unwrap();
        rt.retract(
            "price",
            &Tuple::new(vec![Value::str("newsweek"), Value::int(845)]),
        )
        .unwrap();
        let expect = rt.runtime().database().snapshot();
        drop(rt); // crash

        let (recovered, report) = open(&vfs);
        assert_eq!(report.replayed, 2);
        assert!(report.snapshot_ops > 0);
        assert_eq!(recovered.runtime().database().snapshot(), expect);
    }

    #[test]
    fn sessions_replay_figure1_after_recovery() {
        // End-to-end: seed the catalog durably, crash, recover, and run the
        // paper's Figure 1 interaction against the recovered catalog — the
        // delivery must fire exactly as it does in-memory.
        let vfs = MemVfs::new();
        let (rt, _) = open(&vfs);
        seed_figure1(&rt);
        drop(rt); // crash before any checkpoint: recovery is WAL-only

        let (recovered, report) = open(&vfs);
        assert!(report.replayed > 0);
        let session = recovered.open_session("customer", models::short()).unwrap();
        let mut session = session;
        for input in models::figure1_inputs().iter() {
            session.step(input).unwrap();
        }
        let run = session.run().unwrap();
        assert!(run
            .outputs()
            .get(1)
            .unwrap()
            .holds("deliver", &Tuple::from_iter([Value::str("time")])));
    }

    #[test]
    fn mutations_reach_open_sessions_and_survive_checkpoint() {
        let vfs = MemVfs::new();
        let (rt, _) = open(&vfs);
        seed_figure1(&rt);
        let v0 = rt.runtime().database().version();
        // A checkpoint truncates the journal mid-stream; the next mutation
        // must still flow into the resident database (regression guard for
        // the absolute-offset ResidentSync cursor).
        rt.checkpoint().unwrap();
        rt.insert(
            "price",
            Tuple::new(vec![Value::str("herald"), Value::int(500)]),
        )
        .unwrap();
        assert!(rt.runtime().database().version() > v0);
        assert_eq!(
            rt.runtime()
                .database()
                .snapshot()
                .relation("price")
                .unwrap()
                .len(),
            4
        );
        assert_eq!(rt.epoch(), 1);
    }

    #[test]
    fn one_durable_store_feeds_every_shard() {
        let vfs = MemVfs::new();
        let (rt, report) =
            ShardedRuntime::open_durable(Arc::new(vfs.clone()), FsyncPolicy::Always, 3).unwrap();
        assert_eq!(report, RecoveryReport::default());
        assert_eq!(rt.sharded().shard_count(), 3);
        let db = models::figure1_database();
        for (name, relation) in db.iter() {
            rt.create_table(name.as_str(), relation.arity(), None)
                .unwrap();
            for tuple in relation.clone().iter() {
                rt.insert(name.as_str(), tuple.clone()).unwrap();
            }
        }

        // Sessions pinned to different shards all see one durable mutation
        // at their next step: the store feeds a single shared ResidentDb.
        let transducer = Arc::new(models::short());
        let mut sessions: Vec<_> = (0..3)
            .map(|i| {
                rt.sharded()
                    .open_session_on(i, format!("s{i}"), Arc::clone(&transducer))
                    .unwrap()
            })
            .collect();
        let schema = models::short_input_schema();
        let order_economist = {
            let mut inst = rtx_relational::Instance::empty(&schema);
            inst.insert("order", Tuple::from_iter(["economist"]))
                .unwrap();
            inst
        };
        for session in &mut sessions {
            let out = session.step(&order_economist).unwrap();
            assert!(out.relation("sendbill").unwrap().is_empty());
        }
        rt.insert(
            "price",
            Tuple::new(vec![Value::str("economist"), Value::int(700)]),
        )
        .unwrap();
        for session in &mut sessions {
            let out = session.step(&order_economist).unwrap();
            assert!(out.holds(
                "sendbill",
                &Tuple::new(vec![Value::str("economist"), Value::int(700)])
            ));
        }
        let expect = rt.sharded().database().snapshot();
        drop(sessions);
        drop(rt); // crash

        // Recovery is shard-count independent: reopening with a different
        // fleet size rebuilds the identical catalog.
        let (recovered, report) =
            ShardedRuntime::open_durable(Arc::new(vfs), FsyncPolicy::Always, 2).unwrap();
        assert!(report.replayed > 0);
        assert_eq!(recovered.sharded().database().snapshot(), expect);
    }

    #[test]
    fn store_errors_surface_as_core_errors() {
        let vfs = MemVfs::new();
        let (rt, _) = open(&vfs);
        rt.create_table("t", 1, None).unwrap();
        let err = rt.create_table("t", 1, None).unwrap_err();
        assert!(matches!(
            err,
            CoreError::Store(rtx_store::StoreError::DuplicateTable(_))
        ));
        assert!(err.to_string().contains("already exists"));
    }
}
