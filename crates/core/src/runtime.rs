//! The resident session runtime: one shared database, many concurrent runs.
//!
//! The paper's e-commerce setting is many customers against one shared
//! catalog, but [`RelationalTransducer::run`](crate::RelationalTransducer::run)
//! is a one-shot API: it takes the whole input sequence up front and
//! re-prepares the database per call.  This module is the resident-service
//! shape of the same semantics:
//!
//! * a [`Runtime`] owns one [`ResidentDb`] — the catalog made resident once,
//!   its hash indexes retained across every run and invalidated per relation
//!   by version stamp;
//! * each customer interaction is a named [`Session`]: one transducer run in
//!   progress, fed one input instance at a time through [`Session::step`];
//! * steps evaluate **incrementally**: cumulative state means `past-R` only
//!   ever grows by the step's input, so rules without volatile atoms join
//!   only against the per-step delta (see [`rtx_datalog::incremental`]), and
//!   cumulation itself is the fixed union `past-R := past-R ∪ R`, computed
//!   directly on copy-on-write tuple sets;
//! * sessions are independent and [`Session`] is `Send`: different sessions
//!   can be stepped from different threads against the same shared catalog,
//!   and a catalog mutation ([`ResidentDb::insert`]) is observed by every
//!   session at its next step — staleness is per relation
//!   ([`ResidentDb::view_is_current`]), so a session reseeds its step caches
//!   only when a relation its program actually reads changed.  One-shot runs
//!   ([`RelationalTransducer::run`](crate::RelationalTransducer::run) /
//!   `run_resident`) instead pin their view for the whole run, so each run
//!   is consistent with a single catalog state.
//!
//! A completed (or in-flight) session converts back into the paper's [`Run`]
//! object with [`Session::run`], producing bit-identical results to a
//! one-shot [`RelationalTransducer::run`](crate::RelationalTransducer::run)
//! over the same inputs and catalog.

use crate::demand::{DemandPlan, SessionDemand};
use crate::supervise::{MonitorPolicy, RuntimeHealth, SessionObserver, Violation};
use crate::{CoreError, Run, SpocusTransducer};
use rtx_datalog::{
    ChangeClass, DemandPolicy, EvalBudget, EvalStats, Parallelism, ResidentDb, ResidentView,
    StepEvaluator,
};
use rtx_relational::{Instance, InstanceSequence, RelationName};
use std::collections::BTreeSet;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// Locks a mutex, recovering from poisoning.  Every runtime lock guards
/// simple ownership records (name sets, counters) that are valid after any
/// partial update, so a panic in one session must not wedge
/// [`Runtime::open_session`] — or session drop — for every sibling.
pub(crate) fn lock_clean<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Renders a panic payload for a quarantine report.
fn panic_detail(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// The incremental per-step engine shared by [`Session`] and the
/// [`SpocusTransducer::run`]/[`SpocusTransducer::run_resident`] entry points:
/// a delta-aware [`StepEvaluator`] plus the cumulative-state bookkeeping
/// (state, pre-delta state, and the delta between them).
#[derive(Debug)]
pub(crate) struct IncrementalStepper {
    evaluator: StepEvaluator,
    view: ResidentView,
    /// True for one-shot runs: the view is pinned for the whole run, so the
    /// produced `Run` is consistent with a single catalog state even while
    /// other threads mutate the shared database.  Sessions leave this false
    /// and observe catalog changes at their next step.
    pin_view: bool,
    /// The session's demand plan, if any: under
    /// [`DemandPolicy::Demand`] the evaluator runs the magic-set-rewritten
    /// program with the step's seed facts merged into the volatile sources;
    /// under [`DemandPolicy::Full`] the original program runs and the output
    /// is filtered to the same footprint.
    demand: Option<DemandPlan>,
    /// State after the last step (`S_{i-1}` when evaluating step `i`).
    state: Instance,
    /// State before that (`S_{i-2}`).
    old_state: Instance,
    /// `S_{i-1} \ S_{i-2}` — what the previous step added to the state.
    delta: Instance,
    last_stats: EvalStats,
}

impl IncrementalStepper {
    pub(crate) fn new(
        transducer: &SpocusTransducer,
        db: &ResidentDb,
        parallelism: Parallelism,
    ) -> Result<Self, CoreError> {
        Self::with_pinning(transducer, db, false, parallelism, None)
    }

    /// A stepper whose view never refreshes: the whole run happens against
    /// the catalog state observed at construction.
    pub(crate) fn pinned(
        transducer: &SpocusTransducer,
        db: &ResidentDb,
        parallelism: Parallelism,
    ) -> Result<Self, CoreError> {
        Self::with_pinning(transducer, db, true, parallelism, None)
    }

    /// A session stepper evaluating under a demand plan.
    pub(crate) fn demanded(
        transducer: &SpocusTransducer,
        db: &ResidentDb,
        parallelism: Parallelism,
        plan: DemandPlan,
    ) -> Result<Self, CoreError> {
        Self::with_pinning(transducer, db, false, parallelism, Some(plan))
    }

    fn with_pinning(
        transducer: &SpocusTransducer,
        db: &ResidentDb,
        pin_view: bool,
        parallelism: Parallelism,
        demand: Option<DemandPlan>,
    ) -> Result<Self, CoreError> {
        let schema = transducer.schema();
        let input = schema.input().clone();
        let state = schema.state().clone();
        // Magic seed relations are per-session, per-step demand: volatile,
        // never part of the shared database or the cumulative state.
        let magic = demand
            .as_ref()
            .map(|plan| plan.magic_names())
            .unwrap_or_default();
        let classify = move |name: &RelationName| {
            if input.contains(name.clone()) || magic.contains(name) {
                ChangeClass::Volatile
            } else if state.contains(name.clone()) {
                ChangeClass::GrowOnly
            } else {
                ChangeClass::Static
            }
        };
        let compiled = demand
            .as_ref()
            .and_then(|plan| plan.compiled())
            .unwrap_or_else(|| transducer.compiled_output_program());
        let evaluator = StepEvaluator::new(compiled, classify)
            .map_err(CoreError::Datalog)?
            .with_parallelism(parallelism);
        let view = db.view_for(compiled);
        let empty_state = Instance::empty(schema.state());
        Ok(IncrementalStepper {
            evaluator,
            view,
            pin_view,
            demand,
            state: empty_state.clone(),
            old_state: empty_state.clone(),
            delta: empty_state,
            last_stats: EvalStats::default(),
        })
    }

    /// The session's demand plan, if it was opened with one.
    pub(crate) fn demand(&self) -> Option<&DemandPlan> {
        self.demand.as_ref()
    }

    /// The state after the last step.
    pub(crate) fn state(&self) -> &Instance {
        &self.state
    }

    /// The database snapshot the stepper evaluates against.
    pub(crate) fn view_instance(&self) -> &Instance {
        self.view.instance()
    }

    /// Statistics of the last evaluated step.
    pub(crate) fn last_stats(&self) -> EvalStats {
        self.last_stats
    }

    /// Replaces the per-step [`EvalBudget`] the evaluator enforces.
    pub(crate) fn set_budget(&mut self, budget: EvalBudget) {
        self.evaluator.set_budget(budget);
    }

    /// Evaluates one step and cumulates the state, returning the step's
    /// output and the state after the step.
    pub(crate) fn step(
        &mut self,
        transducer: &SpocusTransducer,
        db: &ResidentDb,
        input: &Instance,
    ) -> Result<(Instance, Instance), CoreError> {
        // A shared catalog may have changed under us: refresh the view and
        // reseed the step caches whose static-relation assumptions are void.
        // Staleness is per relation — mutations (inserts *and* retractions)
        // to relations the program never reads keep every cache alive, and
        // a mutation the program does read reseeds exactly the rule caches
        // that join against it, not the whole evaluator.  Pinned (one-shot
        // run) steppers never refresh, so the produced run is consistent
        // with a single catalog state.
        let compiled = self
            .demand
            .as_ref()
            .and_then(|plan| plan.compiled())
            .unwrap_or_else(|| transducer.compiled_output_program());
        if !self.pin_view && !db.view_is_current(&self.view) {
            let stale = db.stale_relations(&self.view);
            self.view = db.view_for(compiled);
            self.evaluator.invalidate_relations(&stale);
        }

        let (derived, stats) = match &self.demand {
            None => self.evaluator.step(
                compiled,
                input,
                &self.state,
                &self.old_state,
                &self.delta,
                &self.view,
            )?,
            Some(plan) => {
                // Seed this step's demand: the session constants plus the
                // projections of this step's own input.  The seeds are
                // volatile per-step state — never stamped into the shared
                // database or carried into the cumulative state.
                let seeds = plan.seed_instance(input)?;
                if plan.compiled().is_some() {
                    let volatile = plan.volatile_instance(input, &seeds)?;
                    let (derived, stats) = self.evaluator.step(
                        compiled,
                        &volatile,
                        &self.state,
                        &self.old_state,
                        &self.delta,
                        &self.view,
                    )?;
                    // Adorned relations hold answers for every transitively
                    // demanded binding; restrict to the goals' own seeds.
                    (plan.rewrite().restrict_with(&derived, Some(&seeds)), stats)
                } else {
                    let (derived, stats) = self.evaluator.step(
                        compiled,
                        input,
                        &self.state,
                        &self.old_state,
                        &self.delta,
                        &self.view,
                    )?;
                    // Full-evaluation fallback: filter the unrewritten
                    // result to the identical demanded footprint.
                    (plan.rewrite().footprint_with(&derived, Some(&seeds)), stats)
                }
            }
        };
        self.last_stats = stats;
        let mut output = Instance::empty(transducer.schema().output());
        output.absorb(&derived)?;

        // Cumulation is the fixed union `past-R := past-R ∪ R`: computed
        // directly on the copy-on-write tuple sets (no datalog evaluation,
        // no per-tuple cloning of the previous state), tracking what is new
        // as the delta the next step joins against.
        let schema = transducer.schema();
        let mut next = self.state.clone();
        let mut delta = Instance::empty(schema.state());
        for (name, rel) in input.iter() {
            let past = name.past();
            if rel.is_empty() || next.get(&past).is_none() {
                continue;
            }
            let prev = self.state.get(&past).expect("state mirrors next");
            if prev.is_empty() {
                delta.absorb_relation(past.clone(), rel)?;
            } else {
                for tuple in rel.iter() {
                    if !prev.contains(tuple) {
                        delta.insert(past.clone(), tuple.clone())?;
                    }
                }
            }
            next.absorb_relation(past, rel)?;
        }
        self.old_state = std::mem::replace(&mut self.state, next);
        self.delta = delta;
        Ok((output, self.state.clone()))
    }
}

/// Mutable runtime-wide defaults picked up by sessions at open time.
#[derive(Debug, Clone, Copy)]
struct RuntimeConfig {
    budget: EvalBudget,
    policy: MonitorPolicy,
    demand: DemandPolicy,
}

/// The runtime-wide defaults resolved from `RTX_MONITOR`/`RTX_DEMAND`
/// environment overrides, plus a per-variable report of every *malformed*
/// override.
///
/// Malformed values are never silently ignored: the report is kept on the
/// runtime and every `open_session*` call is **rejected** with a
/// [`CoreError::Runtime`] naming the bad variable until either the
/// environment is fixed or an explicit setter
/// ([`Runtime::set_monitor_policy`] / [`Runtime::set_demand_policy`])
/// overrides it — the setter is deliberate operator intent, which clears
/// that variable's report.
///
/// The demand default differs from [`DemandPolicy::from_env`]'s caller
/// default: opening a session *with* a demand is already the opt-in, so the
/// environment variable only serves as a kill switch (`RTX_DEMAND=full`) or
/// an explicit confirmation (`RTX_DEMAND=demand`).
fn resolve_env_config(
    monitor_raw: Option<&str>,
    demand_raw: Option<&str>,
) -> (MonitorPolicy, DemandPolicy, Vec<(&'static str, String)>) {
    let mut errors = Vec::new();
    let policy = match MonitorPolicy::from_env_setting(monitor_raw) {
        Ok(policy) => policy.unwrap_or_default(),
        Err(e) => {
            errors.push(("RTX_MONITOR", e.to_string()));
            MonitorPolicy::default()
        }
    };
    let demand = match DemandPolicy::from_env_setting(demand_raw) {
        Ok(policy) => policy.unwrap_or(DemandPolicy::Demand),
        Err(e) => {
            errors.push(("RTX_DEMAND", e.to_string()));
            DemandPolicy::Demand
        }
    };
    (policy, demand, errors)
}

/// Aggregate supervision counters behind [`Runtime::health`].
#[derive(Debug, Default)]
struct HealthInner {
    quarantined: BTreeSet<String>,
    violations: u64,
    rejections: u64,
}

#[derive(Debug)]
struct RuntimeInner {
    db: Arc<ResidentDb>,
    sessions: Mutex<BTreeSet<String>>,
    parallelism: Parallelism,
    config: Mutex<RuntimeConfig>,
    health: Mutex<HealthInner>,
    /// Malformed `RTX_*` overrides found at construction, keyed by variable
    /// name.  Non-empty ⇒ every `open_session*` is rejected until the
    /// corresponding explicit setter clears the entry.
    env_errors: Mutex<Vec<(&'static str, String)>>,
}

/// A resident transducer runtime: one shared [`ResidentDb`] serving many
/// named concurrent [`Session`]s.  Cheaply clonable (`Arc` inside); clones
/// share the database and the session registry.
#[derive(Debug, Clone)]
pub struct Runtime {
    inner: Arc<RuntimeInner>,
}

impl Runtime {
    /// Creates a runtime owning a resident database.
    pub fn new(db: ResidentDb) -> Self {
        Runtime::shared(Arc::new(db))
    }

    /// Creates a runtime over an already-shared resident database.
    pub fn shared(db: Arc<ResidentDb>) -> Self {
        Runtime::shared_with(db, Parallelism::default())
    }

    /// Creates a runtime over a shared resident database with an explicit
    /// [`Parallelism`] policy: every session opened on this runtime
    /// evaluates its steps under it.  Parallel steps are bit-identical to
    /// sequential ones (the engine merges worker results in a fixed order),
    /// so the policy is purely a scheduling knob.
    ///
    /// The default monitor and demand policies come from the `RTX_MONITOR`
    /// and `RTX_DEMAND` environment variables, parsed **strictly**: a
    /// malformed value does not silently fall back — it is recorded and
    /// every subsequent `open_session*` call is rejected until the
    /// corresponding explicit setter ([`Runtime::set_monitor_policy`] /
    /// [`Runtime::set_demand_policy`]) overrides it.
    pub fn shared_with(db: Arc<ResidentDb>, parallelism: Parallelism) -> Self {
        let monitor = std::env::var("RTX_MONITOR").ok();
        let demand = std::env::var("RTX_DEMAND").ok();
        Runtime::shared_with_settings(db, parallelism, monitor.as_deref(), demand.as_deref())
    }

    /// [`Runtime::shared_with`] over explicit raw `RTX_MONITOR`/`RTX_DEMAND`
    /// values instead of the process environment — the testable core of the
    /// strict env-override path.
    pub(crate) fn shared_with_settings(
        db: Arc<ResidentDb>,
        parallelism: Parallelism,
        monitor_raw: Option<&str>,
        demand_raw: Option<&str>,
    ) -> Self {
        let (policy, demand, env_errors) = resolve_env_config(monitor_raw, demand_raw);
        Runtime {
            inner: Arc::new(RuntimeInner {
                db,
                sessions: Mutex::new(BTreeSet::new()),
                parallelism,
                config: Mutex::new(RuntimeConfig {
                    budget: EvalBudget::UNLIMITED,
                    policy,
                    demand,
                }),
                health: Mutex::new(HealthInner::default()),
                env_errors: Mutex::new(env_errors),
            }),
        }
    }

    /// The shared resident database.
    pub fn database(&self) -> &Arc<ResidentDb> {
        &self.inner.db
    }

    /// The [`Parallelism`] policy sessions of this runtime evaluate under.
    pub fn parallelism(&self) -> Parallelism {
        self.inner.parallelism
    }

    /// Sets the default per-step [`EvalBudget`] for sessions opened after
    /// this call (already-open sessions keep theirs; see
    /// [`Session::set_step_budget`]).  A session whose step exhausts the
    /// budget fails with a typed
    /// [`BudgetExceeded`](rtx_datalog::DatalogError::BudgetExceeded) instead
    /// of spinning, and stays usable.
    pub fn set_step_budget(&self, budget: EvalBudget) {
        lock_clean(&self.inner.config).budget = budget;
    }

    /// The default per-step [`EvalBudget`] sessions are opened with.
    pub fn step_budget(&self) -> EvalBudget {
        lock_clean(&self.inner.config).budget
    }

    /// Sets the default [`MonitorPolicy`] for sessions opened after this
    /// call (already-open sessions keep theirs; see
    /// [`Session::set_monitor_policy`]).  The initial default comes from the
    /// `RTX_MONITOR` environment variable ([`MonitorPolicy::from_env`]);
    /// calling this setter also clears any malformed-`RTX_MONITOR` report
    /// blocking `open_session*` — an explicit policy is deliberate operator
    /// intent.
    pub fn set_monitor_policy(&self, policy: MonitorPolicy) {
        lock_clean(&self.inner.config).policy = policy;
        lock_clean(&self.inner.env_errors).retain(|(var, _)| *var != "RTX_MONITOR");
    }

    /// The default [`MonitorPolicy`] sessions are opened with.
    pub fn monitor_policy(&self) -> MonitorPolicy {
        lock_clean(&self.inner.config).policy
    }

    /// Sets the [`DemandPolicy`] for sessions opened **with a demand** after
    /// this call ([`Runtime::open_session_with_demand`]; already-open
    /// sessions keep theirs).  Under [`DemandPolicy::Demand`] such a session
    /// evaluates the magic-set-rewritten program seeded from its own inputs
    /// and constants; under [`DemandPolicy::Full`] it evaluates the original
    /// program and filters the output to the identical footprint — a pure
    /// performance knob.  The initial default is [`DemandPolicy::Demand`]
    /// unless the `RTX_DEMAND` environment variable says `full`/`off`.
    /// Sessions opened without a demand are unaffected.  Calling this setter
    /// also clears any malformed-`RTX_DEMAND` report blocking
    /// `open_session*` — an explicit policy is deliberate operator intent.
    pub fn set_demand_policy(&self, policy: DemandPolicy) {
        lock_clean(&self.inner.config).demand = policy;
        lock_clean(&self.inner.env_errors).retain(|(var, _)| *var != "RTX_DEMAND");
    }

    /// The [`DemandPolicy`] demanded sessions are opened under.
    pub fn demand_policy(&self) -> DemandPolicy {
        lock_clean(&self.inner.config).demand
    }

    /// A snapshot of the runtime's supervision state: live session count,
    /// quarantined session names, and the aggregate violation/rejection
    /// counters across all sessions (past and present).
    pub fn health(&self) -> RuntimeHealth {
        let active_sessions = lock_clean(&self.inner.sessions).len();
        let health = lock_clean(&self.inner.health);
        RuntimeHealth {
            active_sessions,
            quarantined_sessions: health.quarantined.iter().cloned().collect(),
            violations: health.violations,
            rejections: health.rejections,
        }
    }

    /// Opens a named session running `transducer` against the shared
    /// database.  Fails if the name is already in use or if the database is
    /// missing one of the transducer's `db` relations.
    pub fn open_session(
        &self,
        name: impl Into<String>,
        transducer: impl Into<Arc<SpocusTransducer>>,
    ) -> Result<Session, CoreError> {
        self.open_session_inner(name.into(), transducer.into(), None)
    }

    /// Opens a named session that only ever reads the demanded footprint of
    /// its outputs: every step's output is restricted to the
    /// [`SessionDemand`]'s goals, seeded per step from the session's
    /// constants and its own input projections.  Under the runtime's
    /// [`DemandPolicy`] ([`Runtime::set_demand_policy`]) the step either
    /// evaluates the magic-set-rewritten program (goal-directed, per-step
    /// cost proportional to the session's footprint) or falls back to full
    /// evaluation plus filtering — the outputs are identical either way.
    ///
    /// Fails like [`Runtime::open_session`], and additionally with
    /// [`DatalogError::DemandUnsupported`](rtx_datalog::DatalogError::DemandUnsupported)
    /// when the demand names a non-output relation, mismatches an arity, or
    /// states no goal at all.
    pub fn open_session_with_demand(
        &self,
        name: impl Into<String>,
        transducer: impl Into<Arc<SpocusTransducer>>,
        demand: SessionDemand,
    ) -> Result<Session, CoreError> {
        self.open_session_inner(name.into(), transducer.into(), Some(demand))
    }

    fn open_session_inner(
        &self,
        name: String,
        transducer: Arc<SpocusTransducer>,
        demand: Option<SessionDemand>,
    ) -> Result<Session, CoreError> {
        // A malformed RTX_* override is a hard refusal, not a silent
        // default: a fleet must fail at session-open time, loudly naming
        // the variable, until the environment is fixed or an explicit
        // setter overrides it.
        {
            let env_errors = lock_clean(&self.inner.env_errors);
            if let Some((_, detail)) = env_errors.first() {
                return Err(CoreError::Runtime {
                    detail: format!(
                        "refusing to open session `{name}`: {detail} \
                         (fix the environment or override with the explicit policy setter)"
                    ),
                });
            }
        }
        let resident_schema = self.inner.db.schema();
        if !transducer.schema().db().is_subschema_of(&resident_schema) {
            return Err(CoreError::SchemaMismatch {
                detail: format!(
                    "resident database schema {resident_schema} does not cover the transducer db schema {}",
                    transducer.schema().db()
                ),
            });
        }

        {
            let mut sessions = lock_clean(&self.inner.sessions);
            if !sessions.insert(name.clone()) {
                return Err(CoreError::Runtime {
                    detail: format!("session `{name}` is already open"),
                });
            }
        }

        let config = *lock_clean(&self.inner.config);
        let built = match demand {
            None => IncrementalStepper::new(&transducer, &self.inner.db, self.inner.parallelism),
            Some(spec) => DemandPlan::new(&transducer, spec, config.demand).and_then(|plan| {
                IncrementalStepper::demanded(
                    &transducer,
                    &self.inner.db,
                    self.inner.parallelism,
                    plan,
                )
            }),
        };
        let mut stepper = match built {
            Ok(stepper) => stepper,
            Err(e) => {
                self.release(&name);
                return Err(e);
            }
        };
        stepper.set_budget(config.budget);
        let schema = transducer.schema();
        Ok(Session {
            name,
            runtime: Arc::clone(&self.inner),
            inputs: InstanceSequence::empty(schema.input().clone()),
            outputs: InstanceSequence::empty(schema.output().clone()),
            states: InstanceSequence::empty(schema.state().clone()),
            transducer,
            stepper,
            policy: config.policy,
            observer: None,
            violations: Vec::new(),
            quarantined: false,
        })
    }

    /// The names of the currently open sessions.
    pub fn session_names(&self) -> Vec<String> {
        lock_clean(&self.inner.sessions).iter().cloned().collect()
    }

    /// Number of currently open sessions.
    pub fn session_count(&self) -> usize {
        lock_clean(&self.inner.sessions).len()
    }

    fn release(&self, name: &str) {
        lock_clean(&self.inner.sessions).remove(name);
    }
}

/// One transducer run in progress against a [`Runtime`]'s shared database.
///
/// Inputs arrive one step at a time through [`Session::step`]; the session
/// accumulates the input/state/output sequences and can render them as a
/// paper-semantics [`Run`] at any point.  Sessions are `Send`: move each to
/// its own thread and step them concurrently — they share the catalog and
/// its indexes, nothing else.  The session name is released when the session
/// is dropped.
#[derive(Debug)]
pub struct Session {
    name: String,
    runtime: Arc<RuntimeInner>,
    transducer: Arc<SpocusTransducer>,
    stepper: IncrementalStepper,
    inputs: InstanceSequence,
    outputs: InstanceSequence,
    states: InstanceSequence,
    policy: MonitorPolicy,
    observer: Option<Box<dyn SessionObserver>>,
    violations: Vec<Violation>,
    quarantined: bool,
}

impl Session {
    /// The session name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The transducer this session runs.
    pub fn transducer(&self) -> &SpocusTransducer {
        &self.transducer
    }

    /// Number of steps taken so far.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// True if no step has been taken.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// The cumulative state after the last step.
    pub fn state(&self) -> &Instance {
        self.stepper.state()
    }

    /// Evaluation statistics of the last step (join derivations only, so a
    /// caller can observe that a step joined nothing but the delta).
    pub fn last_stats(&self) -> EvalStats {
        self.stepper.last_stats()
    }

    /// The session's [`MonitorPolicy`].
    pub fn monitor_policy(&self) -> MonitorPolicy {
        self.policy
    }

    /// True if the session was opened with a [`SessionDemand`]
    /// ([`Runtime::open_session_with_demand`]): its step outputs are
    /// restricted to the demanded footprint.
    pub fn is_demanded(&self) -> bool {
        self.stepper.demand().is_some()
    }

    /// The [`DemandPolicy`] the session's demand plan was compiled under —
    /// `None` for sessions opened without a demand.
    pub fn demand_policy(&self) -> Option<DemandPolicy> {
        self.stepper.demand().map(|plan| plan.policy())
    }

    /// Changes the session's [`MonitorPolicy`] (the session was opened with
    /// the runtime default).
    pub fn set_monitor_policy(&mut self, policy: MonitorPolicy) {
        self.policy = policy;
    }

    /// Attaches an online monitor.  Under [`MonitorPolicy::Observe`] or
    /// [`MonitorPolicy::Enforce`] the observer is consulted at every step —
    /// `admit` before the step gates the input, `observe` after the step
    /// checks the produced output (see [`SessionObserver`]).  Replaces any
    /// previously attached observer.
    pub fn attach_observer(&mut self, observer: Box<dyn SessionObserver>) {
        self.observer = Some(observer);
    }

    /// Detaches and returns the attached monitor, if any.
    pub fn detach_observer(&mut self) -> Option<Box<dyn SessionObserver>> {
        self.observer.take()
    }

    /// Replaces the session's per-step [`EvalBudget`] (the session was
    /// opened with the runtime default).
    pub fn set_step_budget(&mut self, budget: EvalBudget) {
        self.stepper.set_budget(budget);
    }

    /// The violations recorded by the attached monitor so far, in detection
    /// order.
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// True once the session panicked mid-step and was quarantined: the name
    /// is released for reuse, the run so far stays inspectable
    /// ([`Session::run`], [`Session::state`]), and every further
    /// [`Session::step`] fails with
    /// [`CoreError::SessionQuarantined`].
    pub fn is_quarantined(&self) -> bool {
        self.quarantined
    }

    /// Quarantines the session after a panic: the registry name is released
    /// (siblings and `open_session` are unaffected), the session is recorded
    /// in [`Runtime::health`], and the state is preserved for inspection.
    fn quarantine(&mut self, detail: String) -> CoreError {
        self.quarantined = true;
        lock_clean(&self.runtime.sessions).remove(&self.name);
        lock_clean(&self.runtime.health)
            .quarantined
            .insert(self.name.clone());
        CoreError::SessionQuarantined {
            session: self.name.clone(),
            detail,
        }
    }

    /// Records monitor violations on the session and in the runtime health
    /// counters.
    fn record_violations(&mut self, violations: &[Violation]) {
        if violations.is_empty() {
            return;
        }
        lock_clean(&self.runtime.health).violations += violations.len() as u64;
        self.violations.extend_from_slice(violations);
    }

    /// Feeds one input instance: evaluates the output program incrementally,
    /// cumulates the state, and returns the step's output.
    ///
    /// When the session's [`MonitorPolicy`] is active and an observer is
    /// attached, the input is first offered to the admission gate — under
    /// [`MonitorPolicy::Enforce`] a violating input is rejected with
    /// [`CoreError::StepRejected`] and the
    /// run does not advance — and the produced output is checked after the
    /// step.  A panic anywhere on the step path quarantines this session
    /// (see [`Session::is_quarantined`]) without affecting siblings.
    pub fn step(&mut self, input: &Instance) -> Result<Instance, CoreError> {
        if self.quarantined {
            return Err(CoreError::SessionQuarantined {
                session: self.name.clone(),
                detail: "step on a quarantined session".into(),
            });
        }
        if &input.schema() != self.transducer.schema().input() {
            return Err(CoreError::SchemaMismatch {
                detail: format!(
                    "step input schema {} does not match the transducer input schema {}",
                    input.schema(),
                    self.transducer.schema().input()
                ),
            });
        }
        let step = self.inputs.len();
        let monitored = self.policy.is_active() && self.observer.is_some();

        if monitored {
            let observer = self.observer.as_mut().expect("observer checked above");
            let admitted = catch_unwind(AssertUnwindSafe(|| observer.admit(step, input)));
            let violations = match admitted {
                Ok(result) => result?,
                Err(payload) => {
                    let detail = format!("monitor admission panicked: {}", panic_detail(&*payload));
                    return Err(self.quarantine(detail));
                }
            };
            self.record_violations(&violations);
            if self.policy == MonitorPolicy::Enforce {
                if let Some(first) = violations.first() {
                    lock_clean(&self.runtime.health).rejections += 1;
                    return Err(CoreError::StepRejected {
                        step,
                        constraint: first.source.clone(),
                        detail: first.to_string(),
                    });
                }
            }
        }

        let stepper = &mut self.stepper;
        let transducer = &self.transducer;
        let db = &self.runtime.db;
        let stepped = catch_unwind(AssertUnwindSafe(|| {
            stepper.step(transducer, db.as_ref(), input)
        }));
        let (output, next_state) = match stepped {
            Ok(result) => result?,
            Err(payload) => {
                let detail = format!("step evaluation panicked: {}", panic_detail(&*payload));
                return Err(self.quarantine(detail));
            }
        };
        self.inputs.push(input.clone())?;
        self.outputs.push(output.clone())?;
        self.states.push(next_state)?;

        if monitored {
            let observer = self.observer.as_mut().expect("observer checked above");
            let observed =
                catch_unwind(AssertUnwindSafe(|| observer.observe(step, input, &output)));
            let violations = match observed {
                Ok(result) => result?,
                Err(payload) => {
                    let detail =
                        format!("monitor observation panicked: {}", panic_detail(&*payload));
                    return Err(self.quarantine(detail));
                }
            };
            self.record_violations(&violations);
        }
        Ok(output)
    }

    /// The run so far, as the paper's run object (inputs, states, outputs and
    /// the induced log).  The recorded database is the current snapshot of
    /// the shared catalog, restricted to the transducer's `db` relations.
    pub fn run(&self) -> Result<Run, CoreError> {
        let db_names: BTreeSet<RelationName> =
            self.transducer.schema().db().names().cloned().collect();
        let db = self.runtime.db.snapshot().restrict_to_set(&db_names);
        Run::new(
            self.transducer.schema().clone(),
            db,
            self.inputs.clone(),
            self.states.clone(),
            self.outputs.clone(),
        )
    }
}

impl Drop for Session {
    fn drop(&mut self) {
        // A quarantined session already released its name (and may have been
        // replaced under it).
        if !self.quarantined {
            lock_clean(&self.runtime.sessions).remove(&self.name);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::demand::SessionGoal;
    use crate::models;
    use crate::RelationalTransducer;
    use rtx_relational::{Schema, Tuple, Value};

    fn input_step(orders: &[&str], pays: &[(&str, i64)]) -> Instance {
        let schema = models::short_input_schema();
        let mut inst = Instance::empty(&schema);
        for o in orders {
            inst.insert("order", Tuple::from_iter([*o])).unwrap();
        }
        for (p, amt) in pays {
            inst.insert("pay", Tuple::new(vec![Value::str(*p), Value::int(*amt)]))
                .unwrap();
        }
        inst
    }

    #[test]
    fn session_reproduces_the_one_shot_run() {
        let transducer = models::short();
        let db = models::figure1_database();
        let inputs = models::figure1_inputs();
        let one_shot = transducer.run(&db, &inputs).unwrap();

        let runtime = Runtime::new(ResidentDb::new(db));
        let mut session = runtime.open_session("customer-1", transducer).unwrap();
        for input in inputs.iter() {
            session.step(input).unwrap();
        }
        assert_eq!(session.len(), inputs.len());
        assert_eq!(session.run().unwrap(), one_shot);
    }

    #[test]
    fn sessions_are_registered_and_released() {
        let runtime = Runtime::new(ResidentDb::new(models::figure1_database()));
        let transducer = Arc::new(models::short());
        let s1 = runtime.open_session("a", Arc::clone(&transducer)).unwrap();
        assert!(matches!(
            runtime.open_session("a", Arc::clone(&transducer)),
            Err(CoreError::Runtime { .. })
        ));
        assert_eq!(runtime.session_names(), vec!["a".to_string()]);
        drop(s1);
        assert_eq!(runtime.session_count(), 0);
        let _s2 = runtime.open_session("a", transducer).unwrap();
    }

    #[test]
    fn open_session_requires_the_db_relations() {
        let runtime = Runtime::new(ResidentDb::new(Instance::empty(&Schema::empty())));
        assert!(matches!(
            runtime.open_session("a", models::short()),
            Err(CoreError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn step_rejects_mismatched_input_schemas() {
        let runtime = Runtime::new(ResidentDb::new(models::figure1_database()));
        let mut session = runtime.open_session("a", models::short()).unwrap();
        let wrong = Instance::empty(&Schema::from_pairs([("other", 1)]).unwrap());
        assert!(matches!(
            session.step(&wrong),
            Err(CoreError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn catalog_mutations_are_visible_at_the_next_step() {
        let transducer = models::short();
        let db = models::figure1_database();
        let runtime = Runtime::new(ResidentDb::new(db));
        let mut session = runtime.open_session("customer", transducer).unwrap();

        // The new product is not priced yet: ordering it bills nothing.
        let out = session.step(&input_step(&["economist"], &[])).unwrap();
        assert!(out.relation("sendbill").unwrap().is_empty());

        // Price it mid-session; the next step sees it and bills.
        runtime
            .database()
            .insert(
                "price",
                Tuple::new(vec![Value::str("economist"), Value::int(700)]),
            )
            .unwrap();
        let out = session.step(&input_step(&["economist"], &[])).unwrap();
        assert!(out.holds(
            "sendbill",
            &Tuple::new(vec![Value::str("economist"), Value::int(700)])
        ));
    }

    #[test]
    fn catalog_retractions_are_visible_at_the_next_step() {
        let transducer = models::short();
        let runtime = Runtime::new(ResidentDb::new(models::figure1_database()));
        let mut session = runtime.open_session("customer", transducer).unwrap();

        // Time is priced at 855 in figure 1: ordering it bills.
        let out = session.step(&input_step(&["time"], &[])).unwrap();
        assert!(out.holds(
            "sendbill",
            &Tuple::new(vec![Value::str("time"), Value::int(855)])
        ));

        // Delist it mid-session; the very next step must stop billing.
        let removed = runtime
            .database()
            .retract(
                "price",
                &Tuple::new(vec![Value::str("time"), Value::int(855)]),
            )
            .unwrap();
        assert!(removed);
        let out = session.step(&input_step(&["time"], &[])).unwrap();
        assert!(out.relation("sendbill").unwrap().is_empty());

        // Re-list at a new price: visible again at the very next step.
        runtime
            .database()
            .insert("price", Tuple::new(vec![Value::str("time"), Value::int(9)]))
            .unwrap();
        let out = session.step(&input_step(&["time"], &[])).unwrap();
        assert!(out.holds(
            "sendbill",
            &Tuple::new(vec![Value::str("time"), Value::int(9)])
        ));
    }

    /// An observer that panics on `admit` from step `fuse` onwards.
    #[derive(Debug)]
    struct Bomb {
        fuse: usize,
    }

    impl SessionObserver for Bomb {
        fn admit(&mut self, step: usize, _input: &Instance) -> Result<Vec<Violation>, CoreError> {
            assert!(step < self.fuse, "the bomb went off");
            Ok(Vec::new())
        }

        fn observe(
            &mut self,
            _step: usize,
            _input: &Instance,
            _output: &Instance,
        ) -> Result<Vec<Violation>, CoreError> {
            Ok(Vec::new())
        }
    }

    #[test]
    fn a_poisoned_registry_lock_does_not_wedge_open_session() {
        let runtime = Runtime::new(ResidentDb::new(models::figure1_database()));
        let inner = Arc::clone(&runtime.inner);
        std::thread::spawn(move || {
            let _guard = inner.sessions.lock().unwrap();
            panic!("poison the session registry");
        })
        .join()
        .unwrap_err();

        // The registry mutex is now poisoned; every registry path must
        // recover rather than propagate the poison.
        let session = runtime.open_session("a", models::short()).unwrap();
        assert_eq!(runtime.session_count(), 1);
        assert_eq!(runtime.health().active_sessions, 1);
        drop(session);
        assert_eq!(runtime.session_count(), 0);
    }

    #[test]
    fn a_panicking_observer_quarantines_the_session_but_not_its_siblings() {
        let runtime = Runtime::new(ResidentDb::new(models::figure1_database()));
        let transducer = Arc::new(models::short());
        let mut bad = runtime
            .open_session("bad", Arc::clone(&transducer))
            .unwrap();
        bad.set_monitor_policy(MonitorPolicy::Observe);
        bad.attach_observer(Box::new(Bomb { fuse: 1 }));
        let mut good = runtime
            .open_session("good", Arc::clone(&transducer))
            .unwrap();

        let step = input_step(&["time"], &[]);
        bad.step(&step).unwrap();
        let err = bad.step(&step).unwrap_err();
        assert!(matches!(err, CoreError::SessionQuarantined { .. }));
        assert!(bad.is_quarantined());
        // The completed step survives quarantine; the panicking one did not
        // advance the session.
        assert_eq!(bad.len(), 1);
        // Further steps are refused with the same typed error.
        assert!(matches!(
            bad.step(&step),
            Err(CoreError::SessionQuarantined { .. })
        ));

        // The name is released and reported; siblings keep stepping.
        assert_eq!(runtime.session_names(), vec!["good".to_string()]);
        assert_eq!(
            runtime.health().quarantined_sessions,
            vec!["bad".to_string()]
        );
        good.step(&step).unwrap();
        let _reopened = runtime.open_session("bad", transducer).unwrap();
    }

    /// A demand following the session's own inputs: bills for what this
    /// step orders, deliveries for what this step pays.
    fn short_demand() -> SessionDemand {
        SessionDemand::new()
            .goal(
                SessionGoal::new("sendbill", "bf")
                    .unwrap()
                    .from_input("order", [0]),
            )
            .goal(
                SessionGoal::new("deliver", "b")
                    .unwrap()
                    .from_input("pay", [0]),
            )
    }

    #[test]
    fn demanded_session_matches_full_session_on_both_policies() {
        let transducer = Arc::new(models::short());
        let db = models::figure1_database();
        let inputs = models::figure1_inputs();
        let runtime = Runtime::new(ResidentDb::new(db));

        let mut full = runtime
            .open_session("full", Arc::clone(&transducer))
            .unwrap();
        assert!(!full.is_demanded());
        assert_eq!(full.demand_policy(), None);

        runtime.set_demand_policy(DemandPolicy::Demand);
        let mut rewritten = runtime
            .open_session_with_demand("rewritten", Arc::clone(&transducer), short_demand())
            .unwrap();
        assert!(rewritten.is_demanded());
        assert_eq!(rewritten.demand_policy(), Some(DemandPolicy::Demand));

        runtime.set_demand_policy(DemandPolicy::Full);
        let mut filtered = runtime
            .open_session_with_demand("filtered", Arc::clone(&transducer), short_demand())
            .unwrap();
        assert_eq!(filtered.demand_policy(), Some(DemandPolicy::Full));

        // This demand covers everything the program can derive (bills are
        // driven by `order`, deliveries by `pay`), so all three sessions
        // must agree bit-for-bit at every step — and the two demanded modes
        // must agree with each other by construction.
        for input in inputs.iter() {
            let expected = full.step(input).unwrap();
            assert_eq!(rewritten.step(input).unwrap(), expected);
            assert_eq!(filtered.step(input).unwrap(), expected);
        }
        assert!(rewritten.last_stats().tuples_derived <= full.last_stats().tuples_derived);
    }

    #[test]
    fn demanded_session_restricts_to_its_constants() {
        let transducer = Arc::new(models::short());
        let runtime = Runtime::new(ResidentDb::new(models::figure1_database()));
        runtime.set_demand_policy(DemandPolicy::Demand);
        let demand = SessionDemand::new().goal(
            SessionGoal::new("sendbill", "bf")
                .unwrap()
                .with_constants([Tuple::from_iter(["time"])]),
        );
        let mut session = runtime
            .open_session_with_demand("time-only", Arc::clone(&transducer), demand)
            .unwrap();

        let out = session
            .step(&input_step(&["time", "newsweek"], &[]))
            .unwrap();
        assert!(out.holds(
            "sendbill",
            &Tuple::new(vec![Value::str("time"), Value::int(855)])
        ));
        // The newsweek bill is derivable but not demanded.
        assert_eq!(out.relation("sendbill").unwrap().len(), 1);
        // Deliveries are not demanded at all.
        assert!(out.relation("deliver").unwrap().is_empty());
    }

    #[test]
    fn constant_specialized_goal_matches_the_seeded_one() {
        let transducer = Arc::new(models::short());
        let runtime = Runtime::new(ResidentDb::new(models::figure1_database()));
        runtime.set_demand_policy(DemandPolicy::Demand);
        let specialized = SessionDemand::new().goal(
            SessionGoal::new("deliver", "b")
                .unwrap()
                .with_constants([Tuple::from_iter(["time"])])
                .specialized(),
        );
        let seeded = SessionDemand::new().goal(
            SessionGoal::new("deliver", "b")
                .unwrap()
                .with_constants([Tuple::from_iter(["time"])]),
        );
        let mut a = runtime
            .open_session_with_demand("specialized", Arc::clone(&transducer), specialized)
            .unwrap();
        let mut b = runtime
            .open_session_with_demand("seeded", Arc::clone(&transducer), seeded)
            .unwrap();
        for input in [
            input_step(&["time", "newsweek"], &[]),
            input_step(&[], &[("time", 855), ("newsweek", 845)]),
        ] {
            let out = a.step(&input).unwrap();
            assert_eq!(out, b.step(&input).unwrap());
        }
        // Only time's delivery is demanded, though newsweek's is derivable.
        assert!(a.state().holds(
            "past-pay",
            &Tuple::new(vec![Value::str("newsweek"), Value::int(845)])
        ));
    }

    #[test]
    fn catalog_mutations_reach_demanded_sessions_at_the_next_step() {
        let transducer = Arc::new(models::short());
        let runtime = Runtime::new(ResidentDb::new(models::figure1_database()));
        runtime.set_demand_policy(DemandPolicy::Demand);
        let mut session = runtime
            .open_session_with_demand("customer", transducer, short_demand())
            .unwrap();

        let out = session.step(&input_step(&["economist"], &[])).unwrap();
        assert!(out.relation("sendbill").unwrap().is_empty());
        runtime
            .database()
            .insert(
                "price",
                Tuple::new(vec![Value::str("economist"), Value::int(700)]),
            )
            .unwrap();
        let out = session.step(&input_step(&["economist"], &[])).unwrap();
        assert!(out.holds(
            "sendbill",
            &Tuple::new(vec![Value::str("economist"), Value::int(700)])
        ));
    }

    #[test]
    fn invalid_session_demands_are_rejected_and_release_the_name() {
        let transducer = Arc::new(models::short());
        let runtime = Runtime::new(ResidentDb::new(models::figure1_database()));
        let invalid = [
            SessionDemand::new(),
            SessionDemand::new().goal(SessionGoal::new("nonexistent", "b").unwrap()),
            SessionDemand::new().goal(SessionGoal::new("sendbill", "b").unwrap()),
            SessionDemand::new().goal(
                SessionGoal::new("sendbill", "bf")
                    .unwrap()
                    .from_input("no-such-input", [0]),
            ),
            SessionDemand::new().goal(
                SessionGoal::new("sendbill", "bf")
                    .unwrap()
                    .from_input("order", [7]),
            ),
            SessionDemand::new().goal(SessionGoal::new("sendbill", "bf").unwrap().specialized()),
        ];
        for demand in invalid {
            let err = runtime
                .open_session_with_demand("a", Arc::clone(&transducer), demand)
                .unwrap_err();
            assert!(
                matches!(
                    err,
                    CoreError::Datalog(rtx_datalog::DatalogError::DemandUnsupported { .. })
                ),
                "expected DemandUnsupported, got {err:?}"
            );
        }
        // Every rejection released the name.
        assert_eq!(runtime.session_count(), 0);
        let _ok = runtime
            .open_session_with_demand("a", transducer, short_demand())
            .unwrap();
    }

    #[test]
    fn malformed_env_overrides_reject_session_opens_until_explicitly_overridden() {
        // The bug this pins: `RTX_DEMAND=ful` used to silently resolve to
        // Demand (the opposite of the kill-switch intent) and
        // `RTX_MONITOR=enforec` to Off.  Now the runtime records the
        // malformed override and refuses to open sessions, naming the
        // variable.
        let db = Arc::new(ResidentDb::new(models::figure1_database()));
        let runtime = Runtime::shared_with_settings(
            Arc::clone(&db),
            Parallelism::default(),
            Some("enforec"),
            Some("ful"),
        );
        let err = runtime.open_session("a", models::short()).unwrap_err();
        match &err {
            CoreError::Runtime { detail } => {
                assert!(detail.contains("RTX_MONITOR"), "{detail}");
                assert!(detail.contains("enforec"), "{detail}");
            }
            other => panic!("expected a Runtime refusal, got {other:?}"),
        }
        // The refusal does not leak a registry entry.
        assert_eq!(runtime.session_count(), 0);

        // Explicit setters are deliberate operator intent: each clears its
        // own variable's report, and only once both are addressed do
        // sessions open.
        runtime.set_monitor_policy(MonitorPolicy::Observe);
        let err = runtime.open_session("a", models::short()).unwrap_err();
        match &err {
            CoreError::Runtime { detail } => {
                assert!(detail.contains("RTX_DEMAND"), "{detail}");
                assert!(detail.contains("ful"), "{detail}");
            }
            other => panic!("expected a Runtime refusal, got {other:?}"),
        }
        runtime.set_demand_policy(DemandPolicy::Full);
        let _ok = runtime.open_session("a", models::short()).unwrap();

        // Well-formed overrides configure the runtime without any refusal.
        let runtime = Runtime::shared_with_settings(
            db,
            Parallelism::default(),
            Some(" Enforce "),
            Some("full"),
        );
        assert_eq!(runtime.monitor_policy(), MonitorPolicy::Enforce);
        assert_eq!(runtime.demand_policy(), DemandPolicy::Full);
        let _ok = runtime.open_session("a", models::short()).unwrap();
    }

    #[test]
    fn step_budgets_trip_with_a_typed_error_and_are_adjustable() {
        let runtime = Runtime::new(ResidentDb::new(models::figure1_database()));
        // Budgets set on the runtime seed every subsequently opened session.
        runtime.set_step_budget(EvalBudget::max_derivations(0));
        let mut session = runtime.open_session("capped", models::short()).unwrap();

        let step = input_step(&["time"], &[]);
        match session.step(&step) {
            Err(CoreError::Datalog(rtx_datalog::DatalogError::BudgetExceeded {
                resource, ..
            })) => assert_eq!(resource, "derivations"),
            other => panic!("expected BudgetExceeded, got {other:?}"),
        }
        // A budget trip is a typed refusal, not a crash: the session is
        // neither advanced nor quarantined, and raising the budget unblocks.
        assert_eq!(session.len(), 0);
        assert!(!session.is_quarantined());
        session.set_step_budget(EvalBudget::UNLIMITED);
        let out = session.step(&step).unwrap();
        assert!(!out.relation("sendbill").unwrap().is_empty());
    }
}
