//! Input-control disciplines (§4).
//!
//! A basic relational transducer cannot restrict its inputs: any sequence of
//! input instances is a run.  Section 4 of the paper enriches the model by
//! designating distinguished output relations and calling a run *valid* only
//! if they behave in a prescribed way.  The three mechanisms are incomparable
//! in expressive power (see §4); the paper, and this reproduction, focus on
//! error-free runs.

use crate::Run;

/// The three input-control mechanisms of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ControlDiscipline {
    /// Mechanism (1): a run is valid iff no output contains a fact of the
    /// distinguished relation `error`.
    ErrorFree,
    /// Mechanism (2): a run is valid iff every output contains the
    /// propositional fact `ok`.
    OkAtEveryStep,
    /// Mechanism (3): a run is valid iff it is finite and its last output
    /// contains the propositional fact `accept`.
    AcceptAtEnd,
}

impl ControlDiscipline {
    /// All three disciplines, for exhaustive testing.
    pub const ALL: [ControlDiscipline; 3] = [
        ControlDiscipline::ErrorFree,
        ControlDiscipline::OkAtEveryStep,
        ControlDiscipline::AcceptAtEnd,
    ];

    /// The distinguished output relation this discipline inspects.
    pub fn relation(&self) -> &'static str {
        match self {
            ControlDiscipline::ErrorFree => "error",
            ControlDiscipline::OkAtEveryStep => "ok",
            ControlDiscipline::AcceptAtEnd => "accept",
        }
    }

    /// True if the run is valid under this discipline.
    pub fn accepts(&self, run: &Run) -> bool {
        match self {
            ControlDiscipline::ErrorFree => run.is_error_free(),
            ControlDiscipline::OkAtEveryStep => run.has_ok_at_every_step(),
            ControlDiscipline::AcceptAtEnd => run.is_accepted(),
        }
    }
}

impl std::fmt::Display for ControlDiscipline {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ControlDiscipline::ErrorFree => write!(f, "error-free"),
            ControlDiscipline::OkAtEveryStep => write!(f, "ok-at-every-step"),
            ControlDiscipline::AcceptAtEnd => write!(f, "accept-at-end"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{RelationalTransducer, SpocusBuilder};
    use rtx_relational::{Instance, InstanceSequence, Schema, Tuple};

    /// A toy model: `error` when paying an unordered product, `ok` when an
    /// order is present, `accept` when a `close` input arrives.
    fn controlled() -> crate::SpocusTransducer {
        SpocusBuilder::new("controlled")
            .input("order", 1)
            .input("pay", 1)
            .input("close", 0)
            .output("error", 0)
            .output("ok", 0)
            .output("accept", 0)
            .log(["order", "pay"])
            .output_rule("error :- pay(X), NOT past-order(X), NOT order(X)")
            .output_rule("ok :- order(X)")
            .output_rule("accept :- close")
            .build()
            .unwrap()
    }

    fn step(orders: &[&str], pays: &[&str], close: bool) -> Instance {
        let schema = Schema::from_pairs([("order", 1), ("pay", 1), ("close", 0)]).unwrap();
        let mut inst = Instance::empty(&schema);
        for o in orders {
            inst.insert("order", Tuple::from_iter([*o])).unwrap();
        }
        for p in pays {
            inst.insert("pay", Tuple::from_iter([*p])).unwrap();
        }
        if close {
            inst.insert("close", Tuple::unit()).unwrap();
        }
        inst
    }

    fn run_of(steps: Vec<Instance>) -> Run {
        let t = controlled();
        let inputs = InstanceSequence::new(
            Schema::from_pairs([("order", 1), ("pay", 1), ("close", 0)]).unwrap(),
            steps,
        )
        .unwrap();
        t.run(&Instance::empty(&Schema::empty()), &inputs).unwrap()
    }

    #[test]
    fn disciplines_judge_runs_independently() {
        // A polite customer: order, then pay, then close.
        let good = run_of(vec![
            step(&["time"], &[], false),
            step(&["newsweek"], &["time"], false),
            step(&["lemonde"], &[], true),
        ]);
        assert!(ControlDiscipline::ErrorFree.accepts(&good));
        assert!(ControlDiscipline::OkAtEveryStep.accepts(&good));
        assert!(ControlDiscipline::AcceptAtEnd.accepts(&good));

        // Paying before ordering violates error-freeness only.
        let fraud = run_of(vec![
            step(&["time"], &["newsweek"], false),
            step(&["lemonde"], &[], true),
        ]);
        assert!(!ControlDiscipline::ErrorFree.accepts(&fraud));
        assert!(ControlDiscipline::OkAtEveryStep.accepts(&fraud));
        assert!(ControlDiscipline::AcceptAtEnd.accepts(&fraud));

        // A step with no order violates ok-at-every-step only.
        let silent = run_of(vec![
            step(&["time"], &[], false),
            step(&[], &["time"], true),
        ]);
        assert!(ControlDiscipline::ErrorFree.accepts(&silent));
        assert!(!ControlDiscipline::OkAtEveryStep.accepts(&silent));
        assert!(ControlDiscipline::AcceptAtEnd.accepts(&silent));

        // Never closing violates accept-at-end only.
        let unfinished = run_of(vec![step(&["time"], &[], false)]);
        assert!(ControlDiscipline::ErrorFree.accepts(&unfinished));
        assert!(ControlDiscipline::OkAtEveryStep.accepts(&unfinished));
        assert!(!ControlDiscipline::AcceptAtEnd.accepts(&unfinished));
    }

    #[test]
    fn relation_names_and_display() {
        assert_eq!(ControlDiscipline::ErrorFree.relation(), "error");
        assert_eq!(ControlDiscipline::OkAtEveryStep.relation(), "ok");
        assert_eq!(ControlDiscipline::AcceptAtEnd.relation(), "accept");
        assert_eq!(ControlDiscipline::ALL.len(), 3);
        assert_eq!(ControlDiscipline::ErrorFree.to_string(), "error-free");
    }
}
