//! # rtx-core
//!
//! The paper's primary contribution: **relational transducers** as declarative
//! specifications of electronic-commerce business models, and the restricted
//! **Spocus** class (Semi-Positive Outputs, CUmulative State) for which the
//! verification problems of §3–§4 are decidable.
//!
//! The crate implements the formal model of §2.2 and the Spocus definition of
//! §3.1 exactly:
//!
//! * [`TransducerSchema`] — the five-component schema `(in, state, out, db,
//!   log)` with its disjointness and `log ⊆ in ∪ out` conditions;
//! * [`RelationalTransducer`] — the abstract machine: a state function `σ`
//!   and an output function `ω` mapping `(Iᵢ, Sᵢ₋₁, D)` to the next state and
//!   output, together with the induced [`Run`] semantics (state, output and
//!   log sequences);
//! * [`SpocusTransducer`] — the restricted class: state relations `past-R`
//!   that cumulate inputs, outputs defined by a non-recursive semipositive
//!   datalog¬≠ program, with every Spocus restriction statically validated at
//!   construction time;
//! * [`parse_transducer`] — the paper's concrete program syntax
//!   (`transducer short … state rules … output rules …`);
//! * [`models`] — the paper's worked examples (`short`, `friendly`, the
//!   propositional `a b* c` generator) together with the Figure 1/Figure 2
//!   catalog and input sequences;
//! * [`ControlDiscipline`] — the §4 input-control mechanisms (`error`-free
//!   runs, `ok`-at-every-step, `accept`-at-the-end) and their run validity
//!   predicates;
//! * [`PropositionalTransducer`] — propositional Spocus transducers and the
//!   enumeration of their generated output languages `Gen(T)`;
//! * [`runtime`] — the resident-service shape of the same semantics: a
//!   [`Runtime`] owning one shared version-stamped
//!   [`ResidentDb`](rtx_datalog::ResidentDb) and serving many named
//!   concurrent [`Session`]s, each a transducer run fed one input at a time
//!   and evaluated incrementally against the cumulative-state deltas;
//! * [`durable`] — the same service backed by crash-safe storage: a
//!   [`DurableRuntime`] write-ahead logs every catalog mutation through
//!   `rtx-store`'s WAL + snapshot layer, and [`Runtime::open_durable`]
//!   recovers the committed catalog after a crash;
//! * [`shard`] — the scale-out shape: a [`ShardedRuntime`] routes sessions
//!   by name hash across `N` shard runtimes that all read the **same**
//!   `Arc<ResidentDb>` (route → shard-local step → snapshot refresh →
//!   health aggregation), with a fleet-wide name registry, per-shard worker
//!   budgets split from one total
//!   ([`Parallelism::divided_among`](rtx_datalog::Parallelism::divided_among)),
//!   and one durable store feeding every shard
//!   ([`durable::ShardedDurableRuntime`]).
//!
//! The prepare/resident lifecycle: a one-shot
//! [`RelationalTransducer::run`] makes its database resident for the
//! duration of the run; a service makes it resident **once**
//! ([`rtx_datalog::ResidentDb`]), shares it across sessions and threads, and
//! mutates it in place.  Mutation is first-class in both directions —
//! `ResidentDb::insert` *and* `ResidentDb::retract` follow the same
//! lifecycle: the copy-on-write write bumps the relation's version stamp,
//! the next prepared view rebuilds exactly the stale hash indexes, and a
//! mid-run [`Session`] step compares the relations its program actually
//! reads against `ResidentDb::stale_relations` to reseed exactly the
//! invalidated step caches (retractions drop version-guarded grow-blocks
//! rather than assuming append-only history).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod control;
pub mod demand;
mod dsl;
pub mod durable;
mod error;
pub mod models;
mod propositional;
mod run;
pub mod runtime;
mod schema;
pub mod shard;
mod spocus;
pub mod supervise;
mod transducer;

pub use builder::SpocusBuilder;
pub use control::ControlDiscipline;
pub use demand::{SessionDemand, SessionGoal};
pub use dsl::parse_transducer;
pub use durable::{DurableRuntime, ShardedDurableRuntime};
pub use error::CoreError;
pub use propositional::PropositionalTransducer;
pub use rtx_datalog::DemandPolicy;
pub use run::{Run, RunStep};
pub use runtime::{Runtime, Session};
pub use schema::TransducerSchema;
pub use shard::{ShardedRuntime, ShardedSession};
pub use spocus::SpocusTransducer;
pub use supervise::{MonitorPolicy, RuntimeHealth, SessionObserver, Violation, ViolationKind};
pub use transducer::RelationalTransducer;

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::{Tuple, Value};

    #[test]
    fn short_model_reproduces_figure_1_deliveries() {
        let transducer = models::short();
        let db = models::figure1_database();
        let inputs = models::figure1_inputs();
        let run = transducer.run(&db, &inputs).unwrap();
        // Step 2 of Figure 1: deliver(Time) after pay(Time, 855).
        let deliver_step = run.outputs().get(1).unwrap();
        assert!(deliver_step.holds("deliver", &Tuple::from_iter([Value::str("time")])));
    }
}
