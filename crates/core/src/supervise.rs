//! Session supervision: monitor policies, violation events, and runtime
//! health.
//!
//! The verification procedures of §3–§4 (log validation, temporal
//! properties, goal reachability, input control) are decision procedures
//! over *completed* runs.  This module is the runtime half of making them
//! **online**: a [`Session`](crate::Session) carries a [`MonitorPolicy`] and
//! an optional [`SessionObserver`] that is consulted at every step — before
//! the step to *admit* the input (the §4 input-control gate) and after the
//! step to *observe* the produced output (incremental log validation,
//! per-step temporal properties, forbidden goals).  Observers report typed
//! [`Violation`] events; under [`MonitorPolicy::Enforce`] an admission
//! violation rejects the input with
//! [`CoreError::StepRejected`] before the
//! run advances.
//!
//! Supervision is fault isolation on top of monitoring: the step path is
//! wrapped in `catch_unwind`, so a panicking observer or evaluator
//! *quarantines* its own session — the name is released, the state is
//! preserved for inspection, and sibling sessions (and the shared catalog
//! lock) are untouched.  [`RuntimeHealth`] snapshots the aggregate:
//! active/quarantined sessions, violations seen, inputs rejected.
//!
//! The concrete observer implementation lives in `rtx-verify::monitor`
//! (`SessionMonitor`), keeping the dependency arrow pointing from the
//! verifier to the core.

use crate::CoreError;
use rtx_relational::{Instance, RelationName, Tuple};
use std::fmt;

/// How a [`Session`](crate::Session) treats its attached monitor.
///
/// The process-wide default comes from the `RTX_MONITOR` environment
/// variable ([`MonitorPolicy::from_env`] — strict: a malformed value is a
/// hard error, never a silent fallback to [`MonitorPolicy::Off`]); a runtime
/// or session can override it programmatically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MonitorPolicy {
    /// No monitoring: attached observers are not consulted.
    #[default]
    Off,
    /// Observers run at every step and violations are recorded on the
    /// session, but the run is never perturbed: a monitored run is
    /// bit-identical to an unmonitored one.
    Observe,
    /// Like [`MonitorPolicy::Observe`], and additionally the admission gate
    /// is enforced: an input whose admission raises a violation is rejected
    /// with [`CoreError::StepRejected`]
    /// before the run advances.
    Enforce,
}

impl MonitorPolicy {
    /// The accepted forms of `RTX_MONITOR`, for the strict-parse error
    /// message.
    pub const ENV_EXPECTED: &'static str = "`off`, `observe` or `enforce`";

    /// Parses an `RTX_MONITOR` value (`off` / `observe` / `enforce`,
    /// whitespace-trimmed, ASCII case-insensitive).  `None` (unset, empty or
    /// garbage) falls through to the caller's default — prefer
    /// [`MonitorPolicy::from_env_setting`], which distinguishes "unset" from
    /// "malformed" instead of conflating them.
    pub fn parse(value: Option<&str>) -> Option<MonitorPolicy> {
        match value?.trim().to_ascii_lowercase().as_str() {
            "off" => Some(MonitorPolicy::Off),
            "observe" => Some(MonitorPolicy::Observe),
            "enforce" => Some(MonitorPolicy::Enforce),
            _ => None,
        }
    }

    /// Strictly parses an `RTX_MONITOR` value through the shared
    /// [`env`](rtx_relational::env) contract: `Ok(None)` when unset or
    /// blank, a hard [`EnvParseError`](rtx_relational::env::EnvParseError)
    /// when malformed — a typo'd `RTX_MONITOR=enforec` must fail loudly,
    /// not silently disable the guardrails.
    pub fn from_env_setting(
        raw: Option<&str>,
    ) -> Result<Option<MonitorPolicy>, rtx_relational::env::EnvParseError> {
        rtx_relational::env::parse_setting("RTX_MONITOR", raw, Self::ENV_EXPECTED, |value| {
            MonitorPolicy::parse(Some(value))
        })
    }

    /// Reads and strictly parses the `RTX_MONITOR` environment variable.
    /// `Ok(None)` when unset: the caller's programmatic default applies.
    pub fn from_env() -> Result<Option<MonitorPolicy>, rtx_relational::env::EnvParseError> {
        let raw = std::env::var("RTX_MONITOR").ok();
        MonitorPolicy::from_env_setting(raw.as_deref())
    }

    /// True unless the policy is [`MonitorPolicy::Off`].
    pub fn is_active(&self) -> bool {
        !matches!(self, MonitorPolicy::Off)
    }
}

impl fmt::Display for MonitorPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MonitorPolicy::Off => "off",
            MonitorPolicy::Observe => "observe",
            MonitorPolicy::Enforce => "enforce",
        };
        f.write_str(s)
    }
}

/// Which verification check a [`Violation`] came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViolationKind {
    /// A §4 state-deviation-input constraint (input control) was violated.
    Constraint,
    /// A registered temporal property does not hold at this step.
    Temporal,
    /// A forbidden goal became true in the step's output.
    Goal,
    /// The observed output deviates from the spec's log projection
    /// (incremental Thm 3.1 log validation).
    Log,
}

impl fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ViolationKind::Constraint => "constraint",
            ViolationKind::Temporal => "temporal",
            ViolationKind::Goal => "goal",
            ViolationKind::Log => "log",
        };
        f.write_str(s)
    }
}

/// One monitored-check failure: which check, at which step, and — when the
/// check can name one — the offending relation and witness tuple.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// The step index (0-based) the violation was detected at.
    pub step: usize,
    /// Which kind of check failed.
    pub kind: ViolationKind,
    /// The name of the violated constraint, property, or goal.
    pub source: String,
    /// The relation the witness tuple belongs to, when one exists.
    pub relation: Option<RelationName>,
    /// A witness tuple demonstrating the violation, when one exists.
    pub tuple: Option<Tuple>,
    /// Human-readable explanation.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "step {}: {} violation of `{}`",
            self.step, self.kind, self.source
        )?;
        if let (Some(rel), Some(tuple)) = (&self.relation, &self.tuple) {
            write!(f, " [witness {}{}]", rel.as_str(), tuple)?;
        }
        if !self.detail.is_empty() {
            write!(f, ": {}", self.detail)?;
        }
        Ok(())
    }
}

/// A per-session online monitor, consulted by
/// [`Session::step`](crate::Session::step) when the session's
/// [`MonitorPolicy`] is active.
///
/// `admit` runs *before* the step and gates the input (§4 input control);
/// `observe` runs *after* the step over the produced output (log validation,
/// temporal properties, goals) and must advance the observer's own mirror of
/// the run — it is called exactly once per *admitted* step, so a rejection
/// under [`MonitorPolicy::Enforce`] leaves monitor and session in lockstep.
///
/// A typed error from either hook aborts the step with that error; a panic
/// quarantines the session.  The `Debug + Send` bounds keep
/// [`Session`](crate::Session) debuggable and sendable across threads.
pub trait SessionObserver: Send + fmt::Debug {
    /// Checks whether `input` may be admitted at step `step`.  Returned
    /// violations are recorded on the session; under
    /// [`MonitorPolicy::Enforce`] a non-empty return rejects the input.
    fn admit(&mut self, step: usize, input: &Instance) -> Result<Vec<Violation>, CoreError>;

    /// Observes the admitted step's input and produced output, returning any
    /// violations detected.  Implementations advance their internal run
    /// mirror here.
    fn observe(
        &mut self,
        step: usize,
        input: &Instance,
        output: &Instance,
    ) -> Result<Vec<Violation>, CoreError>;
}

/// A point-in-time snapshot of a [`Runtime`](crate::Runtime)'s supervision
/// state, from [`Runtime::health`](crate::Runtime::health).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RuntimeHealth {
    /// Names currently registered in the session registry (live, stepping
    /// sessions).
    pub active_sessions: usize,
    /// Sessions quarantined after a panic, in name order.  Quarantined
    /// sessions release their registry name (so it can be reused) but keep
    /// their state for inspection.
    pub quarantined_sessions: Vec<String>,
    /// Total violations recorded by observers across all sessions.
    pub violations: u64,
    /// Total inputs rejected by enforcement across all sessions.
    pub rejections: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_is_strict() {
        assert_eq!(MonitorPolicy::parse(Some("off")), Some(MonitorPolicy::Off));
        assert_eq!(
            MonitorPolicy::parse(Some("observe")),
            Some(MonitorPolicy::Observe)
        );
        assert_eq!(
            MonitorPolicy::parse(Some("enforce")),
            Some(MonitorPolicy::Enforce)
        );
        assert_eq!(
            MonitorPolicy::parse(Some(" Enforce ")),
            Some(MonitorPolicy::Enforce)
        );
        assert_eq!(
            MonitorPolicy::parse(Some("OBSERVE")),
            Some(MonitorPolicy::Observe)
        );
        assert_eq!(MonitorPolicy::parse(None), None);
        assert_eq!(MonitorPolicy::parse(Some("")), None);
        assert_eq!(MonitorPolicy::parse(Some("on")), None);
        assert_eq!(MonitorPolicy::parse(Some("enforced")), None);
        assert_eq!(MonitorPolicy::parse(Some("1")), None);
    }

    #[test]
    fn default_and_activity() {
        assert_eq!(MonitorPolicy::default(), MonitorPolicy::Off);
        assert!(!MonitorPolicy::Off.is_active());
        assert!(MonitorPolicy::Observe.is_active());
        assert!(MonitorPolicy::Enforce.is_active());
    }

    #[test]
    fn rtx_monitor_setting_rejects_malformed_values_loudly() {
        assert_eq!(MonitorPolicy::from_env_setting(None), Ok(None));
        assert_eq!(MonitorPolicy::from_env_setting(Some("")), Ok(None));
        assert_eq!(MonitorPolicy::from_env_setting(Some("  ")), Ok(None));
        assert_eq!(
            MonitorPolicy::from_env_setting(Some(" Enforce ")),
            Ok(Some(MonitorPolicy::Enforce))
        );
        // The fleet-misconfiguration bug this pins: a typo'd policy
        // (`enforec`) used to silently leave monitoring Off.
        for bad in ["enforec", "on", "1", "observe,enforce"] {
            let err = MonitorPolicy::from_env_setting(Some(bad)).unwrap_err();
            assert_eq!(err.var, "RTX_MONITOR");
            assert_eq!(err.value, bad);
        }
    }

    #[test]
    fn violation_display_names_the_witness() {
        let v = Violation {
            step: 3,
            kind: ViolationKind::Constraint,
            source: "no-late-bids".into(),
            relation: Some(RelationName::new("bid")),
            tuple: Some(Tuple::from_iter(["vase", "mallory"])),
            detail: "bid after close".into(),
        };
        let s = v.to_string();
        assert!(s.contains("step 3"), "{s}");
        assert!(s.contains("no-late-bids"), "{s}");
        assert!(s.contains("bid"), "{s}");
        assert!(s.contains("mallory"), "{s}");
        let s = ViolationKind::Log.to_string();
        assert_eq!(s, "log");
    }
}
