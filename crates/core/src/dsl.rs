//! Parser for the paper's transducer program syntax.
//!
//! The concrete syntax is the one used for `TRANSDUCER SHORT` and
//! `TRANSDUCER FRIENDLY` in §2.1:
//!
//! ```text
//! transducer short
//! schema
//!   database: price, available;
//!   input: order, pay;
//!   state: past-order, past-pay;
//!   output: sendbill, deliver;
//!   log: sendbill, pay, deliver;
//! state rules
//!   past-order(X) +:- order(X);
//!   past-pay(X,Y) +:- pay(X,Y);
//! output rules
//!   sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
//!   deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y).
//! ```
//!
//! Relation arities are not written in the schema section; they are inferred
//! from the rules (an explicit `name/arity` form is also accepted for
//! relations that no rule mentions).  Rules may be terminated by `;` or `.`;
//! `%` and `//` start comments.  The `schema`/`relations` keyword line is
//! optional, as is the `state:` line (the Spocus state schema is determined
//! by the inputs).

use crate::{CoreError, SpocusTransducer, TransducerSchema};
use rtx_datalog::parser::{parse_program_kinded, RuleKind};
use rtx_datalog::{BodyLiteral, Program, Rule};
use rtx_logic::Term;
use rtx_relational::{RelationName, Schema};
use std::collections::BTreeMap;

/// Parses a transducer program in the paper's concrete syntax.
pub fn parse_transducer(text: &str) -> Result<SpocusTransducer, CoreError> {
    let cleaned = strip_comments(text);
    let lower = cleaned.to_ascii_lowercase();

    // Locate the rule sections.
    let state_rules_pos = lower.find("state rules");
    let output_rules_pos = lower.find("output rules").ok_or_else(|| CoreError::Parse {
        detail: "missing `output rules` section".into(),
    })?;
    let header_end = state_rules_pos.unwrap_or(output_rules_pos);
    if let Some(sp) = state_rules_pos {
        if sp > output_rules_pos {
            return Err(CoreError::Parse {
                detail: "`state rules` must precede `output rules`".into(),
            });
        }
    }

    let header = &cleaned[..header_end];
    let state_rules_text = match state_rules_pos {
        Some(sp) => &cleaned[sp + "state rules".len()..output_rules_pos],
        None => "",
    };
    let output_rules_text = &cleaned[output_rules_pos + "output rules".len()..];

    // Name.
    let name = parse_name(header).unwrap_or_else(|| "unnamed".to_string());

    // Declarations.
    let decls = parse_declarations(header)?;
    let input_decl = decls.get("input").cloned().unwrap_or_default();
    let output_decl = decls.get("output").cloned().unwrap_or_default();
    let db_decl = decls.get("database").cloned().unwrap_or_default();
    let log_decl = decls.get("log").cloned().unwrap_or_default();
    if input_decl.is_empty() {
        return Err(CoreError::Parse {
            detail: "missing `input:` declaration".into(),
        });
    }
    if output_decl.is_empty() {
        return Err(CoreError::Parse {
            detail: "missing `output:` declaration".into(),
        });
    }

    // Rules.
    let state_rules = parse_rules(state_rules_text, ";")?;
    let output_rules = parse_rules(output_rules_text, ";")?;
    for (rule, kind) in &state_rules {
        if *kind != RuleKind::Cumulative {
            return Err(CoreError::NotSpocus {
                detail: format!("state rule `{rule}` must use `+:-` (cumulative semantics)"),
            });
        }
        check_cumulative_shape(rule)?;
    }
    for (rule, kind) in &output_rules {
        if *kind != RuleKind::Plain {
            return Err(CoreError::Parse {
                detail: format!("output rule `{rule}` must use `:-`, not `+:-`"),
            });
        }
    }

    // Arity inference.
    let mut arities: BTreeMap<String, usize> = BTreeMap::new();
    let mut note = |name: &str, arity: usize| -> Result<(), CoreError> {
        match arities.get(name) {
            Some(&a) if a != arity => Err(CoreError::Parse {
                detail: format!("relation `{name}` used with arities {a} and {arity}"),
            }),
            _ => {
                arities.insert(name.to_string(), arity);
                Ok(())
            }
        }
    };
    for (rule, _) in state_rules.iter().chain(output_rules.iter()) {
        note(rule.head.relation.as_str(), rule.head.arity())?;
        for lit in &rule.body {
            if let BodyLiteral::Positive(a) | BodyLiteral::Negative(a) = lit {
                note(a.relation.as_str(), a.arity())?;
            }
        }
    }
    // Explicit `name/arity` declarations override / complete the inference.
    for decl in [&input_decl, &output_decl, &db_decl] {
        for (name, explicit) in decl {
            if let Some(a) = explicit {
                note(name, *a)?;
            }
        }
    }

    let resolve = |decl: &[(String, Option<usize>)]| -> Result<Vec<(String, usize)>, CoreError> {
        decl.iter()
            .map(|(name, explicit)| {
                let arity = explicit.or_else(|| arities.get(name).copied()).ok_or_else(|| {
                    CoreError::Parse {
                        detail: format!(
                            "cannot infer the arity of `{name}`; no rule mentions it (use `{name}/k`)"
                        ),
                    }
                })?;
                Ok((name.clone(), arity))
            })
            .collect()
    };

    let input = Schema::from_pairs(resolve(&input_decl)?)?;
    let output = Schema::from_pairs(resolve(&output_decl)?)?;
    let db = Schema::from_pairs(resolve(&db_decl)?)?;
    let state = TransducerSchema::cumulative_state_schema(&input);

    // The `state:` declaration, if present, must agree with the derived one.
    if let Some(state_decl) = decls.get("state") {
        for (name, _) in state_decl {
            if !state.contains(name.as_str()) {
                return Err(CoreError::NotSpocus {
                    detail: format!(
                        "declared state relation `{name}` is not of the form past-R for an input R"
                    ),
                });
            }
        }
    }
    // Every declared state rule must target a derived state relation and
    // cumulate the matching input.
    for (rule, _) in &state_rules {
        let head = rule.head.relation.clone();
        if !state.contains(head.clone()) {
            return Err(CoreError::NotSpocus {
                detail: format!("state rule defines `{head}`, which is not past-R for an input R"),
            });
        }
    }

    let log: Vec<RelationName> = log_decl
        .iter()
        .map(|(n, _)| RelationName::new(n.clone()))
        .collect();
    let schema = TransducerSchema::new(input, state, output, db, log)?;
    SpocusTransducer::new(
        name,
        schema,
        Program::new(output_rules.into_iter().map(|(r, _)| r).collect()),
    )
}

fn strip_comments(text: &str) -> String {
    text.lines()
        .map(|line| {
            let no_pct = line.split('%').next().unwrap_or("");
            no_pct.split("//").next().unwrap_or("").to_string()
        })
        .collect::<Vec<_>>()
        .join("\n")
}

fn parse_name(header: &str) -> Option<String> {
    for line in header.lines() {
        let trimmed = line.trim();
        let lower = trimmed.to_ascii_lowercase();
        if let Some(rest) = lower.strip_prefix("transducer") {
            let name = rest.trim();
            if !name.is_empty() {
                // take the original-cased name from the same position
                let start = trimmed.len() - name.len();
                return Some(trimmed[start..].trim().to_lowercase());
            }
        }
    }
    None
}

type Declarations = BTreeMap<String, Vec<(String, Option<usize>)>>;

fn parse_declarations(header: &str) -> Result<Declarations, CoreError> {
    let mut out: Declarations = BTreeMap::new();
    // Scan for "keyword:" markers and take the text up to the next ';'.
    let keywords = ["database", "input", "state", "output", "log"];
    let lower = header.to_ascii_lowercase();
    for keyword in keywords {
        let marker = format!("{keyword}:");
        if let Some(pos) = lower.find(&marker) {
            let rest = &header[pos + marker.len()..];
            let list_text = rest.split(';').next().unwrap_or("").trim();
            let mut entries = Vec::new();
            for raw in list_text.split(',') {
                let raw = raw.trim();
                if raw.is_empty() {
                    continue;
                }
                let (name, arity) = match raw.split_once('/') {
                    Some((n, a)) => {
                        let arity = a.trim().parse::<usize>().map_err(|_| CoreError::Parse {
                            detail: format!("invalid arity in declaration `{raw}`"),
                        })?;
                        (n.trim().to_string(), Some(arity))
                    }
                    None => (raw.to_string(), None),
                };
                entries.push((name, arity));
            }
            out.insert(keyword.to_string(), entries);
        }
    }
    Ok(out)
}

fn parse_rules(text: &str, _sep: &str) -> Result<Vec<(Rule, RuleKind)>, CoreError> {
    // Accept both ';' and '.' as rule terminators by normalising to '.'.
    let normalised = text.replace(';', ".");
    parse_program_kinded(&normalised).map_err(CoreError::from)
}

/// Checks that a cumulative state rule has exactly the Spocus shape
/// `past-R(x1, …, xk) +:- R(x1, …, xk)`: the single body atom is the
/// corresponding input relation with the same variable list (no projection,
/// no constants, no extra literals).  This is precisely the restriction whose
/// relaxation makes log validity undecidable (Proposition 3.1).
fn check_cumulative_shape(rule: &Rule) -> Result<(), CoreError> {
    let head = &rule.head;
    let base = head
        .relation
        .strip_past()
        .ok_or_else(|| CoreError::NotSpocus {
            detail: format!(
                "state relation `{}` is not of the form past-R",
                head.relation
            ),
        })?;
    if rule.body.len() != 1 {
        return Err(CoreError::NotSpocus {
            detail: format!("state rule `{rule}` must have exactly one body atom"),
        });
    }
    let body_atom = match &rule.body[0] {
        BodyLiteral::Positive(a) => a,
        other => {
            return Err(CoreError::NotSpocus {
                detail: format!("state rule body `{other}` must be a positive atom"),
            })
        }
    };
    if body_atom.relation != base {
        return Err(CoreError::NotSpocus {
            detail: format!(
                "state rule for `{}` must cumulate `{base}`, not `{}`",
                head.relation, body_atom.relation
            ),
        });
    }
    if head.args != body_atom.args || head.args.iter().any(|t| !matches!(t, Term::Var(_))) {
        return Err(CoreError::NotSpocus {
            detail: format!(
                "state rule `{rule}` must copy the input tuple unchanged (projections are not Spocus; see Proposition 3.1)"
            ),
        });
    }
    let mut seen = std::collections::BTreeSet::new();
    for t in &head.args {
        if let Term::Var(v) = t {
            if !seen.insert(v.clone()) {
                return Err(CoreError::NotSpocus {
                    detail: format!(
                        "state rule `{rule}` repeats variable `{v}`; selections are not Spocus"
                    ),
                });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::RelationalTransducer;

    const SHORT: &str = "\
transducer short
schema
  database: price, available/1;
  input: order, pay;
  state: past-order, past-pay;
  output: sendbill, deliver;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y).";

    #[test]
    fn parses_the_short_program() {
        let t = parse_transducer(SHORT).unwrap();
        assert_eq!(t.name(), "short");
        assert_eq!(t.schema().input().arity_of("pay"), Some(2));
        assert_eq!(t.schema().db().arity_of("available"), Some(1));
        assert_eq!(t.schema().output().arity_of("sendbill"), Some(2));
        assert_eq!(t.schema().log().len(), 3);
        assert_eq!(t.output_program().len(), 2);
        // parsed transducer behaves identically to the builder-based model
        let built = models::short();
        assert_eq!(t.schema(), built.schema());
        assert_eq!(t.output_program(), built.output_program());
    }

    #[test]
    fn missing_sections_are_reported() {
        assert!(matches!(
            parse_transducer("transducer empty\ninput: a;\n"),
            Err(CoreError::Parse { .. })
        ));
        let no_input = "transducer x\noutput: b;\noutput rules\n b :- c(X).";
        assert!(matches!(
            parse_transducer(no_input),
            Err(CoreError::Parse { .. })
        ));
    }

    #[test]
    fn uninferable_arity_requires_explicit_declaration() {
        // `cancel` never appears in a rule: its arity cannot be inferred.
        let text = "\
transducer t
input: order, cancel;
output: deliver;
log: deliver;
state rules
  past-order(X) +:- order(X);
output rules
  deliver(X) :- past-order(X).";
        assert!(matches!(
            parse_transducer(text),
            Err(CoreError::Parse { .. })
        ));

        let fixed = text.replace("order, cancel;", "order, cancel/1;");
        let t = parse_transducer(&fixed).unwrap();
        assert_eq!(t.schema().input().arity_of("cancel"), Some(1));
        assert!(t.schema().state().contains("past-cancel"));
    }

    #[test]
    fn projection_state_rules_are_rejected_as_non_spocus() {
        // The Proposition 3.1 gadget: R2(y) +:- R(x,y) uses projection.
        let text = "\
transducer gadget
input: R;
output: violation;
log: violation;
state rules
  past-R(X,Y) +:- R(X,Y);
  past-R2(Y) +:- R(X,Y);
output rules
  violation :- past-R(X,Y), past-R(X,Z), Y <> Z.";
        assert!(matches!(
            parse_transducer(text),
            Err(CoreError::NotSpocus { .. })
        ));
    }

    #[test]
    fn state_rules_must_be_cumulative() {
        let text = SHORT.replace("past-order(X) +:- order(X);", "past-order(X) :- order(X);");
        assert!(matches!(
            parse_transducer(&text),
            Err(CoreError::NotSpocus { .. })
        ));
    }

    #[test]
    fn output_rules_must_not_be_cumulative() {
        let text = SHORT.replace("sendbill(X,Y) :- order(X)", "sendbill(X,Y) +:- order(X)");
        assert!(matches!(
            parse_transducer(&text),
            Err(CoreError::Parse { .. })
        ));
    }

    #[test]
    fn comments_are_ignored() {
        let commented = format!("% business model\n{SHORT}\n% end");
        assert!(parse_transducer(&commented).is_ok());
    }

    #[test]
    fn parsed_short_runs_like_figure_1() {
        let t = parse_transducer(SHORT).unwrap();
        let run = t
            .run(&models::figure1_database(), &models::figure1_inputs())
            .unwrap();
        assert!(run.len() >= 2);
        // the second step delivers Time after payment
        assert!(run
            .outputs()
            .get(1)
            .unwrap()
            .holds("deliver", &rtx_relational::Tuple::from_iter(["time"])));
    }
}
