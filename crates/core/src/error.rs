//! Error type for the transducer core.

use std::fmt;

/// Errors from constructing or running transducers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CoreError {
    /// The transducer schema violates a structural condition of §2.2
    /// (components not disjoint, log not contained in `in ∪ out`, …).
    InvalidSchema {
        /// Explanation of the violation.
        detail: String,
    },
    /// A Spocus restriction of §3.1 is violated (state relations not of the
    /// `past-R` form, output rule mentioning a forbidden relation, recursion,
    /// negation of a non-base relation, unsafe rule, …).
    NotSpocus {
        /// Explanation of the violation.
        detail: String,
    },
    /// A run was attempted with inputs or a database that do not match the
    /// transducer schema.
    SchemaMismatch {
        /// Explanation of the mismatch.
        detail: String,
    },
    /// A syntax error in the transducer DSL.
    Parse {
        /// Explanation of the problem.
        detail: String,
    },
    /// A session-runtime error (duplicate session name, …).
    Runtime {
        /// Explanation of the problem.
        detail: String,
    },
    /// A step input was rejected by the session's enforcement gate
    /// ([`MonitorPolicy::Enforce`](crate::MonitorPolicy::Enforce)): admitting
    /// it would drive the run into an error state.  The run is left exactly
    /// as it was before the step — the session stays usable.
    StepRejected {
        /// The step index (0-based) the input was offered at.
        step: usize,
        /// The name of the violated constraint or property.
        constraint: String,
        /// Explanation, including the witness tuple when one exists.
        detail: String,
    },
    /// The session panicked mid-step and was quarantined: its name is
    /// released, its state is preserved for inspection, and every further
    /// [`Session::step`](crate::Session::step) fails with this error.
    SessionQuarantined {
        /// The quarantined session's name.
        session: String,
        /// The panic payload (or a placeholder when it was not a string).
        detail: String,
    },
    /// An error bubbled up from the datalog engine.
    Datalog(rtx_datalog::DatalogError),
    /// An error bubbled up from the relational layer.
    Relational(rtx_relational::RelationalError),
    /// An error bubbled up from the durable store (I/O, corruption,
    /// journal truncation).
    Store(rtx_store::StoreError),
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::InvalidSchema { detail } => write!(f, "invalid transducer schema: {detail}"),
            CoreError::NotSpocus { detail } => write!(f, "not a Spocus transducer: {detail}"),
            CoreError::SchemaMismatch { detail } => write!(f, "schema mismatch: {detail}"),
            CoreError::Parse { detail } => write!(f, "transducer parse error: {detail}"),
            CoreError::Runtime { detail } => write!(f, "runtime error: {detail}"),
            CoreError::StepRejected {
                step,
                constraint,
                detail,
            } => write!(
                f,
                "step {step} rejected by input control: constraint `{constraint}` violated ({detail})"
            ),
            CoreError::SessionQuarantined { session, detail } => {
                write!(f, "session `{session}` is quarantined: {detail}")
            }
            CoreError::Datalog(e) => write!(f, "datalog error: {e}"),
            CoreError::Relational(e) => write!(f, "relational error: {e}"),
            CoreError::Store(e) => write!(f, "store error: {e}"),
        }
    }
}

impl std::error::Error for CoreError {}

impl From<rtx_datalog::DatalogError> for CoreError {
    fn from(e: rtx_datalog::DatalogError) -> Self {
        CoreError::Datalog(e)
    }
}

impl From<rtx_relational::RelationalError> for CoreError {
    fn from(e: rtx_relational::RelationalError) -> Self {
        CoreError::Relational(e)
    }
}

impl From<rtx_store::StoreError> for CoreError {
    fn from(e: rtx_store::StoreError) -> Self {
        CoreError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = CoreError::NotSpocus {
            detail: "projection in state rule".into(),
        };
        assert!(e.to_string().contains("Spocus"));
        let e: CoreError =
            rtx_relational::RelationalError::UnknownRelation { name: "r".into() }.into();
        assert!(matches!(e, CoreError::Relational(_)));
        let e: CoreError = rtx_datalog::DatalogError::Parse {
            message: "x".into(),
            fragment: "y".into(),
        }
        .into();
        assert!(matches!(e, CoreError::Datalog(_)));
        assert!(CoreError::Parse {
            detail: "bad".into()
        }
        .to_string()
        .contains("bad"));
        assert!(CoreError::InvalidSchema { detail: "d".into() }
            .to_string()
            .contains("schema"));
        assert!(CoreError::SchemaMismatch { detail: "m".into() }
            .to_string()
            .contains("mismatch"));
    }
}
