//! Per-session demand: which slice of the output a session actually reads.
//!
//! A [`Session`](crate::Session) of the resident runtime usually probes its
//! transducer's output relations at the keys of one customer interaction —
//! the products of this step's `order`, one fixed customer id — not across
//! the whole shared catalog.  A [`SessionDemand`] states that footprint as a
//! set of [`SessionGoal`]s, one per demanded output relation:
//!
//! * a binding **pattern** over the relation's columns (`"bf"` = first
//!   column bound), the [`Adornment`] of the magic-set rewrite;
//! * optional **constants** for the bound columns known for the whole
//!   session (a customer id, a session key);
//! * optional **input projections**: per step, the bound values are the
//!   projection of one of the step's input relations, so demand follows the
//!   session's own activity with no caller bookkeeping.
//!
//! [`Runtime::open_session_with_demand`](crate::Runtime::open_session_with_demand)
//! compiles the demand into an internal plan: under
//! [`DemandPolicy::Demand`] the output program is rewritten through
//! [`magic_rewrite`] and each step evaluates the rewritten program with the
//! session's magic seed facts as volatile per-step state (never stamped into
//! the shared database); under [`DemandPolicy::Full`] the original program
//! evaluates unrewritten and the output is filtered to the same footprint.
//! Both modes produce **identical** step outputs — the policy is purely a
//! performance knob, like [`Parallelism`](rtx_datalog::Parallelism).

use crate::{CoreError, SpocusTransducer};
use rtx_datalog::{
    magic_rewrite, Adornment, CompiledProgram, DatalogError, DemandGoal, DemandPolicy,
    DemandProgram,
};
use rtx_relational::{Instance, RelationName, Schema, Tuple};
use std::collections::BTreeSet;
use std::fmt;

/// One demanded output relation of a session: its binding pattern plus where
/// the bound values come from (session constants, per-step input
/// projections, or both).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SessionGoal {
    relation: RelationName,
    adornment: Adornment,
    constants: Vec<Tuple>,
    projections: Vec<(RelationName, Vec<usize>)>,
    specialize: bool,
}

impl SessionGoal {
    /// A goal over `relation` under a `b`/`f` binding pattern (see
    /// [`Adornment::parse`]).  An all-free pattern demands the whole
    /// relation; a pattern with bound columns needs at least one seed source
    /// ([`SessionGoal::with_constants`] or [`SessionGoal::from_input`]).
    pub fn new(relation: impl Into<RelationName>, pattern: &str) -> Result<SessionGoal, CoreError> {
        Ok(SessionGoal {
            relation: relation.into(),
            adornment: Adornment::parse(pattern).map_err(CoreError::Datalog)?,
            constants: Vec::new(),
            projections: Vec::new(),
            specialize: false,
        })
    }

    /// Adds session-constant seed tuples over the bound columns (ascending
    /// column order), demanded at every step of the session.
    pub fn with_constants<I>(mut self, constants: I) -> SessionGoal
    where
        I: IntoIterator<Item = Tuple>,
    {
        self.constants.extend(constants);
        self
    }

    /// Adds a per-step seed source: at each step, every tuple of the named
    /// input relation is projected onto `columns` (one column per bound goal
    /// column, in ascending bound-column order) and demanded for that step.
    pub fn from_input<I>(mut self, relation: impl Into<RelationName>, columns: I) -> SessionGoal
    where
        I: IntoIterator<Item = usize>,
    {
        self.projections
            .push((relation.into(), columns.into_iter().collect()));
        self
    }

    /// Requests constant specialization: the goal's rules are partially
    /// evaluated against the constants ([`DemandGoal::constants`]) instead of
    /// guarded by a magic predicate.  Requires at least one constant and no
    /// input projections (specialization happens once, at session open).
    pub fn specialized(mut self) -> SessionGoal {
        self.specialize = true;
        self
    }

    /// The demanded output relation.
    pub fn relation(&self) -> &RelationName {
        &self.relation
    }

    /// The binding pattern.
    pub fn adornment(&self) -> &Adornment {
        &self.adornment
    }

    /// The session-constant seeds.
    pub fn constants(&self) -> &[Tuple] {
        &self.constants
    }

    /// The per-step input projections.
    pub fn projections(&self) -> &[(RelationName, Vec<usize>)] {
        &self.projections
    }

    /// True if the goal requests constant specialization.
    pub fn is_specialized(&self) -> bool {
        self.specialize
    }

    fn invalid(&self, why: impl fmt::Display) -> CoreError {
        CoreError::Datalog(DatalogError::DemandUnsupported {
            reason: format!(
                "session goal {}@{}: {why}",
                self.relation.as_str(),
                self.adornment
            ),
        })
    }

    /// Validates the goal against the transducer's schemas.
    fn validate(&self, transducer: &SpocusTransducer) -> Result<(), CoreError> {
        let schema = transducer.schema();
        let Some(arity) = schema.output().arity_of(self.relation.clone()) else {
            return Err(self.invalid("not an output relation of the transducer"));
        };
        if arity != self.adornment.arity() {
            return Err(self.invalid(format!(
                "adornment arity {} does not match relation arity {arity}",
                self.adornment.arity()
            )));
        }
        let bound = self.adornment.bound_count();
        if bound == 0 && !(self.constants.is_empty() && self.projections.is_empty()) {
            return Err(self.invalid("an all-free goal takes no seeds"));
        }
        if self.specialize {
            if self.constants.is_empty() {
                return Err(self.invalid("specialization requires at least one constant seed"));
            }
            if !self.projections.is_empty() {
                return Err(
                    self.invalid("specialization is incompatible with per-step input projections")
                );
            }
        }
        for tuple in &self.constants {
            if tuple.arity() != bound {
                return Err(self.invalid(format!(
                    "constant seed arity {} does not match the {bound} bound column(s)",
                    tuple.arity()
                )));
            }
        }
        for (input, columns) in &self.projections {
            let Some(input_arity) = schema.input().arity_of(input.clone()) else {
                return Err(self.invalid(format!("`{input}` is not an input relation")));
            };
            if columns.len() != bound {
                return Err(self.invalid(format!(
                    "projection of `{input}` names {} column(s) for {bound} bound column(s)",
                    columns.len()
                )));
            }
            if let Some(&bad) = columns.iter().find(|&&c| c >= input_arity) {
                return Err(self.invalid(format!(
                    "projection column {bad} is out of range for `{input}` (arity {input_arity})"
                )));
            }
        }
        Ok(())
    }

    /// The [`DemandGoal`] driving the magic-set rewrite for this goal.
    fn demand_goal(&self) -> Result<DemandGoal, CoreError> {
        let goal = if self.specialize {
            DemandGoal::constants(
                self.relation.clone(),
                &self.adornment.to_string(),
                self.constants.iter().cloned(),
            )
        } else if self.adornment.has_bound() {
            DemandGoal::seeded(self.relation.clone(), &self.adornment.to_string())
                .map(|g| g.with_seeds(self.constants.iter().cloned()))
        } else {
            Ok(DemandGoal::free(
                self.relation.clone(),
                self.adornment.arity(),
            ))
        };
        goal.map_err(CoreError::Datalog)
    }
}

/// The demanded footprint of one session: a set of [`SessionGoal`]s over the
/// transducer's output relations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SessionDemand {
    goals: Vec<SessionGoal>,
}

impl SessionDemand {
    /// An empty demand (add goals with [`SessionDemand::goal`]).
    pub fn new() -> SessionDemand {
        SessionDemand::default()
    }

    /// Adds a goal.
    pub fn goal(mut self, goal: SessionGoal) -> SessionDemand {
        self.goals.push(goal);
        self
    }

    /// The goals.
    pub fn goals(&self) -> &[SessionGoal] {
        &self.goals
    }

    /// True if no goal was stated.
    pub fn is_empty(&self) -> bool {
        self.goals.is_empty()
    }
}

/// How a demand plan evaluates a step.
#[derive(Debug)]
enum PlanMode {
    /// Evaluate the magic-set-rewritten program, seeded per step, and map
    /// the adorned result back ([`DemandProgram::restrict_with`]).
    Rewritten {
        compiled: CompiledProgram,
        /// Schema of the merged per-step volatile instance: the transducer
        /// input relations plus the magic seed relations.
        volatile_schema: Schema,
    },
    /// Evaluate the original program in full and filter the output to the
    /// demanded footprint ([`DemandProgram::footprint_with`]) — the
    /// [`DemandPolicy::Full`] fallback, result-identical to `Rewritten`.
    Restricted { rewrite: DemandProgram },
}

/// A compiled [`SessionDemand`]: everything a session stepper needs to seed,
/// evaluate and restrict one step under the demand.  Built by
/// [`Runtime::open_session_with_demand`](crate::Runtime::open_session_with_demand).
#[derive(Debug)]
pub(crate) struct DemandPlan {
    spec: SessionDemand,
    policy: DemandPolicy,
    mode: PlanMode,
}

impl DemandPlan {
    /// Validates `spec` against the transducer and compiles it under
    /// `policy`.
    pub(crate) fn new(
        transducer: &SpocusTransducer,
        spec: SessionDemand,
        policy: DemandPolicy,
    ) -> Result<DemandPlan, CoreError> {
        if spec.is_empty() {
            return Err(CoreError::Datalog(DatalogError::DemandUnsupported {
                reason: "a session demand must state at least one goal".to_string(),
            }));
        }
        let mut goals = Vec::with_capacity(spec.goals().len());
        for goal in spec.goals() {
            goal.validate(transducer)?;
            goals.push(goal.demand_goal()?);
        }
        let rewrite =
            magic_rewrite(transducer.output_program(), &goals).map_err(CoreError::Datalog)?;
        let mode = match policy {
            DemandPolicy::Demand => {
                let volatile_schema = transducer
                    .schema()
                    .input()
                    .union(rewrite.magic_schema())
                    .map_err(CoreError::Relational)?;
                let compiled =
                    CompiledProgram::compile_demand_program(rewrite).map_err(CoreError::Datalog)?;
                PlanMode::Rewritten {
                    compiled,
                    volatile_schema,
                }
            }
            DemandPolicy::Full => PlanMode::Restricted { rewrite },
        };
        Ok(DemandPlan { spec, policy, mode })
    }

    /// The policy the plan was compiled under.
    pub(crate) fn policy(&self) -> DemandPolicy {
        self.policy
    }

    /// The rewritten, compiled program — `None` under the
    /// [`DemandPolicy::Full`] fallback (the stepper evaluates the original
    /// program).
    pub(crate) fn compiled(&self) -> Option<&CompiledProgram> {
        match &self.mode {
            PlanMode::Rewritten { compiled, .. } => Some(compiled),
            PlanMode::Restricted { .. } => None,
        }
    }

    /// The demand rewrite (seed names, restriction, footprint).
    pub(crate) fn rewrite(&self) -> &DemandProgram {
        match &self.mode {
            PlanMode::Rewritten { compiled, .. } => compiled
                .demand()
                .expect("a demand-compiled program carries its rewrite"),
            PlanMode::Restricted { rewrite } => rewrite,
        }
    }

    /// The magic seed relation names (empty under the fallback: nothing is
    /// seeded, the filter works from the same per-step seed instance).
    pub(crate) fn magic_names(&self) -> BTreeSet<RelationName> {
        self.rewrite().magic_schema().names().cloned().collect()
    }

    /// Builds the step's magic seed instance: the static session constants
    /// plus, for every input projection, the projection of this step's input
    /// tuples onto the goal's bound columns.
    pub(crate) fn seed_instance(&self, input: &Instance) -> Result<Instance, CoreError> {
        let rewrite = self.rewrite();
        let mut seeds = rewrite.seed_instance();
        for goal in self.spec.goals() {
            let Some(seed_rel) = rewrite.seed_relation(goal.relation(), goal.adornment()) else {
                continue;
            };
            for (input_rel, columns) in goal.projections() {
                let Some(relation) = input.get(input_rel) else {
                    continue;
                };
                for tuple in relation.iter() {
                    let key = tuple
                        .project(columns)
                        .expect("projection columns were validated at session open");
                    seeds
                        .insert(seed_rel.clone(), key)
                        .map_err(CoreError::Relational)?;
                }
            }
        }
        Ok(seeds)
    }

    /// Merges the step input and its magic seeds into the rewritten
    /// program's volatile instance (only meaningful in `Rewritten` mode).
    pub(crate) fn volatile_instance(
        &self,
        input: &Instance,
        seeds: &Instance,
    ) -> Result<Instance, CoreError> {
        let PlanMode::Rewritten {
            volatile_schema, ..
        } = &self.mode
        else {
            unreachable!("volatile merging is only used on the rewritten path");
        };
        let mut merged = Instance::empty(volatile_schema);
        merged.absorb(input).map_err(CoreError::Relational)?;
        merged.absorb(seeds).map_err(CoreError::Relational)?;
        Ok(merged)
    }
}
