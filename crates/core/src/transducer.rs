//! The abstract relational-transducer machine and its run semantics.

use crate::{CoreError, Run, TransducerSchema};
use rtx_relational::{Instance, InstanceSequence};

/// A relational transducer (§2.2): a transducer schema together with a state
/// function `σ` and an output function `ω`.
///
/// Both functions see the current input `Iᵢ`, the previous state `Sᵢ₋₁`
/// (empty at the first step) and the database `D`, and produce the next state
/// and the current output respectively.  The trait is implemented by
/// [`crate::SpocusTransducer`] and by the gadget transducers of the
/// verification crate (which need richer state functions than Spocus allows).
pub trait RelationalTransducer {
    /// The transducer schema.
    fn schema(&self) -> &TransducerSchema;

    /// The state function `σ(Iᵢ, Sᵢ₋₁, D)`.
    fn state_step(
        &self,
        input: &Instance,
        previous_state: &Instance,
        db: &Instance,
    ) -> Result<Instance, CoreError>;

    /// The output function `ω(Iᵢ, Sᵢ₋₁, D)`.
    fn output_step(
        &self,
        input: &Instance,
        previous_state: &Instance,
        db: &Instance,
    ) -> Result<Instance, CoreError>;

    /// Runs the transducer on an input sequence and a database, producing the
    /// state, output and log sequences of §2.2:
    ///
    /// * `Sᵢ = σ(Iᵢ, Sᵢ₋₁, D)` with `S₀` empty,
    /// * `Oᵢ = ω(Iᵢ, Sᵢ₋₁, D)`,
    /// * `Lᵢ = (Iᵢ ∪ Oᵢ)|log`.
    fn run(&self, db: &Instance, inputs: &InstanceSequence) -> Result<Run, CoreError> {
        drive_run(self.schema(), db, inputs, |input, previous_state| {
            let output = self.output_step(input, previous_state, db)?;
            let next_state = self.state_step(input, previous_state, db)?;
            Ok((output, next_state))
        })
    }
}

/// Validates the run preconditions and drives the step loop of §2.2.
///
/// `step` maps `(Iᵢ, Sᵢ₋₁)` to `(Oᵢ, Sᵢ)`.  Shared by the trait's default
/// [`RelationalTransducer::run`] and by implementations that override `run`
/// with a faster per-step evaluation (e.g. the Spocus transducer, which
/// pre-indexes the database for the whole run) so the validation and run
/// semantics exist in exactly one place.
pub(crate) fn drive_run<F>(
    schema: &TransducerSchema,
    db: &Instance,
    inputs: &InstanceSequence,
    mut step: F,
) -> Result<Run, CoreError>
where
    F: FnMut(&Instance, &Instance) -> Result<(Instance, Instance), CoreError>,
{
    if inputs.schema() != schema.input() {
        return Err(CoreError::SchemaMismatch {
            detail: format!(
                "input sequence schema {} does not match the transducer input schema {}",
                inputs.schema(),
                schema.input()
            ),
        });
    }
    let db_schema = db.schema();
    if &db_schema != schema.db() {
        return Err(CoreError::SchemaMismatch {
            detail: format!(
                "database schema {} does not match the transducer db schema {}",
                db_schema,
                schema.db()
            ),
        });
    }

    let mut states = InstanceSequence::empty(schema.state().clone());
    let mut outputs = InstanceSequence::empty(schema.output().clone());
    let mut previous_state = Instance::empty(schema.state());

    for input in inputs.iter() {
        let (output, next_state) = step(input, &previous_state)?;
        outputs.push(output)?;
        states.push(next_state.clone())?;
        previous_state = next_state;
    }
    Run::new(schema.clone(), db.clone(), inputs.clone(), states, outputs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::{RelationName, Schema, Tuple};

    /// A tiny hand-rolled transducer (not Spocus): echoes its input relation
    /// `in-msg` to the output relation `echo` and remembers nothing.
    struct Echo {
        schema: TransducerSchema,
    }

    impl Echo {
        fn new() -> Self {
            let input = Schema::from_pairs([("in-msg", 1)]).unwrap();
            let output = Schema::from_pairs([("echo", 1)]).unwrap();
            let schema = TransducerSchema::new(
                input,
                Schema::empty(),
                output,
                Schema::empty(),
                [RelationName::new("echo")],
            )
            .unwrap();
            Echo { schema }
        }
    }

    impl RelationalTransducer for Echo {
        fn schema(&self) -> &TransducerSchema {
            &self.schema
        }

        fn state_step(
            &self,
            _input: &Instance,
            previous_state: &Instance,
            _db: &Instance,
        ) -> Result<Instance, CoreError> {
            Ok(previous_state.clone())
        }

        fn output_step(
            &self,
            input: &Instance,
            _previous_state: &Instance,
            _db: &Instance,
        ) -> Result<Instance, CoreError> {
            let mut out = Instance::empty(self.schema.output());
            for tuple in input.relation("in-msg").into_iter().flat_map(|r| r.iter()) {
                out.insert("echo", tuple.clone())?;
            }
            Ok(out)
        }
    }

    fn input_step(values: &[&str]) -> Instance {
        let schema = Schema::from_pairs([("in-msg", 1)]).unwrap();
        let mut inst = Instance::empty(&schema);
        for v in values {
            inst.insert("in-msg", Tuple::from_iter([*v])).unwrap();
        }
        inst
    }

    #[test]
    fn run_produces_aligned_sequences() {
        let echo = Echo::new();
        let inputs = InstanceSequence::new(
            Schema::from_pairs([("in-msg", 1)]).unwrap(),
            vec![
                input_step(&["hello"]),
                input_step(&[]),
                input_step(&["bye"]),
            ],
        )
        .unwrap();
        let db = Instance::empty(&Schema::empty());
        let run = echo.run(&db, &inputs).unwrap();
        assert_eq!(run.len(), 3);
        assert!(run
            .outputs()
            .get(0)
            .unwrap()
            .holds("echo", &Tuple::from_iter(["hello"])));
        assert!(run.outputs().get(1).unwrap().is_empty());
        assert!(run
            .outputs()
            .get(2)
            .unwrap()
            .holds("echo", &Tuple::from_iter(["bye"])));
        // the log only contains `echo`
        assert_eq!(run.log().schema().len(), 1);
        assert!(run
            .log()
            .get(0)
            .unwrap()
            .holds("echo", &Tuple::from_iter(["hello"])));
    }

    #[test]
    fn run_rejects_mismatched_schemas() {
        let echo = Echo::new();
        let wrong_inputs = InstanceSequence::empty(Schema::from_pairs([("other", 1)]).unwrap());
        let db = Instance::empty(&Schema::empty());
        assert!(matches!(
            echo.run(&db, &wrong_inputs),
            Err(CoreError::SchemaMismatch { .. })
        ));

        let inputs = InstanceSequence::empty(Schema::from_pairs([("in-msg", 1)]).unwrap());
        let wrong_db = Instance::empty(&Schema::from_pairs([("junk", 1)]).unwrap());
        assert!(matches!(
            echo.run(&wrong_db, &inputs),
            Err(CoreError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn empty_input_sequence_gives_empty_run() {
        let echo = Echo::new();
        let inputs = InstanceSequence::empty(Schema::from_pairs([("in-msg", 1)]).unwrap());
        let db = Instance::empty(&Schema::empty());
        let run = echo.run(&db, &inputs).unwrap();
        assert_eq!(run.len(), 0);
        assert!(run.log().is_empty());
    }
}
