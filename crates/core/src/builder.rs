//! A programmatic builder for Spocus transducers.

use crate::{CoreError, SpocusTransducer, TransducerSchema};
use rtx_datalog::{parse_rule, Program, Rule};
use rtx_relational::{RelationName, Schema};
use std::collections::BTreeSet;

/// A fluent builder for [`SpocusTransducer`]s.
///
/// The state schema is derived automatically (`past-R` for every input `R`),
/// matching the Spocus definition; only inputs, outputs, database relations,
/// the log and the output rules need to be declared.
///
/// ```
/// use rtx_core::{SpocusBuilder, RelationalTransducer};
///
/// let transducer = SpocusBuilder::new("mini")
///     .input("order", 1)
///     .database("price", 2)
///     .output("sendbill", 2)
///     .log(["sendbill"])
///     .output_rule("sendbill(X,Y) :- order(X), price(X,Y)")
///     .build()
///     .unwrap();
/// assert_eq!(transducer.schema().input().len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct SpocusBuilder {
    name: String,
    inputs: Vec<(String, usize)>,
    outputs: Vec<(String, usize)>,
    db: Vec<(String, usize)>,
    log: BTreeSet<String>,
    full_log: bool,
    rules: Vec<Rule>,
    errors: Vec<String>,
}

impl SpocusBuilder {
    /// Starts a builder for a transducer with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        SpocusBuilder {
            name: name.into(),
            ..SpocusBuilder::default()
        }
    }

    /// Declares an input relation.
    pub fn input(mut self, name: impl Into<String>, arity: usize) -> Self {
        self.inputs.push((name.into(), arity));
        self
    }

    /// Declares an output relation.
    pub fn output(mut self, name: impl Into<String>, arity: usize) -> Self {
        self.outputs.push((name.into(), arity));
        self
    }

    /// Declares a database relation.
    pub fn database(mut self, name: impl Into<String>, arity: usize) -> Self {
        self.db.push((name.into(), arity));
        self
    }

    /// Declares log relations (may be called repeatedly).
    pub fn log<I, S>(mut self, names: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.log.extend(names.into_iter().map(Into::into));
        self
    }

    /// Logs every input and output relation.
    pub fn full_log(mut self) -> Self {
        self.full_log = true;
        self
    }

    /// Adds an output rule in the paper's concrete syntax.
    pub fn output_rule(mut self, text: &str) -> Self {
        match parse_rule(text) {
            Ok(rule) => self.rules.push(rule),
            Err(e) => self.errors.push(format!("{text}: {e}")),
        }
        self
    }

    /// Adds an output rule given as an AST.
    pub fn output_rule_ast(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Builds and validates the transducer.
    pub fn build(self) -> Result<SpocusTransducer, CoreError> {
        if let Some(first) = self.errors.first() {
            return Err(CoreError::Parse {
                detail: first.clone(),
            });
        }
        let input = Schema::from_pairs(self.inputs.clone())?;
        let output = Schema::from_pairs(self.outputs.clone())?;
        let db = Schema::from_pairs(self.db.clone())?;
        let state = TransducerSchema::cumulative_state_schema(&input);
        let log: Vec<RelationName> = if self.full_log {
            input.names().chain(output.names()).cloned().collect()
        } else {
            self.log.iter().map(RelationName::new).collect()
        };
        let schema = TransducerSchema::new(input, state, output, db, log)?;
        SpocusTransducer::new(self.name, schema, Program::new(self.rules))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_a_valid_transducer() {
        let t = SpocusBuilder::new("short")
            .input("order", 1)
            .input("pay", 2)
            .database("price", 2)
            .database("available", 1)
            .output("sendbill", 2)
            .output("deliver", 1)
            .log(["sendbill", "pay", "deliver"])
            .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
            .output_rule("deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y)")
            .build()
            .unwrap();
        assert_eq!(t.name(), "short");
        assert!(t.schema().state().contains("past-pay"));
        assert_eq!(t.schema().log().len(), 3);
        assert!(!t.schema().is_full_log());
    }

    #[test]
    fn full_log_logs_everything() {
        let t = SpocusBuilder::new("t")
            .input("a", 0)
            .output("b", 0)
            .full_log()
            .output_rule("b :- a")
            .build()
            .unwrap();
        assert!(t.schema().is_full_log());
    }

    #[test]
    fn parse_errors_surface_at_build_time() {
        let err = SpocusBuilder::new("broken")
            .input("a", 0)
            .output("b", 0)
            .output_rule("b :- a(")
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::Parse { .. }));
    }

    #[test]
    fn spocus_violations_surface_at_build_time() {
        let err = SpocusBuilder::new("broken")
            .input("a", 0)
            .output("b", 0)
            .output_rule("c :- a")
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::NotSpocus { .. }));
    }

    #[test]
    fn ast_rules_are_accepted() {
        let rule = parse_rule("b :- a").unwrap();
        let t = SpocusBuilder::new("t")
            .input("a", 0)
            .output("b", 0)
            .log(["b"])
            .output_rule_ast(rule)
            .build()
            .unwrap();
        assert_eq!(t.output_program().len(), 1);
    }
}
