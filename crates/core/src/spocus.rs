//! Spocus transducers (§3.1).

use crate::{CoreError, RelationalTransducer, Run, TransducerSchema};
use rtx_datalog::safety::{check_program_safety, check_semipositive};
use rtx_datalog::{BodyLiteral, CompiledProgram, Program};
use rtx_relational::{Instance, InstanceSequence, RelationName};
use std::collections::BTreeSet;
use std::fmt;

/// A Spocus transducer: **S**emi-**p**ositive **o**utputs, **cu**mulative
/// **s**tate (§3.1, Definition).
///
/// Construction validates every Spocus restriction:
///
/// 1. the state relations are exactly `{ past-R | R ∈ in }` with matching
///    arities, and the state function is fixed to cumulation
///    (`past-R := past-R ∪ R`);
/// 2. the output program is a set of rules whose heads are output relations
///    and whose body literals are (possibly negated) atoms over
///    `in ∪ state ∪ db` or inequalities;
/// 3. every rule is safe (each variable occurs in a positive body literal);
/// 4. the program is "flat" — no output relation appears in a body — which
///    makes it trivially non-recursive and semipositive.
///
/// Construction also **compiles** the output program once
/// ([`rtx_datalog::CompiledProgram`]): safety checking, dependency analysis
/// and stratification never run again, and every step joins through hash
/// indexes.  [`RelationalTransducer::run`] additionally makes the database
/// resident for the run and evaluates steps incrementally against the
/// cumulative-state deltas, so the per-step cost is driven by what changed,
/// not by the catalog or accumulated state size; a resident service shares
/// one prepared catalog across many runs with
/// [`SpocusTransducer::run_resident`] or the [`crate::runtime`] session
/// layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpocusTransducer {
    name: String,
    schema: TransducerSchema,
    output_program: Program,
    compiled: CompiledProgram,
}

impl SpocusTransducer {
    /// Creates a Spocus transducer, validating the restrictions above.
    pub fn new(
        name: impl Into<String>,
        schema: TransducerSchema,
        output_program: Program,
    ) -> Result<Self, CoreError> {
        // (1) cumulative state shape
        if !schema.has_cumulative_state() {
            return Err(CoreError::NotSpocus {
                detail: format!(
                    "state relations must be exactly {{past-R | R ∈ in}}; got {}",
                    schema.state()
                ),
            });
        }
        // (2) heads are outputs, bodies over in ∪ state ∪ db
        let body_schema = schema.body_schema();
        for rule in output_program.rules() {
            if !schema.output().contains(rule.head.relation.clone()) {
                return Err(CoreError::NotSpocus {
                    detail: format!(
                        "rule head `{}` is not an output relation",
                        rule.head.relation
                    ),
                });
            }
            if schema.output().arity_of(rule.head.relation.clone()) != Some(rule.head.arity()) {
                return Err(CoreError::NotSpocus {
                    detail: format!(
                        "rule head `{}` has arity {} but the schema declares {:?}",
                        rule.head.relation,
                        rule.head.arity(),
                        schema.output().arity_of(rule.head.relation.clone())
                    ),
                });
            }
            for lit in &rule.body {
                if let Some(rel) = lit.relation() {
                    if !body_schema.contains(rel.clone()) {
                        return Err(CoreError::NotSpocus {
                            detail: format!(
                                "body literal over `{rel}` is not an input, state or database relation"
                            ),
                        });
                    }
                    let expected = body_schema.arity_of(rel.clone());
                    let actual = match lit {
                        BodyLiteral::Positive(a) | BodyLiteral::Negative(a) => a.arity(),
                        BodyLiteral::NotEqual(..) => continue,
                    };
                    if expected != Some(actual) {
                        return Err(CoreError::NotSpocus {
                            detail: format!(
                                "body literal over `{rel}` has arity {actual} but the schema declares {expected:?}"
                            ),
                        });
                    }
                }
            }
        }
        // (3) safety
        check_program_safety(&output_program).map_err(|e| CoreError::NotSpocus {
            detail: e.to_string(),
        })?;
        // (4) semipositivity / flatness: negation (and indeed any body
        // reference) only over base relations; by (2) bodies are already over
        // in ∪ state ∪ db, so this is implied, but we keep the explicit check
        // for defence in depth.
        let base: BTreeSet<RelationName> = body_schema.names().cloned().collect();
        check_semipositive(&output_program, &base).map_err(|e| CoreError::NotSpocus {
            detail: e.to_string(),
        })?;

        // Compile once: every later step evaluates with zero re-analysis.
        let compiled =
            CompiledProgram::compile_nonrecursive(&output_program).map_err(CoreError::Datalog)?;

        Ok(SpocusTransducer {
            name: name.into(),
            schema,
            output_program,
            compiled,
        })
    }

    /// The transducer's name (used in diagnostics and displays).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The transducer schema (also available through the
    /// [`RelationalTransducer`] trait; provided inherently so callers do not
    /// need the trait in scope).
    pub fn schema(&self) -> &TransducerSchema {
        &self.schema
    }

    /// The output program.
    pub fn output_program(&self) -> &Program {
        &self.output_program
    }

    /// The rules defining one output relation.
    pub fn rules_for(&self, relation: &RelationName) -> Vec<&rtx_datalog::Rule> {
        self.output_program.rules_for(relation)
    }

    /// The compiled form of the output program (compiled once at
    /// construction).
    pub fn compiled_output_program(&self) -> &CompiledProgram {
        &self.compiled
    }

    /// Evaluates the compiled output program against the step sources
    /// (`input ∪ previous_state ∪ db`, passed separately — the schemas are
    /// disjoint, so no union needs to be materialised) and fills out the full
    /// output schema (the program may not mention every output relation).
    fn evaluate_output(&self, sources: &[&Instance]) -> Result<Instance, CoreError> {
        let (derived, _) = self.compiled.evaluate_with_view(sources, None)?;
        let mut output = Instance::empty(self.schema.output());
        // Head relations are validated output relations with matching
        // arities, and absorbing into fresh empty relations shares the
        // derived tuple sets instead of copying them.
        output.absorb(&derived)?;
        Ok(output)
    }

    /// Runs the transducer against a shared resident database: the catalog's
    /// retained indexes are reused (and refreshed per relation if stale)
    /// instead of rebuilt, and steps evaluate incrementally against the
    /// cumulative-state deltas.
    ///
    /// The run is evaluated against one consistent snapshot — the resident
    /// database's contents at the start of the run (concurrent mutations are
    /// observed by *later* runs, not mid-run) — and is identical to
    /// [`RelationalTransducer::run`] over that snapshot.  The resident
    /// database must carry every relation of the transducer's `db` schema.
    pub fn run_resident(
        &self,
        db: &rtx_datalog::ResidentDb,
        inputs: &InstanceSequence,
    ) -> Result<Run, CoreError> {
        self.run_incremental(db, None, inputs, rtx_datalog::Parallelism::default())
    }

    /// [`SpocusTransducer::run_resident`] under an explicit
    /// [`Parallelism`](rtx_datalog::Parallelism) policy: passes whose
    /// outer-candidate counts clear the policy's threshold fan out to the
    /// worker pool, with results bit-identical to the sequential run.
    pub fn run_resident_with(
        &self,
        db: &rtx_datalog::ResidentDb,
        inputs: &InstanceSequence,
        parallelism: rtx_datalog::Parallelism,
    ) -> Result<Run, CoreError> {
        self.run_incremental(db, None, inputs, parallelism)
    }

    /// The shared incremental run loop behind [`RelationalTransducer::run`]
    /// and [`SpocusTransducer::run_resident`].  The recorded database (if
    /// not supplied) is taken from the stepper's own pinned view, so the
    /// produced [`Run`] is always consistent with what the steps evaluated
    /// against.
    fn run_incremental(
        &self,
        db: &rtx_datalog::ResidentDb,
        recorded: Option<Instance>,
        inputs: &InstanceSequence,
        parallelism: rtx_datalog::Parallelism,
    ) -> Result<Run, CoreError> {
        let mut stepper = crate::runtime::IncrementalStepper::pinned(self, db, parallelism)?;
        let recorded = recorded.unwrap_or_else(|| {
            let db_names: std::collections::BTreeSet<rtx_relational::RelationName> =
                self.schema.db().names().cloned().collect();
            stepper.view_instance().restrict_to_set(&db_names)
        });
        crate::transducer::drive_run(&self.schema, &recorded, inputs, |input, _previous_state| {
            stepper.step(self, db, input)
        })
    }
}

impl RelationalTransducer for SpocusTransducer {
    fn schema(&self) -> &TransducerSchema {
        &self.schema
    }

    /// Cumulative state: `past-R := past-R ∪ Iᵢ(R)` for every input `R`.
    ///
    /// Cumulation is a fixed set union computed directly on the
    /// copy-on-write tuple sets — no datalog evaluation, and no per-tuple
    /// cloning when the previous `past-R` is empty (the union shares the
    /// input's tuple set).
    fn state_step(
        &self,
        input: &Instance,
        previous_state: &Instance,
        _db: &Instance,
    ) -> Result<Instance, CoreError> {
        let mut next = previous_state.clone();
        for (name, relation) in input.iter() {
            let past = name.past();
            if self.schema.state().contains(past.clone()) {
                next.absorb_relation(past, relation)?;
            }
        }
        Ok(next)
    }

    /// Output: evaluate the compiled semipositive non-recursive program
    /// against `input ∪ previous_state ∪ db`.  No safety checking, dependency
    /// analysis or stratification happens here — all of it ran once at
    /// construction.
    fn output_step(
        &self,
        input: &Instance,
        previous_state: &Instance,
        db: &Instance,
    ) -> Result<Instance, CoreError> {
        self.evaluate_output(&[input, previous_state, db])
    }

    /// Runs the transducer with the database made resident for the whole
    /// run: each step probes the same catalog indexes instead of rebuilding
    /// them, and steps evaluate incrementally against the cumulative-state
    /// deltas, so the per-step cost is driven by the step's *changes*, not
    /// the database or accumulated state size.  For a database shared across
    /// many runs, use [`SpocusTransducer::run_resident`].
    fn run(&self, db: &Instance, inputs: &InstanceSequence) -> Result<Run, CoreError> {
        let resident = self.compiled.prepare(db);
        self.run_incremental(
            &resident,
            Some(db.clone()),
            inputs,
            rtx_datalog::Parallelism::default(),
        )
    }
}

impl fmt::Display for SpocusTransducer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "transducer {}", self.name)?;
        writeln!(f, "{}", self.schema)?;
        writeln!(f, "output rules")?;
        write!(f, "{}", self.output_program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_datalog::parse_program;
    use rtx_relational::{InstanceSequence, Schema, Tuple, Value};

    fn short_schema() -> TransducerSchema {
        let input = Schema::from_pairs([("order", 1), ("pay", 2)]).unwrap();
        TransducerSchema::new(
            input.clone(),
            TransducerSchema::cumulative_state_schema(&input),
            Schema::from_pairs([("sendbill", 2), ("deliver", 1)]).unwrap(),
            Schema::from_pairs([("price", 2), ("available", 1)]).unwrap(),
            ["sendbill", "pay", "deliver"].map(RelationName::new),
        )
        .unwrap()
    }

    fn short_program() -> Program {
        parse_program(
            "sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y).\n\
             deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y).",
        )
        .unwrap()
    }

    fn short() -> SpocusTransducer {
        SpocusTransducer::new("short", short_schema(), short_program()).unwrap()
    }

    fn db() -> Instance {
        let schema = Schema::from_pairs([("price", 2), ("available", 1)]).unwrap();
        let mut db = Instance::empty(&schema);
        for (p, amt) in [("time", 855), ("newsweek", 845), ("lemonde", 8350)] {
            db.insert("price", Tuple::new(vec![Value::str(p), Value::int(amt)]))
                .unwrap();
            db.insert("available", Tuple::from_iter([p])).unwrap();
        }
        db
    }

    fn input_step(orders: &[&str], pays: &[(&str, i64)]) -> Instance {
        let schema = Schema::from_pairs([("order", 1), ("pay", 2)]).unwrap();
        let mut inst = Instance::empty(&schema);
        for o in orders {
            inst.insert("order", Tuple::from_iter([*o])).unwrap();
        }
        for (p, amt) in pays {
            inst.insert("pay", Tuple::new(vec![Value::str(*p), Value::int(*amt)]))
                .unwrap();
        }
        inst
    }

    #[test]
    fn short_run_matches_paper_semantics() {
        let t = short();
        let inputs = InstanceSequence::new(
            Schema::from_pairs([("order", 1), ("pay", 2)]).unwrap(),
            vec![
                input_step(&["time", "newsweek"], &[]),
                input_step(&[], &[("time", 855)]),
                input_step(&[], &[("time", 855)]),
            ],
        )
        .unwrap();
        let run = t.run(&db(), &inputs).unwrap();

        // step 1: bills for both ordered products, no delivery
        let o1 = run.outputs().get(0).unwrap();
        assert!(o1.holds(
            "sendbill",
            &Tuple::new(vec![Value::str("time"), Value::int(855)])
        ));
        assert!(o1.holds(
            "sendbill",
            &Tuple::new(vec![Value::str("newsweek"), Value::int(845)])
        ));
        assert!(o1.relation("deliver").unwrap().is_empty());

        // step 2: payment for time triggers delivery of time
        let o2 = run.outputs().get(1).unwrap();
        assert!(o2.holds("deliver", &Tuple::from_iter(["time"])));
        assert!(o2.relation("sendbill").unwrap().is_empty());

        // step 3: paying again does nothing (past-pay blocks re-delivery)
        let o3 = run.outputs().get(2).unwrap();
        assert!(o3.relation("deliver").unwrap().is_empty());

        // state cumulates: after step 3, past-pay holds (time, 855)
        let s3 = run.states().get(2).unwrap();
        assert!(s3.holds(
            "past-pay",
            &Tuple::new(vec![Value::str("time"), Value::int(855)])
        ));
        assert!(s3.holds("past-order", &Tuple::from_iter(["newsweek"])));
    }

    #[test]
    fn delivery_requires_prior_order() {
        let t = short();
        let inputs = InstanceSequence::new(
            Schema::from_pairs([("order", 1), ("pay", 2)]).unwrap(),
            vec![input_step(&[], &[("time", 855)])],
        )
        .unwrap();
        let run = t.run(&db(), &inputs).unwrap();
        // paying without a prior order: no delivery (past-order empty)
        assert!(run
            .outputs()
            .get(0)
            .unwrap()
            .relation("deliver")
            .unwrap()
            .is_empty());
    }

    #[test]
    fn non_cumulative_state_rejected() {
        let input = Schema::from_pairs([("order", 1)]).unwrap();
        let schema = TransducerSchema::new(
            input,
            Schema::from_pairs([("history", 1)]).unwrap(),
            Schema::from_pairs([("deliver", 1)]).unwrap(),
            Schema::empty(),
            [RelationName::new("deliver")],
        )
        .unwrap();
        let program = parse_program("deliver(X) :- order(X).").unwrap();
        assert!(matches!(
            SpocusTransducer::new("bad", schema, program),
            Err(CoreError::NotSpocus { .. })
        ));
    }

    #[test]
    fn head_must_be_output_relation() {
        let program = parse_program("price(X,Y) :- order(X), pay(X,Y).").unwrap();
        assert!(matches!(
            SpocusTransducer::new("bad", short_schema(), program),
            Err(CoreError::NotSpocus { .. })
        ));
    }

    #[test]
    fn body_must_use_declared_relations_with_correct_arity() {
        let unknown = parse_program("deliver(X) :- warehouse(X).").unwrap();
        assert!(matches!(
            SpocusTransducer::new("bad", short_schema(), unknown),
            Err(CoreError::NotSpocus { .. })
        ));
        let wrong_arity = parse_program("deliver(X) :- order(X, Y), price(X, Y).").unwrap();
        assert!(matches!(
            SpocusTransducer::new("bad", short_schema(), wrong_arity),
            Err(CoreError::NotSpocus { .. })
        ));
        let wrong_head_arity = parse_program("deliver(X, Y) :- order(X), price(X, Y).").unwrap();
        assert!(matches!(
            SpocusTransducer::new("bad", short_schema(), wrong_head_arity),
            Err(CoreError::NotSpocus { .. })
        ));
    }

    #[test]
    fn unsafe_rules_rejected() {
        let program = parse_program("deliver(X) :- NOT past-order(X).").unwrap();
        assert!(matches!(
            SpocusTransducer::new("bad", short_schema(), program),
            Err(CoreError::NotSpocus { .. })
        ));
    }

    #[test]
    fn output_relations_may_not_appear_in_bodies() {
        let program = parse_program(
            "sendbill(X,Y) :- order(X), price(X,Y).\n\
             deliver(X) :- sendbill(X,Y), pay(X,Y).",
        )
        .unwrap();
        assert!(matches!(
            SpocusTransducer::new("bad", short_schema(), program),
            Err(CoreError::NotSpocus { .. })
        ));
    }

    #[test]
    fn display_includes_name_schema_and_rules() {
        let text = short().to_string();
        assert!(text.contains("transducer short"));
        assert!(text.contains("deliver(X)"));
        assert!(text.contains("log"));
    }

    #[test]
    fn accessors() {
        let t = short();
        assert_eq!(t.name(), "short");
        assert_eq!(t.output_program().len(), 2);
        assert_eq!(t.rules_for(&RelationName::new("deliver")).len(), 1);
        assert!(!t.compiled_output_program().is_recursive());
    }

    /// Acceptance criterion of the compiled-evaluation work: after
    /// construction, stepping the transducer performs **no** safety check,
    /// dependency-graph construction or stratification.  The datalog crate
    /// counts analyses per thread; stepping must not move the counter.
    #[test]
    fn steps_perform_no_program_reanalysis() {
        let t = short();
        let db = db();
        let inputs = InstanceSequence::new(
            Schema::from_pairs([("order", 1), ("pay", 2)]).unwrap(),
            vec![
                input_step(&["time"], &[]),
                input_step(&[], &[("time", 855)]),
                input_step(&["newsweek"], &[("newsweek", 845)]),
            ],
        )
        .unwrap();
        let analyses_after_construction = rtx_datalog::compile::analysis_count();
        for _ in 0..3 {
            t.run(&db, &inputs).unwrap();
        }
        let state = Instance::empty(t.schema().state());
        t.output_step(&input_step(&["time"], &[]), &state, &db)
            .unwrap();
        assert_eq!(
            rtx_datalog::compile::analysis_count(),
            analyses_after_construction,
            "stepping a Spocus transducer must not re-analyse its output program"
        );
    }

    /// The explicit-run path (with the database pre-indexed) and the trait's
    /// default step-by-step path must produce identical runs.
    #[test]
    fn prepared_run_matches_stepwise_outputs() {
        let t = short();
        let db = db();
        let inputs = InstanceSequence::new(
            Schema::from_pairs([("order", 1), ("pay", 2)]).unwrap(),
            vec![
                input_step(&["time", "newsweek"], &[]),
                input_step(&[], &[("time", 855)]),
                input_step(&["lemonde"], &[("newsweek", 845)]),
            ],
        )
        .unwrap();
        let run = t.run(&db, &inputs).unwrap();
        let mut state = Instance::empty(t.schema().state());
        for (i, input) in inputs.iter().enumerate() {
            let output = t.output_step(input, &state, &db).unwrap();
            assert_eq!(run.outputs().get(i), Some(&output), "output at step {i}");
            state = t.state_step(input, &state, &db).unwrap();
            assert_eq!(run.states().get(i), Some(&state), "state at step {i}");
        }
    }
}
