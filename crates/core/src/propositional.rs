//! Propositional Spocus transducers and their generated languages (§3.1).

use crate::{CoreError, RelationalTransducer, SpocusTransducer};
use rtx_relational::{Instance, InstanceSequence, RelationName, Tuple};
use std::collections::{BTreeMap, BTreeSet};

/// A propositional Spocus transducer: all input and output relations are
/// 0-ary (propositions).
///
/// For such transducers the paper studies the *generated language* `Gen(T)`:
/// output sequences in which at most one proposition is emitted per step,
/// read as words over the output alphabet (steps with an empty output
/// contribute nothing to the word).  The paper characterises these languages
/// as the prefix-closed regular languages accepted by automata whose only
/// cycles are self-loops; the verification crate checks that characterisation
/// using the enumeration provided here.
#[derive(Debug, Clone)]
pub struct PropositionalTransducer {
    inner: SpocusTransducer,
    inputs: Vec<RelationName>,
    outputs: Vec<RelationName>,
}

impl PropositionalTransducer {
    /// Wraps a Spocus transducer, checking that every input and output
    /// relation is propositional (0-ary) and that it uses no database
    /// relations.
    pub fn new(inner: SpocusTransducer) -> Result<Self, CoreError> {
        let schema = inner.schema();
        for (name, arity) in schema.input().iter().chain(schema.output().iter()) {
            if arity != 0 {
                return Err(CoreError::NotSpocus {
                    detail: format!(
                        "relation `{name}` has arity {arity}; a propositional transducer only uses 0-ary relations"
                    ),
                });
            }
        }
        if !schema.db().is_empty() {
            return Err(CoreError::NotSpocus {
                detail: "a propositional transducer uses no database relations".into(),
            });
        }
        let inputs = schema.input().names().cloned().collect();
        let outputs = schema.output().names().cloned().collect();
        Ok(PropositionalTransducer {
            inner,
            inputs,
            outputs,
        })
    }

    /// The underlying Spocus transducer.
    pub fn inner(&self) -> &SpocusTransducer {
        &self.inner
    }

    /// The output alphabet (output proposition names).
    pub fn alphabet(&self) -> Vec<String> {
        self.outputs
            .iter()
            .map(|r| r.as_str().to_string())
            .collect()
    }

    /// The number of input propositions.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Enumerates `Gen(T)` up to input sequences of length `max_steps`:
    /// the set of words (over the output alphabet) produced by some input
    /// sequence all of whose steps output at most one proposition.  Steps
    /// with an empty output contribute no letter.
    ///
    /// The search is over reachable cumulative states (subsets of the input
    /// propositions already seen), so it terminates even though there are
    /// `2^k` input choices per step.
    pub fn generate_words(&self, max_steps: usize) -> Result<BTreeSet<Vec<String>>, CoreError> {
        let db = Instance::empty(self.inner.schema().db());
        let empty_state = Instance::empty(self.inner.schema().state());

        // Memoised exploration over (state, remaining steps) pairs would still
        // enumerate distinct words; we instead do a BFS over (state, word)
        // pairs, bounded by max_steps, de-duplicating on both components.
        let mut words: BTreeSet<Vec<String>> = BTreeSet::from([Vec::new()]);
        let mut frontier: BTreeSet<(Instance, Vec<String>)> =
            BTreeSet::from([(empty_state, Vec::new())]);

        let input_subsets = self.input_subsets();
        for _ in 0..max_steps {
            let mut next_frontier = BTreeSet::new();
            for (state, word) in &frontier {
                for subset in &input_subsets {
                    let input = self.input_instance(subset)?;
                    let output = self.inner.output_step(&input, state, &db)?;
                    let emitted: Vec<&RelationName> = self
                        .outputs
                        .iter()
                        .filter(|o| output.relation((*o).clone()).is_some_and(|r| r.holds()))
                        .collect();
                    if emitted.len() > 1 {
                        // Not a legal step of a propositional-output run.
                        continue;
                    }
                    let mut new_word = word.clone();
                    if let Some(o) = emitted.first() {
                        new_word.push(o.as_str().to_string());
                    }
                    let new_state = self.inner.state_step(&input, state, &db)?;
                    words.insert(new_word.clone());
                    next_frontier.insert((new_state, new_word));
                }
            }
            if next_frontier == frontier {
                break;
            }
            frontier = next_frontier;
        }
        Ok(words)
    }

    /// Runs the transducer on an explicit sequence of input subsets (each a
    /// set of input proposition names), returning the emitted word.  Errors
    /// if some step outputs more than one proposition.
    pub fn word_of_inputs(&self, steps: &[Vec<&str>]) -> Result<Vec<String>, CoreError> {
        let db = Instance::empty(self.inner.schema().db());
        let mut instances = Vec::new();
        for step in steps {
            let names: BTreeSet<RelationName> =
                step.iter().map(|s| RelationName::new(*s)).collect();
            instances.push(self.input_instance(&names)?);
        }
        let inputs = InstanceSequence::new(self.inner.schema().input().clone(), instances)?;
        let run = self.inner.run(&db, &inputs)?;
        let mut word = Vec::new();
        for output in run.outputs().iter() {
            let emitted: Vec<String> = self
                .outputs
                .iter()
                .filter(|o| output.relation((*o).clone()).is_some_and(|r| r.holds()))
                .map(|o| o.as_str().to_string())
                .collect();
            if emitted.len() > 1 {
                return Err(CoreError::SchemaMismatch {
                    detail: format!("step emitted {} propositions at once", emitted.len()),
                });
            }
            word.extend(emitted);
        }
        Ok(word)
    }

    fn input_subsets(&self) -> Vec<BTreeSet<RelationName>> {
        let k = self.inputs.len();
        (0..(1usize << k))
            .map(|bits| {
                self.inputs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| bits & (1 << i) != 0)
                    .map(|(_, r)| r.clone())
                    .collect()
            })
            .collect()
    }

    fn input_instance(&self, subset: &BTreeSet<RelationName>) -> Result<Instance, CoreError> {
        let mut inst = Instance::empty(self.inner.schema().input());
        for name in subset {
            inst.insert(name.clone(), Tuple::unit())?;
        }
        Ok(inst)
    }

    /// Explores the reachable cumulative states and the single-proposition
    /// transitions between them, returning `(states, transitions, initial)`
    /// where `transitions[i]` maps an output symbol to the successor state
    /// indexes reachable while emitting it.  Silent (empty-output) transitions
    /// are returned separately so callers can ε-close them.
    #[allow(clippy::type_complexity)]
    pub fn transition_system(
        &self,
    ) -> Result<
        (
            Vec<Instance>,
            Vec<BTreeMap<String, BTreeSet<usize>>>,
            Vec<BTreeSet<usize>>,
        ),
        CoreError,
    > {
        let db = Instance::empty(self.inner.schema().db());
        let mut states: Vec<Instance> = vec![Instance::empty(self.inner.schema().state())];
        let mut index: BTreeMap<Instance, usize> = BTreeMap::new();
        index.insert(states[0].clone(), 0);
        let mut labelled: Vec<BTreeMap<String, BTreeSet<usize>>> = vec![BTreeMap::new()];
        let mut silent: Vec<BTreeSet<usize>> = vec![BTreeSet::new()];

        let subsets = self.input_subsets();
        let mut queue = vec![0usize];
        while let Some(state_index) = queue.pop() {
            let state = states[state_index].clone();
            for subset in &subsets {
                let input = self.input_instance(subset)?;
                let output = self.inner.output_step(&input, &state, &db)?;
                let emitted: Vec<String> = self
                    .outputs
                    .iter()
                    .filter(|o| output.relation((*o).clone()).is_some_and(|r| r.holds()))
                    .map(|o| o.as_str().to_string())
                    .collect();
                if emitted.len() > 1 {
                    continue;
                }
                let next_state = self.inner.state_step(&input, &state, &db)?;
                let next_index = match index.get(&next_state) {
                    Some(&i) => i,
                    None => {
                        let i = states.len();
                        index.insert(next_state.clone(), i);
                        states.push(next_state);
                        labelled.push(BTreeMap::new());
                        silent.push(BTreeSet::new());
                        queue.push(i);
                        i
                    }
                };
                match emitted.first() {
                    Some(symbol) => {
                        labelled[state_index]
                            .entry(symbol.clone())
                            .or_default()
                            .insert(next_index);
                    }
                    None => {
                        silent[state_index].insert(next_index);
                    }
                }
            }
        }
        Ok((states, labelled, silent))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;

    #[test]
    fn abstar_c_example_generates_prefixes_of_a_bstar_c() {
        let t = models::abstar_c();
        let words = t.generate_words(4).unwrap();
        // prefixes of a b* c up to length 4
        let expected: BTreeSet<Vec<String>> = [
            vec![],
            vec!["a"],
            vec!["a", "b"],
            vec!["a", "c"],
            vec!["a", "b", "b"],
            vec!["a", "b", "c"],
            vec!["a", "b", "b", "b"],
            vec!["a", "b", "b", "c"],
        ]
        .iter()
        .map(|w| w.iter().map(|s| s.to_string()).collect())
        .collect();
        assert_eq!(words, expected);
    }

    #[test]
    fn words_are_prefix_closed() {
        let t = models::abstar_c();
        let words = t.generate_words(4).unwrap();
        for w in &words {
            for cut in 0..w.len() {
                assert!(words.contains(&w[..cut]), "prefix of {w:?} missing");
            }
        }
    }

    #[test]
    fn explicit_input_sequences_produce_expected_words() {
        let t = models::abstar_c();
        assert_eq!(
            t.word_of_inputs(&[vec!["A"], vec!["B"], vec!["B"], vec!["C"]])
                .unwrap(),
            vec!["a", "b", "b", "c"]
        );
        // repeating A after the first step emits nothing (NOT past-A blocks it)
        assert_eq!(
            t.word_of_inputs(&[vec!["A"], vec!["A"]]).unwrap(),
            vec!["a"]
        );
        // C before A emits nothing
        assert_eq!(
            t.word_of_inputs(&[vec!["C"]]).unwrap(),
            Vec::<String>::new()
        );
    }

    #[test]
    fn non_propositional_transducers_are_rejected() {
        assert!(matches!(
            PropositionalTransducer::new(models::short()),
            Err(CoreError::NotSpocus { .. })
        ));
    }

    #[test]
    fn alphabet_and_metadata() {
        let t = models::abstar_c();
        assert_eq!(t.alphabet(), vec!["a", "b", "c"]);
        assert_eq!(t.input_count(), 3);
        assert_eq!(t.inner().name(), "abstar-c");
    }

    #[test]
    fn transition_system_is_finite_and_inflationary() {
        let t = models::abstar_c();
        let (states, labelled, silent) = t.transition_system().unwrap();
        // at most 2^3 cumulative states
        assert!(states.len() <= 8);
        assert_eq!(labelled.len(), states.len());
        assert_eq!(silent.len(), states.len());
        // inflationary: every transition goes to a state with at least as many
        // accumulated facts
        for (i, map) in labelled.iter().enumerate() {
            for targets in map.values() {
                for &j in targets {
                    assert!(states[j].total_tuples() >= states[i].total_tuples());
                }
            }
        }
    }
}
