//! Runs of a relational transducer.

use crate::{CoreError, TransducerSchema};
use rtx_relational::{Instance, InstanceSequence, RelationName, Tuple};
use std::fmt;

/// A complete run of a transducer: the input, state, output and log sequences
/// of §2.2, all of the same length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Run {
    schema: TransducerSchema,
    db: Instance,
    inputs: InstanceSequence,
    states: InstanceSequence,
    outputs: InstanceSequence,
    log: InstanceSequence,
}

/// A view of one step of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStep<'a> {
    /// 0-based step index.
    pub index: usize,
    /// The input instance of the step.
    pub input: &'a Instance,
    /// The state instance *after* the step.
    pub state: &'a Instance,
    /// The output instance of the step.
    pub output: &'a Instance,
    /// The log instance of the step.
    pub log: &'a Instance,
}

impl Run {
    /// Assembles a run from its components, computing the log sequence
    /// `Lᵢ = (Iᵢ ∪ Oᵢ)|log`.
    pub fn new(
        schema: TransducerSchema,
        db: Instance,
        inputs: InstanceSequence,
        states: InstanceSequence,
        outputs: InstanceSequence,
    ) -> Result<Self, CoreError> {
        if inputs.len() != states.len() || inputs.len() != outputs.len() {
            return Err(CoreError::SchemaMismatch {
                detail: format!(
                    "sequence lengths differ: {} inputs, {} states, {} outputs",
                    inputs.len(),
                    states.len(),
                    outputs.len()
                ),
            });
        }
        let mut log = InstanceSequence::empty(schema.log_schema());
        for (input, output) in inputs.iter().zip(outputs.iter()) {
            let combined = input.union(output)?;
            log.push(combined.restrict_to_set(schema.log()))?;
        }
        Ok(Run {
            schema,
            db,
            inputs,
            states,
            outputs,
            log,
        })
    }

    /// The transducer schema of the run.
    pub fn schema(&self) -> &TransducerSchema {
        &self.schema
    }

    /// The database the run was executed against.
    pub fn db(&self) -> &Instance {
        &self.db
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.inputs.len()
    }

    /// True for the empty run.
    pub fn is_empty(&self) -> bool {
        self.inputs.is_empty()
    }

    /// The input sequence.
    pub fn inputs(&self) -> &InstanceSequence {
        &self.inputs
    }

    /// The state sequence (`states().get(i)` is the state *after* step `i`).
    pub fn states(&self) -> &InstanceSequence {
        &self.states
    }

    /// The output sequence.
    pub fn outputs(&self) -> &InstanceSequence {
        &self.outputs
    }

    /// The log sequence (the restriction of `Iᵢ ∪ Oᵢ` to the log relations).
    pub fn log(&self) -> &InstanceSequence {
        &self.log
    }

    /// Iterates over the steps of the run.
    pub fn steps(&self) -> impl Iterator<Item = RunStep<'_>> {
        (0..self.len()).map(move |i| RunStep {
            index: i,
            input: self.inputs.get(i).expect("aligned"),
            state: self.states.get(i).expect("aligned"),
            output: self.outputs.get(i).expect("aligned"),
            log: self.log.get(i).expect("aligned"),
        })
    }

    /// True if some step outputs a tuple in the given relation.
    pub fn ever_outputs(&self, relation: impl Into<RelationName>, tuple: &Tuple) -> bool {
        let relation = relation.into();
        self.outputs
            .iter()
            .any(|o| o.get(&relation).is_some_and(|r| r.contains(tuple)))
    }

    /// True if no step outputs any `error` fact (§4, mechanism 1).
    pub fn is_error_free(&self) -> bool {
        self.no_output_in("error")
    }

    /// True if every step outputs the propositional fact `ok` (§4, mechanism 2).
    pub fn has_ok_at_every_step(&self) -> bool {
        self.outputs.iter().all(|o| {
            o.relation("ok")
                .is_some_and(rtx_relational::Relation::holds)
        })
    }

    /// True if the run is non-empty and its last output contains `accept`
    /// (§4, mechanism 3).
    pub fn is_accepted(&self) -> bool {
        self.outputs
            .last()
            .and_then(|o| o.relation("accept"))
            .is_some_and(rtx_relational::Relation::holds)
    }

    fn no_output_in(&self, relation: &str) -> bool {
        let relation = RelationName::new(relation);
        self.outputs
            .iter()
            .all(|o| o.get(&relation).is_none_or(|r| r.is_empty()))
    }
}

impl fmt::Display for Run {
    /// Formats the run in the style of Figure 1/Figure 2 of the paper: one
    /// block per step listing the non-empty input and output relations.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for step in self.steps() {
            writeln!(f, "step {}:", step.index + 1)?;
            writeln!(f, "  input:  {}", step.input)?;
            writeln!(f, "  output: {}", step.output)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::{Schema, Value};

    fn schema() -> TransducerSchema {
        let input = Schema::from_pairs([("order", 1)]).unwrap();
        let output =
            Schema::from_pairs([("deliver", 1), ("error", 0), ("ok", 0), ("accept", 0)]).unwrap();
        TransducerSchema::new(
            input.clone(),
            TransducerSchema::cumulative_state_schema(&input),
            output,
            Schema::empty(),
            [RelationName::new("deliver"), RelationName::new("order")],
        )
        .unwrap()
    }

    fn instance(schema: &Schema, facts: &[(&str, &[&str])]) -> Instance {
        let mut inst = Instance::empty(schema);
        for (rel, vals) in facts {
            if vals.is_empty() {
                inst.insert(*rel, Tuple::unit()).unwrap();
            } else {
                inst.insert(*rel, Tuple::from_iter(vals.iter().copied()))
                    .unwrap();
            }
        }
        inst
    }

    fn build_run(output_facts: Vec<Vec<(&'static str, &'static [&'static str])>>) -> Run {
        let s = schema();
        let n = output_facts.len();
        let inputs = InstanceSequence::new(
            s.input().clone(),
            (0..n)
                .map(|i| {
                    instance(
                        s.input(),
                        &[("order", [["time", "newsweek"][i % 2]].as_slice())],
                    )
                })
                .collect(),
        )
        .unwrap();
        let states = InstanceSequence::new(
            s.state().clone(),
            (0..n).map(|_| Instance::empty(s.state())).collect(),
        )
        .unwrap();
        let outputs = InstanceSequence::new(
            s.output().clone(),
            output_facts
                .iter()
                .map(|facts| instance(s.output(), facts))
                .collect(),
        )
        .unwrap();
        Run::new(
            s,
            Instance::empty(&Schema::empty()),
            inputs,
            states,
            outputs,
        )
        .unwrap()
    }

    #[test]
    fn log_is_restriction_of_input_union_output() {
        let run = build_run(vec![vec![("deliver", &["time"])], vec![]]);
        assert_eq!(run.len(), 2);
        let log0 = run.log().get(0).unwrap();
        assert!(log0.holds("deliver", &Tuple::from_iter(["time"])));
        assert!(log0.holds("order", &Tuple::from_iter(["time"])));
        // the output relation `error` is not logged
        assert!(log0.relation("error").is_none());
        let log1 = run.log().get(1).unwrap();
        assert!(!log1.holds("deliver", &Tuple::from_iter(["time"])));
    }

    #[test]
    fn control_discipline_predicates() {
        let clean = build_run(vec![vec![("ok", &[])], vec![("ok", &[]), ("accept", &[])]]);
        assert!(clean.is_error_free());
        assert!(clean.has_ok_at_every_step());
        assert!(clean.is_accepted());

        let faulty = build_run(vec![vec![("ok", &[])], vec![("error", &[])]]);
        assert!(!faulty.is_error_free());
        assert!(!faulty.has_ok_at_every_step());
        assert!(!faulty.is_accepted());

        let empty = build_run(vec![]);
        assert!(empty.is_error_free());
        assert!(empty.has_ok_at_every_step());
        assert!(!empty.is_accepted());
        assert!(empty.is_empty());
    }

    #[test]
    fn steps_iterate_in_order() {
        let run = build_run(vec![vec![("deliver", &["time"])], vec![]]);
        let steps: Vec<_> = run.steps().collect();
        assert_eq!(steps.len(), 2);
        assert_eq!(steps[0].index, 0);
        assert!(steps[0]
            .output
            .holds("deliver", &Tuple::from_iter(["time"])));
        assert!(run.ever_outputs("deliver", &Tuple::from_iter(["time"])));
        assert!(!run.ever_outputs("deliver", &Tuple::from_iter([Value::str("lemonde")])));
    }

    #[test]
    fn mismatched_lengths_rejected() {
        let s = schema();
        let inputs =
            InstanceSequence::new(s.input().clone(), vec![Instance::empty(s.input())]).unwrap();
        let states = InstanceSequence::empty(s.state().clone());
        let outputs = InstanceSequence::empty(s.output().clone());
        assert!(matches!(
            Run::new(
                s,
                Instance::empty(&Schema::empty()),
                inputs,
                states,
                outputs
            ),
            Err(CoreError::SchemaMismatch { .. })
        ));
    }

    #[test]
    fn display_lists_steps_like_figures() {
        let run = build_run(vec![vec![("deliver", &["time"])]]);
        let text = run.to_string();
        assert!(text.contains("step 1"));
        assert!(text.contains("deliver"));
    }
}
