//! A sharded session runtime: many [`Runtime`] workers, one shared catalog.
//!
//! One [`Runtime`] already serves many concurrent [`Session`]s, but all of
//! them contend on a single session registry and share one [`Parallelism`]
//! budget.  A [`ShardedRuntime`] scales the same semantics out: `N` shard
//! runtimes, each a plain [`Runtime`], all reading the **same**
//! `Arc<ResidentDb>` — the catalog is resident once, its copy-on-write
//! relations and version-stamped hash indexes shared read-mostly by every
//! shard, while session state stays strictly shard-local.
//!
//! # Lifecycle of a sharded step
//!
//! 1. **Route** — [`ShardedRuntime::open_session`] hashes the session name
//!    ([`ShardedRuntime::shard_of`], deterministic FNV-1a) to pick a shard;
//!    [`ShardedRuntime::open_session_on`] places explicitly.  A global name
//!    registry spanning every shard keeps session names unique across the
//!    whole fleet, not merely per shard.
//! 2. **Shard-local step** — [`ShardedSession::step`] delegates to the
//!    owning shard's [`Session::step`]: incremental evaluation, monitors,
//!    demand plans, budgets and quarantine all behave exactly as on an
//!    unsharded runtime.  Different shards never synchronize on the step
//!    path.
//! 3. **Snapshot refresh** — a catalog mutation
//!    ([`ResidentDb::insert`]/[`ResidentDb::retract`] on the shared
//!    database, or a durable mutation through
//!    [`ShardedDurableRuntime`](crate::durable::ShardedDurableRuntime))
//!    bumps the touched relation's version stamp once; every session on
//!    every shard observes it at its next step by the same per-relation
//!    staleness check an unsharded session uses.
//! 4. **Health aggregation** — [`ShardedRuntime::health`] folds the
//!    per-shard [`RuntimeHealth`] snapshots into one fleet view: summed
//!    active/violation/rejection counters, merged quarantine lists.
//!
//! # Worker budgets
//!
//! Each shard evaluates under
//! [`Parallelism::divided_among`](rtx_datalog::Parallelism::divided_among):
//! the configured worker budget is split across shards (never below one
//! worker each), so stepping `N` shards concurrently does not oversubscribe
//! the machine `N`-fold.
//!
//! # Name release across shards
//!
//! Dropping a [`ShardedSession`] — or quarantining it mid-step — releases
//! its name from the **global** registry as well as the shard's own, so the
//! name is immediately reusable on *any* shard, not just the one that held
//! it.
//!
//! The shard count comes from the `RTX_SHARDS` environment variable under
//! the same strict contract as every other `RTX_*` knob
//! ([`ShardedRuntime::from_env`]): unset means unsharded, a malformed value
//! is a hard error.

use crate::demand::SessionDemand;
use crate::runtime::lock_clean;
use crate::supervise::{MonitorPolicy, RuntimeHealth, SessionObserver};
use crate::{CoreError, Runtime, Session, SpocusTransducer};
use rtx_datalog::{DemandPolicy, EvalBudget, Parallelism, ResidentDb};
use rtx_relational::Instance;
use std::collections::{BTreeMap, BTreeSet};
use std::ops::Deref;
use std::sync::{Arc, Mutex};

/// The accepted forms of `RTX_SHARDS`, for the strict-parse error message.
pub const RTX_SHARDS_EXPECTED: &str = "a positive shard count";

/// Strictly parses an `RTX_SHARDS` value through the shared
/// [`env`](rtx_relational::env) contract: `Ok(None)` when unset or blank
/// (the caller's default applies), a hard error when malformed — a typo'd
/// shard count must not silently collapse the fleet to one shard.
pub fn shards_setting(
    raw: Option<&str>,
) -> Result<Option<usize>, rtx_relational::env::EnvParseError> {
    rtx_relational::env::parse_setting("RTX_SHARDS", raw, RTX_SHARDS_EXPECTED, |value| {
        value.parse::<usize>().ok().filter(|&n| n > 0)
    })
}

#[derive(Debug)]
struct ShardedInner {
    shards: Vec<Runtime>,
    /// Fleet-wide name ownership: session name → owning shard.  The
    /// per-shard registries only see their own names; this map is what makes
    /// a name unique (and, after drop or quarantine, reusable) **across**
    /// shards.
    registry: Mutex<BTreeMap<String, usize>>,
}

/// A fleet of [`Runtime`] shards over one shared [`ResidentDb`].  Cheaply
/// clonable (`Arc` inside); clones share the shards and the global name
/// registry.  See the [module docs](self).
#[derive(Debug, Clone)]
pub struct ShardedRuntime {
    inner: Arc<ShardedInner>,
}

impl ShardedRuntime {
    /// Creates a sharded runtime owning a resident database.
    pub fn new(db: ResidentDb, shards: usize) -> Self {
        ShardedRuntime::shared(Arc::new(db), shards)
    }

    /// Creates a sharded runtime over an already-shared resident database
    /// with the default [`Parallelism`] budget.
    pub fn shared(db: Arc<ResidentDb>, shards: usize) -> Self {
        ShardedRuntime::shared_with(db, shards, Parallelism::default())
    }

    /// Creates `shards` runtimes (clamped to at least one) over one shared
    /// database.  `parallelism` is the **total** worker budget: each shard
    /// evaluates under
    /// [`parallelism.divided_among(shards)`](Parallelism::divided_among), so
    /// the fleet as a whole never oversubscribes the configured budget.
    pub fn shared_with(db: Arc<ResidentDb>, shards: usize, parallelism: Parallelism) -> Self {
        let shards = shards.max(1);
        let per_shard = parallelism.divided_among(shards);
        let runtimes = (0..shards)
            .map(|_| Runtime::shared_with(Arc::clone(&db), per_shard))
            .collect();
        ShardedRuntime {
            inner: Arc::new(ShardedInner {
                shards: runtimes,
                registry: Mutex::new(BTreeMap::new()),
            }),
        }
    }

    /// Creates a sharded runtime with the shard count taken from the
    /// `RTX_SHARDS` environment variable (default: one shard).  A malformed
    /// value is a hard [`CoreError::Runtime`], consistent with every other
    /// strict `RTX_*` knob.
    pub fn from_env(db: Arc<ResidentDb>) -> Result<Self, CoreError> {
        let raw = std::env::var("RTX_SHARDS").ok();
        let shards = shards_setting(raw.as_deref())
            .map_err(|e| CoreError::Runtime {
                detail: e.to_string(),
            })?
            .unwrap_or(1);
        Ok(ShardedRuntime::shared(db, shards))
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.inner.shards.len()
    }

    /// The shard runtimes, in index order.
    pub fn shards(&self) -> &[Runtime] {
        &self.inner.shards
    }

    /// The shared resident database every shard reads.
    pub fn database(&self) -> &Arc<ResidentDb> {
        self.inner.shards[0].database()
    }

    /// The deterministic home shard of a session name (FNV-1a over the name
    /// bytes, mod shard count) — stable across processes and platforms, so a
    /// front-end fleet routes the same name to the same shard everywhere.
    pub fn shard_of(&self, name: &str) -> usize {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.as_bytes() {
            hash ^= u64::from(*byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        (hash % self.inner.shards.len() as u64) as usize
    }

    /// Opens a named session on its home shard ([`ShardedRuntime::shard_of`]).
    /// Fails if the name is in use on **any** shard.
    pub fn open_session(
        &self,
        name: impl Into<String>,
        transducer: impl Into<Arc<SpocusTransducer>>,
    ) -> Result<ShardedSession, CoreError> {
        let name = name.into();
        let shard = self.shard_of(&name);
        self.open_inner(shard, name, transducer.into(), None)
    }

    /// Opens a named session on an explicit shard — for placement policies
    /// beyond name hashing (sticky routing, rebalancing, tests).
    pub fn open_session_on(
        &self,
        shard: usize,
        name: impl Into<String>,
        transducer: impl Into<Arc<SpocusTransducer>>,
    ) -> Result<ShardedSession, CoreError> {
        self.open_inner(shard, name.into(), transducer.into(), None)
    }

    /// Opens a demand-driven session
    /// ([`Runtime::open_session_with_demand`]) on its home shard.
    pub fn open_session_with_demand(
        &self,
        name: impl Into<String>,
        transducer: impl Into<Arc<SpocusTransducer>>,
        demand: SessionDemand,
    ) -> Result<ShardedSession, CoreError> {
        let name = name.into();
        let shard = self.shard_of(&name);
        self.open_inner(shard, name, transducer.into(), Some(demand))
    }

    /// Opens a demand-driven session on an explicit shard.
    pub fn open_session_with_demand_on(
        &self,
        shard: usize,
        name: impl Into<String>,
        transducer: impl Into<Arc<SpocusTransducer>>,
        demand: SessionDemand,
    ) -> Result<ShardedSession, CoreError> {
        self.open_inner(shard, name.into(), transducer.into(), Some(demand))
    }

    fn open_inner(
        &self,
        shard: usize,
        name: String,
        transducer: Arc<SpocusTransducer>,
        demand: Option<SessionDemand>,
    ) -> Result<ShardedSession, CoreError> {
        if shard >= self.inner.shards.len() {
            return Err(CoreError::Runtime {
                detail: format!(
                    "shard {shard} out of range: this runtime has {} shards",
                    self.inner.shards.len()
                ),
            });
        }
        {
            let mut registry = lock_clean(&self.inner.registry);
            if let Some(held_on) = registry.get(&name) {
                return Err(CoreError::Runtime {
                    detail: format!("session `{name}` is already open on shard {held_on}"),
                });
            }
            registry.insert(name.clone(), shard);
        }
        let opened = match demand {
            None => self.inner.shards[shard].open_session(name.clone(), transducer),
            Some(spec) => {
                self.inner.shards[shard].open_session_with_demand(name.clone(), transducer, spec)
            }
        };
        match opened {
            Ok(session) => Ok(ShardedSession {
                session,
                shard,
                sharded: Arc::clone(&self.inner),
                released: false,
            }),
            Err(e) => {
                lock_clean(&self.inner.registry).remove(&name);
                Err(e)
            }
        }
    }

    /// The names of the currently open sessions across every shard, sorted.
    pub fn session_names(&self) -> Vec<String> {
        lock_clean(&self.inner.registry).keys().cloned().collect()
    }

    /// Number of currently open sessions across every shard.
    pub fn session_count(&self) -> usize {
        lock_clean(&self.inner.registry).len()
    }

    /// A fleet-wide supervision snapshot: per-shard [`RuntimeHealth`]
    /// aggregated — counters summed, quarantine lists merged in name order.
    pub fn health(&self) -> RuntimeHealth {
        let mut aggregate = RuntimeHealth::default();
        let mut quarantined = BTreeSet::new();
        for shard in &self.inner.shards {
            let health = shard.health();
            aggregate.active_sessions += health.active_sessions;
            aggregate.violations += health.violations;
            aggregate.rejections += health.rejections;
            quarantined.extend(health.quarantined_sessions);
        }
        aggregate.quarantined_sessions = quarantined.into_iter().collect();
        aggregate
    }

    /// Sets the default per-step [`EvalBudget`] on every shard
    /// ([`Runtime::set_step_budget`]).
    pub fn set_step_budget(&self, budget: EvalBudget) {
        for shard in &self.inner.shards {
            shard.set_step_budget(budget);
        }
    }

    /// Sets the default [`MonitorPolicy`] on every shard
    /// ([`Runtime::set_monitor_policy`]) — this also clears any
    /// malformed-`RTX_MONITOR` report on each shard.
    pub fn set_monitor_policy(&self, policy: MonitorPolicy) {
        for shard in &self.inner.shards {
            shard.set_monitor_policy(policy);
        }
    }

    /// Sets the [`DemandPolicy`] on every shard
    /// ([`Runtime::set_demand_policy`]) — this also clears any
    /// malformed-`RTX_DEMAND` report on each shard.
    pub fn set_demand_policy(&self, policy: DemandPolicy) {
        for shard in &self.inner.shards {
            shard.set_demand_policy(policy);
        }
    }
}

/// A [`Session`] owned by one shard of a [`ShardedRuntime`], plus the global
/// name registration.  Dereferences to [`Session`] for read-only accessors;
/// stepping and the mutating configuration calls go through explicit
/// forwarders so the wrapper can keep the fleet-wide registry in sync (a
/// quarantined session releases its global name immediately, exactly as an
/// unsharded session releases its runtime name).
#[derive(Debug)]
pub struct ShardedSession {
    session: Session,
    shard: usize,
    sharded: Arc<ShardedInner>,
    released: bool,
}

impl ShardedSession {
    /// The shard this session lives on.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Feeds one input instance — delegates to [`Session::step`].  If the
    /// step quarantines the session, its name is released from the global
    /// registry as well, so it is immediately reusable on any shard.
    pub fn step(&mut self, input: &Instance) -> Result<Instance, CoreError> {
        let result = self.session.step(input);
        if self.session.is_quarantined() && !self.released {
            self.release_name();
        }
        result
    }

    /// Changes the session's [`MonitorPolicy`] — see
    /// [`Session::set_monitor_policy`].
    pub fn set_monitor_policy(&mut self, policy: MonitorPolicy) {
        self.session.set_monitor_policy(policy);
    }

    /// Attaches an online monitor — see [`Session::attach_observer`].
    pub fn attach_observer(&mut self, observer: Box<dyn SessionObserver>) {
        self.session.attach_observer(observer);
    }

    /// Detaches the attached monitor — see [`Session::detach_observer`].
    pub fn detach_observer(&mut self) -> Option<Box<dyn SessionObserver>> {
        self.session.detach_observer()
    }

    /// Replaces the session's per-step [`EvalBudget`] — see
    /// [`Session::set_step_budget`].
    pub fn set_step_budget(&mut self, budget: EvalBudget) {
        self.session.set_step_budget(budget);
    }

    fn release_name(&mut self) {
        self.released = true;
        let mut registry = lock_clean(&self.sharded.registry);
        if registry.get(self.session.name()) == Some(&self.shard) {
            registry.remove(self.session.name());
        }
    }
}

impl Deref for ShardedSession {
    type Target = Session;

    fn deref(&self) -> &Session {
        &self.session
    }
}

impl Drop for ShardedSession {
    fn drop(&mut self) {
        if !self.released {
            self.release_name();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::models;
    use crate::supervise::Violation;
    use rtx_relational::{Tuple, Value};

    fn input_step(orders: &[&str], pays: &[(&str, i64)]) -> Instance {
        let schema = models::short_input_schema();
        let mut inst = Instance::empty(&schema);
        for o in orders {
            inst.insert("order", Tuple::from_iter([*o])).unwrap();
        }
        for (p, amt) in pays {
            inst.insert("pay", Tuple::new(vec![Value::str(*p), Value::int(*amt)]))
                .unwrap();
        }
        inst
    }

    fn sharded(shards: usize) -> ShardedRuntime {
        ShardedRuntime::new(ResidentDb::new(models::figure1_database()), shards)
    }

    #[test]
    fn routing_is_deterministic_and_covers_every_shard() {
        let fleet = sharded(4);
        assert_eq!(fleet.shard_count(), 4);
        let mut seen = BTreeSet::new();
        for i in 0..64 {
            let name = format!("customer-{i}");
            let shard = fleet.shard_of(&name);
            assert!(shard < 4);
            assert_eq!(shard, fleet.shard_of(&name), "routing must be stable");
            seen.insert(shard);
        }
        assert_eq!(seen.len(), 4, "64 names must hit all 4 shards");
        // The hash is platform-independent: pin one value so a silent change
        // of the routing function (which would strand remote routing tables)
        // shows up here.
        assert_eq!(sharded(1).shard_of("anything"), 0);
    }

    #[test]
    fn sharded_sessions_reproduce_the_unsharded_run() {
        let transducer = Arc::new(models::short());
        let db = models::figure1_database();
        let inputs = models::figure1_inputs();

        let unsharded = Runtime::new(ResidentDb::new(db.clone()));
        let mut reference = unsharded
            .open_session("customer", Arc::clone(&transducer))
            .unwrap();

        let fleet = sharded(3);
        let mut session = fleet.open_session("customer", transducer).unwrap();
        for input in inputs.iter() {
            assert_eq!(session.step(input).unwrap(), reference.step(input).unwrap());
        }
        assert_eq!(session.run().unwrap(), reference.run().unwrap());
    }

    #[test]
    fn names_are_unique_fleet_wide_and_released_across_shards() {
        let fleet = sharded(4);
        let transducer = Arc::new(models::short());

        // Open on an explicit shard that is NOT the name's home shard, then
        // try the routed open: the global registry must still refuse.
        let home = fleet.shard_of("alice");
        let elsewhere = (home + 1) % 4;
        let held = fleet
            .open_session_on(elsewhere, "alice", Arc::clone(&transducer))
            .unwrap();
        assert_eq!(held.shard(), elsewhere);
        let err = fleet
            .open_session("alice", Arc::clone(&transducer))
            .unwrap_err();
        assert!(
            err.to_string().contains("already open"),
            "cross-shard duplicate must be refused: {err}"
        );
        assert_eq!(fleet.session_count(), 1);

        // The bug this pins: dropping the session on shard A must make the
        // name reusable on shard B (and anywhere else), not just on A.
        drop(held);
        assert_eq!(fleet.session_count(), 0);
        let reopened = fleet
            .open_session_on(home, "alice", Arc::clone(&transducer))
            .unwrap();
        assert_eq!(reopened.shard(), home);

        // Out-of-range explicit placement is a typed refusal, not a panic,
        // and leaks no registry entry.
        let err = fleet.open_session_on(9, "bob", transducer).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        assert_eq!(fleet.session_names(), vec!["alice".to_string()]);
    }

    /// An observer that panics on `admit` from step `fuse` onwards.
    #[derive(Debug)]
    struct Bomb {
        fuse: usize,
    }

    impl SessionObserver for Bomb {
        fn admit(&mut self, step: usize, _input: &Instance) -> Result<Vec<Violation>, CoreError> {
            assert!(step < self.fuse, "the bomb went off");
            Ok(Vec::new())
        }

        fn observe(
            &mut self,
            _step: usize,
            _input: &Instance,
            _output: &Instance,
        ) -> Result<Vec<Violation>, CoreError> {
            Ok(Vec::new())
        }
    }

    #[test]
    fn quarantine_releases_the_global_name_for_reuse_on_another_shard() {
        let fleet = sharded(3);
        let transducer = Arc::new(models::short());
        let mut bad = fleet
            .open_session_on(0, "customer", Arc::clone(&transducer))
            .unwrap();
        bad.set_monitor_policy(MonitorPolicy::Observe);
        bad.attach_observer(Box::new(Bomb { fuse: 1 }));

        let step = input_step(&["time"], &[]);
        bad.step(&step).unwrap();
        let err = bad.step(&step).unwrap_err();
        assert!(matches!(err, CoreError::SessionQuarantined { .. }));
        assert!(bad.is_quarantined());

        // The quarantined session released its global name immediately — a
        // replacement can open on a *different* shard while the quarantined
        // wrapper is still alive for inspection.
        assert_eq!(fleet.session_count(), 0);
        let mut replacement = fleet
            .open_session_on(2, "customer", Arc::clone(&transducer))
            .unwrap();
        assert_eq!(bad.len(), 1, "the completed step survives quarantine");
        assert_eq!(
            fleet.health().quarantined_sessions,
            vec!["customer".to_string()]
        );

        // Dropping the quarantined wrapper must NOT evict the replacement.
        drop(bad);
        assert_eq!(fleet.session_count(), 1);
        replacement.step(&step).unwrap();
    }

    #[test]
    fn per_shard_worker_budgets_divide_the_total() {
        // The oversubscription bug this pins: N shards each resolving the
        // full process-wide worker count would oversubscribe the machine
        // N-fold.  Each shard must get its share of the *total* budget.
        let db = Arc::new(ResidentDb::new(models::figure1_database()));
        let fleet = ShardedRuntime::shared_with(Arc::clone(&db), 4, Parallelism::threads(8));
        for shard in fleet.shards() {
            assert_eq!(shard.parallelism().worker_count(), 2);
        }
        let total: usize = fleet
            .shards()
            .iter()
            .map(|s| s.parallelism().worker_count())
            .sum();
        assert_eq!(total, 8);

        // More shards than workers: every shard keeps at least one worker.
        let fleet = ShardedRuntime::shared_with(Arc::clone(&db), 8, Parallelism::threads(3));
        for shard in fleet.shards() {
            assert_eq!(shard.parallelism().worker_count(), 1);
        }

        // A zero shard count clamps to one unsharded runtime.
        let fleet = ShardedRuntime::shared_with(db, 0, Parallelism::threads(3));
        assert_eq!(fleet.shard_count(), 1);
        assert_eq!(fleet.shards()[0].parallelism().worker_count(), 3);
    }

    #[test]
    fn rtx_shards_setting_rejects_malformed_values_loudly() {
        assert_eq!(shards_setting(None), Ok(None));
        assert_eq!(shards_setting(Some("")), Ok(None));
        assert_eq!(shards_setting(Some("  ")), Ok(None));
        assert_eq!(shards_setting(Some("4")), Ok(Some(4)));
        assert_eq!(shards_setting(Some(" 16 ")), Ok(Some(16)));
        for bad in ["0", "-2", "two", "2.5", "4 shards"] {
            let err = shards_setting(Some(bad)).unwrap_err();
            assert_eq!(err.var, "RTX_SHARDS");
            assert_eq!(err.value, bad);
            assert!(err.to_string().contains("RTX_SHARDS"), "{err}");
        }
    }

    #[test]
    fn catalog_mutations_reach_sessions_on_every_shard() {
        let transducer = Arc::new(models::short());
        let fleet = sharded(3);
        let mut sessions: Vec<ShardedSession> = (0..3)
            .map(|i| {
                fleet
                    .open_session_on(i, format!("s{i}"), Arc::clone(&transducer))
                    .unwrap()
            })
            .collect();

        // `economist` is unpriced: no shard bills for it.
        for session in &mut sessions {
            let out = session.step(&input_step(&["economist"], &[])).unwrap();
            assert!(out.relation("sendbill").unwrap().is_empty());
        }
        // One write to the shared catalog is visible to every shard at the
        // very next step.
        fleet
            .database()
            .insert(
                "price",
                Tuple::new(vec![Value::str("economist"), Value::int(700)]),
            )
            .unwrap();
        for session in &mut sessions {
            let out = session.step(&input_step(&["economist"], &[])).unwrap();
            assert!(out.holds(
                "sendbill",
                &Tuple::new(vec![Value::str("economist"), Value::int(700)])
            ));
        }
        assert_eq!(fleet.health().active_sessions, 3);
    }

    #[test]
    fn fan_out_setters_configure_every_shard() {
        let fleet = sharded(2);
        fleet.set_monitor_policy(MonitorPolicy::Enforce);
        fleet.set_demand_policy(DemandPolicy::Full);
        fleet.set_step_budget(EvalBudget::max_derivations(7));
        for shard in fleet.shards() {
            assert_eq!(shard.monitor_policy(), MonitorPolicy::Enforce);
            assert_eq!(shard.demand_policy(), DemandPolicy::Full);
            assert_eq!(shard.step_budget(), EvalBudget::max_derivations(7));
        }
    }
}
