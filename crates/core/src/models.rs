//! The paper's worked business models and the Figure 1 / Figure 2 scenarios.
//!
//! * [`short`] — the minimal order/bill/pay/deliver model of §2.1;
//! * [`friendly`] — the customer-friendly customization of `short` (warnings
//!   for unavailable products, wrong payments, duplicate payments, and
//!   reminders of pending bills);
//! * [`abstar_c`] — the propositional transducer of §3.1 generating the
//!   prefixes of `a b* c`;
//! * [`figure1_database`] / [`figure1_inputs`] — the catalog (Time 855,
//!   Newsweek 845, Le Monde 8350) and the input sequence of Figure 1;
//! * [`figure2_inputs`] — the input sequence of Figure 2, which exercises
//!   every warning of `friendly`.
//!
//! The published figures are reproduced from the running-text description
//! (the original images are not part of the source text); the *shape* of the
//! exchange — order, bill, pay, deliver, plus each warning — follows §2.1.

use crate::{parse_transducer, PropositionalTransducer, SpocusTransducer};
use rtx_relational::{Instance, InstanceSequence, Schema, Tuple, Value};

/// The `TRANSDUCER SHORT` program of §2.1.
pub const SHORT_PROGRAM: &str = "\
transducer short
schema
  database: price, available/1;
  input: order, pay;
  state: past-order, past-pay;
  output: sendbill, deliver;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y).";

/// The `TRANSDUCER FRIENDLY` program of §2.1.
pub const FRIENDLY_PROGRAM: &str = "\
transducer friendly
relations
  database: price, available;
  input: order, pay, pending-bills;
  state: past-order, past-pay;
  output: sendbill, deliver, unavailable, rejectpay, alreadypaid, rebill;
  log: sendbill, pay, deliver;
state rules
  past-order(X) +:- order(X);
  past-pay(X,Y) +:- pay(X,Y);
output rules
  sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y);
  deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y);
  unavailable(X) :- order(X), NOT available(X);
  rejectpay(X) :- pay(X,Y), NOT past-order(X);
  rejectpay(X) :- pay(X,Y), past-order(X), NOT price(X,Y);
  alreadypaid(X) :- pay(X,Y), past-pay(X,Y);
  rebill(X,Y) :- pending-bills, past-order(X), price(X,Y), NOT past-pay(X,Y).";

/// The propositional transducer of §3.1 generating prefixes of `a b* c`.
pub const ABSTAR_C_PROGRAM: &str = "\
transducer abstar-c
  input: A/0, B/0, C/0;
  output: a/0, b/0, c/0;
  log: a, b, c;
state rules
  past-A +:- A;
  past-B +:- B;
  past-C +:- C;
output rules
  a :- A, NOT past-A;
  b :- B, past-A, NOT past-C, NOT C;
  c :- C, past-A, NOT past-C.";

/// Builds the `short` transducer.
pub fn short() -> SpocusTransducer {
    parse_transducer(SHORT_PROGRAM).expect("the short program is a valid Spocus transducer")
}

/// Builds the `friendly` transducer.
pub fn friendly() -> SpocusTransducer {
    parse_transducer(FRIENDLY_PROGRAM).expect("the friendly program is a valid Spocus transducer")
}

/// Builds the propositional `a b* c` prefix generator.
pub fn abstar_c() -> PropositionalTransducer {
    let inner =
        parse_transducer(ABSTAR_C_PROGRAM).expect("the ab*c program is a valid Spocus transducer");
    PropositionalTransducer::new(inner).expect("the ab*c program is propositional")
}

/// The database schema shared by `short` and `friendly`.
pub fn catalog_schema() -> Schema {
    Schema::from_pairs([("price", 2), ("available", 1)]).expect("distinct relations")
}

/// The input schema of `short`.
pub fn short_input_schema() -> Schema {
    Schema::from_pairs([("order", 1), ("pay", 2)]).expect("distinct relations")
}

/// The input schema of `friendly`.
pub fn friendly_input_schema() -> Schema {
    Schema::from_pairs([("order", 1), ("pay", 2), ("pending-bills", 0)])
        .expect("distinct relations")
}

/// The Figure 1 catalog: Time costs 855, Newsweek 845, Le Monde 8350; Time
/// and Newsweek are available, Le Monde is not (so that Figure 2 can show the
/// `unavailable` warning).
pub fn figure1_database() -> Instance {
    let mut db = Instance::empty(&catalog_schema());
    for (product, amount) in [("time", 855), ("newsweek", 845), ("lemonde", 8350)] {
        db.insert(
            "price",
            Tuple::new(vec![Value::str(product), Value::int(amount)]),
        )
        .expect("schema declares price/2");
    }
    for product in ["time", "newsweek"] {
        db.insert("available", Tuple::from_iter([product]))
            .expect("schema declares available/1");
    }
    db
}

fn short_step(orders: &[&str], pays: &[(&str, i64)]) -> Instance {
    let mut inst = Instance::empty(&short_input_schema());
    for o in orders {
        inst.insert("order", Tuple::from_iter([*o]))
            .expect("order/1");
    }
    for (p, amount) in pays {
        inst.insert("pay", Tuple::new(vec![Value::str(*p), Value::int(*amount)]))
            .expect("pay/2");
    }
    inst
}

fn friendly_step(orders: &[&str], pays: &[(&str, i64)], pending_bills: bool) -> Instance {
    let mut inst = Instance::empty(&friendly_input_schema());
    for o in orders {
        inst.insert("order", Tuple::from_iter([*o]))
            .expect("order/1");
    }
    for (p, amount) in pays {
        inst.insert("pay", Tuple::new(vec![Value::str(*p), Value::int(*amount)]))
            .expect("pay/2");
    }
    if pending_bills {
        inst.insert("pending-bills", Tuple::unit())
            .expect("pending-bills/0");
    }
    inst
}

/// The Figure 1 input sequence for `short`:
///
/// 1. order Time and Newsweek → bills for both;
/// 2. pay Time (855) → Time is delivered;
/// 3. order Le Monde → bill for Le Monde;
/// 4. pay Newsweek (845) → Newsweek is delivered.
pub fn figure1_inputs() -> InstanceSequence {
    InstanceSequence::new(
        short_input_schema(),
        vec![
            short_step(&["time", "newsweek"], &[]),
            short_step(&[], &[("time", 855)]),
            short_step(&["lemonde"], &[]),
            short_step(&[], &[("newsweek", 845)]),
        ],
    )
    .expect("steps share the input schema")
}

/// The Figure 2 input sequence for `friendly`, exercising every warning:
///
/// 1. order Time and Le Monde → bill for both, `unavailable(lemonde)`;
/// 2. pay Newsweek (845) without ordering it → `rejectpay(newsweek)`;
/// 3. pay Time with the wrong amount (1000) → `rejectpay(time)`;
/// 4. pay Time (855) → Time is delivered;
/// 5. pay Time (855) again → `alreadypaid(time)`;
/// 6. ask for pending bills → `rebill(lemonde, 8350)`.
pub fn figure2_inputs() -> InstanceSequence {
    InstanceSequence::new(
        friendly_input_schema(),
        vec![
            friendly_step(&["time", "lemonde"], &[], false),
            friendly_step(&[], &[("newsweek", 845)], false),
            friendly_step(&[], &[("time", 1000)], false),
            friendly_step(&[], &[("time", 855)], false),
            friendly_step(&[], &[("time", 855)], false),
            friendly_step(&[], &[], true),
        ],
    )
    .expect("steps share the input schema")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RelationalTransducer;

    #[test]
    fn figure1_run_of_short() {
        let run = short().run(&figure1_database(), &figure1_inputs()).unwrap();
        assert_eq!(run.len(), 4);

        let step1 = run.outputs().get(0).unwrap();
        assert!(step1.holds(
            "sendbill",
            &Tuple::new(vec![Value::str("time"), Value::int(855)])
        ));
        assert!(step1.holds(
            "sendbill",
            &Tuple::new(vec![Value::str("newsweek"), Value::int(845)])
        ));
        assert!(step1.relation("deliver").unwrap().is_empty());

        let step2 = run.outputs().get(1).unwrap();
        assert!(step2.holds("deliver", &Tuple::from_iter(["time"])));

        let step3 = run.outputs().get(2).unwrap();
        assert!(step3.holds(
            "sendbill",
            &Tuple::new(vec![Value::str("lemonde"), Value::int(8350)])
        ));

        let step4 = run.outputs().get(3).unwrap();
        assert!(step4.holds("deliver", &Tuple::from_iter(["newsweek"])));
    }

    #[test]
    fn figure2_run_of_friendly_shows_every_warning() {
        let run = friendly()
            .run(&figure1_database(), &figure2_inputs())
            .unwrap();
        assert_eq!(run.len(), 6);

        let step1 = run.outputs().get(0).unwrap();
        assert!(step1.holds("unavailable", &Tuple::from_iter(["lemonde"])));
        assert!(step1.holds(
            "sendbill",
            &Tuple::new(vec![Value::str("lemonde"), Value::int(8350)])
        ));

        let step2 = run.outputs().get(1).unwrap();
        assert!(step2.holds("rejectpay", &Tuple::from_iter(["newsweek"])));

        let step3 = run.outputs().get(2).unwrap();
        assert!(step3.holds("rejectpay", &Tuple::from_iter(["time"])));
        assert!(step3.relation("deliver").unwrap().is_empty());

        let step4 = run.outputs().get(3).unwrap();
        assert!(step4.holds("deliver", &Tuple::from_iter(["time"])));

        let step5 = run.outputs().get(4).unwrap();
        assert!(step5.holds("alreadypaid", &Tuple::from_iter(["time"])));
        assert!(step5.relation("deliver").unwrap().is_empty());

        let step6 = run.outputs().get(5).unwrap();
        assert!(step6.holds(
            "rebill",
            &Tuple::new(vec![Value::str("lemonde"), Value::int(8350)])
        ));
        assert!(!step6.holds(
            "rebill",
            &Tuple::new(vec![Value::str("time"), Value::int(855)])
        ));
    }

    #[test]
    fn short_and_friendly_produce_the_same_logs_on_short_inputs() {
        // §2.1 observes that short and friendly have exactly the same valid
        // logs.  On any input sequence over short's input schema (extended
        // with an empty pending-bills relation), the two transducers produce
        // identical logs.
        let short_run = short().run(&figure1_database(), &figure1_inputs()).unwrap();

        // Re-run the same business exchange through friendly.
        let friendly_inputs = InstanceSequence::new(
            friendly_input_schema(),
            figure1_inputs()
                .iter()
                .map(|step| {
                    let mut inst = Instance::empty(&friendly_input_schema());
                    for (name, rel) in step.iter() {
                        for tuple in rel.iter() {
                            inst.insert(name.clone(), tuple.clone()).unwrap();
                        }
                    }
                    inst
                })
                .collect(),
        )
        .unwrap();
        let friendly_run = friendly()
            .run(&figure1_database(), &friendly_inputs)
            .unwrap();

        assert_eq!(short_run.log(), friendly_run.log());
    }

    #[test]
    fn figure1_database_contents() {
        let db = figure1_database();
        assert_eq!(db.relation("price").unwrap().len(), 3);
        assert_eq!(db.relation("available").unwrap().len(), 2);
    }

    #[test]
    fn model_names() {
        assert_eq!(short().name(), "short");
        assert_eq!(friendly().name(), "friendly");
        assert_eq!(abstar_c().inner().name(), "abstar-c");
    }
}
