//! # rtx-automata
//!
//! Finite automata substrate, used by the verification crate to exercise the
//! paper's characterization of the output languages of *propositional* Spocus
//! transducers (§3.1):
//!
//! > They are the prefix-closed regular languages accepted by finite automata
//! > with no cycles except self loops.
//!
//! The crate provides nondeterministic and deterministic finite automata over
//! a string alphabet, the subset construction, product constructions,
//! language emptiness/equivalence checks, prefix-closure, bounded language
//! enumeration, and the structural "self-loop-only cycles" test that captures
//! the inflationary nature of Spocus states (one can never return to a
//! previous state, so the only cycles a run graph can exhibit are self loops).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dfa;
mod nfa;

pub use dfa::Dfa;
pub use nfa::Nfa;

/// A symbol of the automaton alphabet (an output proposition name in the
/// propositional-transducer setting).
pub type Symbol = String;

#[cfg(test)]
mod tests {
    use super::*;

    /// The running example of §3.1: prefixes of `a b* c`.
    fn prefix_abstar_c() -> Dfa {
        // states: 0 = start (ε seen), 1 = a..b*, 2 = after c, 3 = dead
        let mut dfa = Dfa::new(4, 0, vec![0, 1, 2]);
        dfa.set_transition(0, "a", 1);
        dfa.set_transition(0, "b", 3);
        dfa.set_transition(0, "c", 3);
        dfa.set_transition(1, "a", 3);
        dfa.set_transition(1, "b", 1);
        dfa.set_transition(1, "c", 2);
        dfa.set_transition(2, "a", 3);
        dfa.set_transition(2, "b", 3);
        dfa.set_transition(2, "c", 3);
        dfa.set_transition(3, "a", 3);
        dfa.set_transition(3, "b", 3);
        dfa.set_transition(3, "c", 3);
        dfa
    }

    #[test]
    fn abstar_c_prefixes_is_prefix_closed_and_self_loop_only() {
        let dfa = prefix_abstar_c();
        assert!(dfa.accepts(&[]));
        assert!(dfa.accepts(&["a".into()]));
        assert!(dfa.accepts(&["a".into(), "b".into(), "b".into()]));
        assert!(dfa.accepts(&["a".into(), "b".into(), "c".into()]));
        assert!(!dfa.accepts(&["b".into()]));
        assert!(!dfa.accepts(&["a".into(), "c".into(), "c".into()]));
        assert!(dfa.is_prefix_closed());
        assert!(dfa.has_only_self_loop_cycles());
    }

    #[test]
    fn ab_star_language_is_not_self_loop_only() {
        // (ab)* needs a genuine 2-cycle, which Spocus propositional
        // transducers cannot generate (the paper's counterexample).
        let mut dfa = Dfa::new(3, 0, vec![0]);
        dfa.set_transition(0, "a", 1);
        dfa.set_transition(1, "b", 0);
        dfa.set_transition(0, "b", 2);
        dfa.set_transition(1, "a", 2);
        dfa.set_transition(2, "a", 2);
        dfa.set_transition(2, "b", 2);
        assert!(dfa.accepts(&["a".into(), "b".into()]));
        assert!(!dfa.has_only_self_loop_cycles());
        // and its prefix closure is a different language: "a" is a prefix of
        // a word of (ab)* but is not in (ab)*.
        assert!(!dfa.is_prefix_closed());
    }
}
