//! Nondeterministic finite automata and the subset construction.

use crate::{Dfa, Symbol};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A nondeterministic finite automaton (without ε-transitions) over a string
/// alphabet.
#[derive(Debug, Clone, Default)]
pub struct Nfa {
    num_states: usize,
    start: BTreeSet<usize>,
    accepting: BTreeSet<usize>,
    transitions: BTreeMap<(usize, Symbol), BTreeSet<usize>>,
}

impl Nfa {
    /// Creates an NFA with `num_states` states.
    pub fn new(num_states: usize, start: Vec<usize>, accepting: Vec<usize>) -> Self {
        Nfa {
            num_states,
            start: start.into_iter().collect(),
            accepting: accepting.into_iter().collect(),
            transitions: BTreeMap::new(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// Adds a transition `from --symbol--> to`.
    pub fn add_transition(&mut self, from: usize, symbol: impl Into<Symbol>, to: usize) {
        assert!(from < self.num_states && to < self.num_states);
        self.transitions
            .entry((from, symbol.into()))
            .or_default()
            .insert(to);
    }

    /// Marks a state as accepting.
    pub fn add_accepting(&mut self, state: usize) {
        assert!(state < self.num_states);
        self.accepting.insert(state);
    }

    /// The alphabet of symbols mentioned by some transition.
    pub fn alphabet(&self) -> BTreeSet<Symbol> {
        self.transitions.keys().map(|(_, s)| s.clone()).collect()
    }

    /// True if the NFA accepts the word.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut current = self.start.clone();
        for symbol in word {
            let mut next = BTreeSet::new();
            for &state in &current {
                if let Some(tos) = self.transitions.get(&(state, symbol.clone())) {
                    next.extend(tos.iter().copied());
                }
            }
            current = next;
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|s| self.accepting.contains(s))
    }

    /// Determinises the NFA with the subset construction.  Only reachable
    /// subsets become DFA states; the empty subset is not materialised
    /// (missing transitions of the resulting [`Dfa`] play that role).
    pub fn determinize(&self) -> Dfa {
        let alphabet = self.alphabet();
        let mut subset_index: BTreeMap<BTreeSet<usize>, usize> = BTreeMap::new();
        let mut subsets: Vec<BTreeSet<usize>> = Vec::new();
        let mut transitions: Vec<(usize, Symbol, usize)> = Vec::new();

        let start_subset = self.start.clone();
        subset_index.insert(start_subset.clone(), 0);
        subsets.push(start_subset.clone());
        let mut queue = VecDeque::from([start_subset]);

        while let Some(subset) = queue.pop_front() {
            let from_index = subset_index[&subset];
            for symbol in &alphabet {
                let mut target = BTreeSet::new();
                for &state in &subset {
                    if let Some(tos) = self.transitions.get(&(state, symbol.clone())) {
                        target.extend(tos.iter().copied());
                    }
                }
                if target.is_empty() {
                    continue;
                }
                let to_index = match subset_index.get(&target) {
                    Some(&i) => i,
                    None => {
                        let i = subsets.len();
                        subset_index.insert(target.clone(), i);
                        subsets.push(target.clone());
                        queue.push_back(target.clone());
                        i
                    }
                };
                transitions.push((from_index, symbol.clone(), to_index));
            }
        }

        let accepting: Vec<usize> = subsets
            .iter()
            .enumerate()
            .filter(|(_, subset)| subset.iter().any(|s| self.accepting.contains(s)))
            .map(|(i, _)| i)
            .collect();
        let mut dfa = Dfa::new(subsets.len().max(1), 0, accepting);
        for (from, symbol, to) in transitions {
            dfa.set_transition(from, symbol, to);
        }
        dfa
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(parts: &[&str]) -> Vec<Symbol> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    /// NFA for words over {a,b} whose second-to-last symbol is `a`.
    fn second_to_last_a() -> Nfa {
        let mut nfa = Nfa::new(3, vec![0], vec![2]);
        for s in ["a", "b"] {
            nfa.add_transition(0, s, 0);
            nfa.add_transition(1, s, 2);
        }
        nfa.add_transition(0, "a", 1);
        nfa
    }

    #[test]
    fn nfa_acceptance() {
        let nfa = second_to_last_a();
        assert!(nfa.accepts(&word(&["a", "b"])));
        assert!(nfa.accepts(&word(&["b", "a", "a"])));
        assert!(!nfa.accepts(&word(&["b", "b"])));
        assert!(!nfa.accepts(&word(&["a"])));
        assert!(!nfa.accepts(&word(&[])));
    }

    #[test]
    fn subset_construction_preserves_language() {
        let nfa = second_to_last_a();
        let dfa = nfa.determinize();
        // exhaustive comparison on all words up to length 5
        let alphabet = ["a", "b"];
        let mut words: Vec<Vec<Symbol>> = vec![vec![]];
        for _ in 0..5 {
            let mut next = Vec::new();
            for w in &words {
                for s in alphabet {
                    let mut e = w.clone();
                    e.push(s.to_string());
                    next.push(e);
                }
            }
            words.extend(next.clone());
            words.dedup();
        }
        for w in &words {
            assert_eq!(nfa.accepts(w), dfa.accepts(w), "word {w:?}");
        }
    }

    #[test]
    fn multiple_start_states() {
        let mut nfa = Nfa::new(2, vec![0, 1], vec![1]);
        nfa.add_transition(0, "a", 1);
        // accepting because start set already intersects accepting states
        assert!(nfa.accepts(&word(&[])));
        assert!(nfa.accepts(&word(&["a"])));
        let dfa = nfa.determinize();
        assert!(dfa.accepts(&word(&[])));
    }

    #[test]
    fn empty_nfa_determinizes_to_empty_language() {
        let nfa = Nfa::new(1, vec![0], vec![]);
        let dfa = nfa.determinize();
        assert!(dfa.is_empty());
    }

    #[test]
    fn accepting_marker_can_be_added_later() {
        let mut nfa = Nfa::new(2, vec![0], vec![]);
        nfa.add_transition(0, "a", 1);
        assert!(!nfa.accepts(&word(&["a"])));
        nfa.add_accepting(1);
        assert!(nfa.accepts(&word(&["a"])));
        assert_eq!(nfa.num_states(), 2);
        assert_eq!(nfa.alphabet().len(), 1);
    }
}
