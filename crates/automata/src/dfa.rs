//! Deterministic finite automata.

use crate::Symbol;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// A deterministic finite automaton over a string alphabet.
///
/// Missing transitions are treated as transitions to an implicit dead
/// (non-accepting, absorbing) state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    num_states: usize,
    start: usize,
    accepting: BTreeSet<usize>,
    transitions: BTreeMap<(usize, Symbol), usize>,
}

impl Dfa {
    /// Creates a DFA with `num_states` states, a start state and accepting states.
    pub fn new(num_states: usize, start: usize, accepting: Vec<usize>) -> Self {
        assert!(start < num_states, "start state out of range");
        Dfa {
            num_states,
            start,
            accepting: accepting.into_iter().collect(),
            transitions: BTreeMap::new(),
        }
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The start state.
    pub fn start(&self) -> usize {
        self.start
    }

    /// True if `state` is accepting.
    pub fn is_accepting(&self, state: usize) -> bool {
        self.accepting.contains(&state)
    }

    /// Sets the transition `from --symbol--> to`.
    pub fn set_transition(&mut self, from: usize, symbol: impl Into<Symbol>, to: usize) {
        assert!(from < self.num_states && to < self.num_states);
        self.transitions.insert((from, symbol.into()), to);
    }

    /// The successor of `state` on `symbol`, if defined.
    pub fn step(&self, state: usize, symbol: &str) -> Option<usize> {
        self.transitions.get(&(state, symbol.to_string())).copied()
    }

    /// The alphabet: every symbol mentioned by some transition.
    pub fn alphabet(&self) -> BTreeSet<Symbol> {
        self.transitions.keys().map(|(_, s)| s.clone()).collect()
    }

    /// True if the DFA accepts the word.
    pub fn accepts(&self, word: &[Symbol]) -> bool {
        let mut state = self.start;
        for symbol in word {
            match self.step(state, symbol) {
                Some(next) => state = next,
                None => return false,
            }
        }
        self.is_accepting(state)
    }

    /// The states reachable from the start state.
    pub fn reachable_states(&self) -> BTreeSet<usize> {
        let mut seen = BTreeSet::from([self.start]);
        let mut queue = VecDeque::from([self.start]);
        while let Some(state) = queue.pop_front() {
            for ((from, _), &to) in &self.transitions {
                if *from == state && seen.insert(to) {
                    queue.push_back(to);
                }
            }
        }
        seen
    }

    /// The states from which an accepting state is reachable ("live" states).
    pub fn live_states(&self) -> BTreeSet<usize> {
        // reverse reachability from accepting states
        let mut live: BTreeSet<usize> = self.accepting.clone();
        loop {
            let mut changed = false;
            for ((from, _), to) in &self.transitions {
                if live.contains(to) && live.insert(*from) {
                    changed = true;
                }
            }
            if !changed {
                break;
            }
        }
        live
    }

    /// True if the accepted language is empty.
    pub fn is_empty(&self) -> bool {
        self.reachable_states()
            .intersection(&self.live_states())
            .next()
            .is_none()
    }

    /// True if the accepted language is prefix-closed: every prefix of an
    /// accepted word is accepted.
    ///
    /// Structurally: no non-accepting state that is both reachable and live
    /// may exist (from a non-accepting state on the way to acceptance, the
    /// prefix read so far would be rejected).
    pub fn is_prefix_closed(&self) -> bool {
        let reachable = self.reachable_states();
        let live = self.live_states();
        reachable
            .intersection(&live)
            .all(|state| self.is_accepting(*state))
    }

    /// True if every cycle among *useful* (reachable and live) states is a
    /// self loop.  This is the structural characterization of the output
    /// languages of propositional Spocus transducers (§3.1): cumulative state
    /// means a run can repeat its current step but can never return to an
    /// earlier, different configuration.
    pub fn has_only_self_loop_cycles(&self) -> bool {
        let reachable = self.reachable_states();
        let live = self.live_states();
        let useful: BTreeSet<usize> = reachable.intersection(&live).copied().collect();
        // Kahn-style cycle detection on the graph with self loops removed.
        let mut indegree: BTreeMap<usize, usize> = useful.iter().map(|&s| (s, 0)).collect();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        for ((from, _), &to) in &self.transitions {
            if *from != to && useful.contains(from) && useful.contains(&to) {
                edges.push((*from, to));
            }
        }
        edges.sort();
        edges.dedup();
        for &(_, to) in &edges {
            *indegree.get_mut(&to).expect("useful state") += 1;
        }
        let mut queue: VecDeque<usize> = indegree
            .iter()
            .filter(|(_, &d)| d == 0)
            .map(|(&s, _)| s)
            .collect();
        let mut removed = 0usize;
        while let Some(state) = queue.pop_front() {
            removed += 1;
            for &(from, to) in &edges {
                if from == state {
                    let d = indegree.get_mut(&to).expect("useful state");
                    *d -= 1;
                    if *d == 0 {
                        queue.push_back(to);
                    }
                }
            }
        }
        removed == useful.len()
    }

    /// Enumerates all accepted words of length at most `max_len`, in
    /// length-lexicographic order.
    pub fn words_up_to(&self, max_len: usize) -> Vec<Vec<Symbol>> {
        let alphabet: Vec<Symbol> = self.alphabet().into_iter().collect();
        let mut out = Vec::new();
        let mut frontier: Vec<(usize, Vec<Symbol>)> = vec![(self.start, Vec::new())];
        if self.is_accepting(self.start) {
            out.push(Vec::new());
        }
        for _ in 0..max_len {
            let mut next = Vec::new();
            for (state, word) in &frontier {
                for symbol in &alphabet {
                    if let Some(to) = self.step(*state, symbol) {
                        let mut extended = word.clone();
                        extended.push(symbol.clone());
                        if self.is_accepting(to) {
                            out.push(extended.clone());
                        }
                        next.push((to, extended));
                    }
                }
            }
            frontier = next;
        }
        out
    }

    /// The product DFA accepting the intersection of the two languages.
    /// Both automata should share an alphabet; symbols missing from either
    /// lead to the implicit dead state.
    pub fn intersection(&self, other: &Dfa) -> Dfa {
        let alphabet: BTreeSet<Symbol> =
            self.alphabet().union(&other.alphabet()).cloned().collect();
        let index = |a: usize, b: usize| a * other.num_states + b;
        let mut out = Dfa::new(
            self.num_states * other.num_states,
            index(self.start, other.start),
            Vec::new(),
        );
        for a in 0..self.num_states {
            for b in 0..other.num_states {
                if self.is_accepting(a) && other.is_accepting(b) {
                    out.accepting.insert(index(a, b));
                }
                for symbol in &alphabet {
                    if let (Some(na), Some(nb)) = (self.step(a, symbol), other.step(b, symbol)) {
                        out.set_transition(index(a, b), symbol.clone(), index(na, nb));
                    }
                }
            }
        }
        out
    }

    /// True if the two DFAs accept the same language (checked over the union
    /// of their alphabets by breadth-first exploration of the product).
    pub fn equivalent(&self, other: &Dfa) -> bool {
        let alphabet: BTreeSet<Symbol> =
            self.alphabet().union(&other.alphabet()).cloned().collect();
        // Pair exploration with an explicit dead marker (None).
        let start = (Some(self.start), Some(other.start));
        let mut seen = BTreeSet::from([start]);
        let mut queue = VecDeque::from([start]);
        while let Some((a, b)) = queue.pop_front() {
            let a_acc = a.is_some_and(|s| self.is_accepting(s));
            let b_acc = b.is_some_and(|s| other.is_accepting(s));
            if a_acc != b_acc {
                return false;
            }
            for symbol in &alphabet {
                let na = a.and_then(|s| self.step(s, symbol));
                let nb = b.and_then(|s| other.step(s, symbol));
                if (na.is_some() || nb.is_some()) && seen.insert((na, nb)) {
                    queue.push_back((na, nb));
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn word(parts: &[&str]) -> Vec<Symbol> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    /// DFA for the prefix closure of `a b*` (accepts ε, a, ab, abb, …).
    fn prefix_a_bstar() -> Dfa {
        let mut dfa = Dfa::new(2, 0, vec![0, 1]);
        dfa.set_transition(0, "a", 1);
        dfa.set_transition(1, "b", 1);
        dfa
    }

    #[test]
    fn accepts_and_rejects() {
        let dfa = prefix_a_bstar();
        assert!(dfa.accepts(&word(&[])));
        assert!(dfa.accepts(&word(&["a"])));
        assert!(dfa.accepts(&word(&["a", "b", "b"])));
        assert!(!dfa.accepts(&word(&["b"])));
        assert!(!dfa.accepts(&word(&["a", "a"])));
    }

    #[test]
    fn reachability_and_liveness() {
        let mut dfa = Dfa::new(4, 0, vec![1]);
        dfa.set_transition(0, "a", 1);
        dfa.set_transition(2, "a", 1); // unreachable state 2
        dfa.set_transition(0, "b", 3); // state 3 is a trap
        assert_eq!(dfa.reachable_states(), BTreeSet::from([0, 1, 3]));
        assert!(dfa.live_states().contains(&0));
        assert!(!dfa.live_states().contains(&3));
        assert!(!dfa.is_empty());
    }

    #[test]
    fn empty_language_detected() {
        let mut dfa = Dfa::new(2, 0, vec![1]);
        dfa.set_transition(1, "a", 1); // accepting state unreachable
        assert!(dfa.is_empty());
        let dfa2 = Dfa::new(1, 0, vec![]);
        assert!(dfa2.is_empty());
    }

    #[test]
    fn prefix_closure_check() {
        assert!(prefix_a_bstar().is_prefix_closed());
        // Language {ab}: the prefix "a" is not accepted.
        let mut dfa = Dfa::new(3, 0, vec![2]);
        dfa.set_transition(0, "a", 1);
        dfa.set_transition(1, "b", 2);
        assert!(!dfa.is_prefix_closed());
    }

    #[test]
    fn self_loop_only_analysis_ignores_useless_states() {
        // A 2-cycle between dead states must not affect the verdict.
        let mut dfa = Dfa::new(4, 0, vec![0, 1]);
        dfa.set_transition(0, "a", 1);
        dfa.set_transition(1, "b", 1);
        dfa.set_transition(2, "a", 3);
        dfa.set_transition(3, "a", 2);
        assert!(dfa.has_only_self_loop_cycles());
    }

    #[test]
    fn genuine_cycle_is_detected() {
        let mut dfa = Dfa::new(2, 0, vec![0, 1]);
        dfa.set_transition(0, "a", 1);
        dfa.set_transition(1, "b", 0);
        assert!(!dfa.has_only_self_loop_cycles());
    }

    #[test]
    fn word_enumeration_is_complete_up_to_length() {
        let dfa = prefix_a_bstar();
        let words = dfa.words_up_to(3);
        assert!(words.contains(&word(&[])));
        assert!(words.contains(&word(&["a"])));
        assert!(words.contains(&word(&["a", "b"])));
        assert!(words.contains(&word(&["a", "b", "b"])));
        assert_eq!(words.len(), 4);
    }

    #[test]
    fn intersection_and_equivalence() {
        let a = prefix_a_bstar();
        // prefix closure of a b* c restricted to {a,b}: same as prefix(a b*)
        let mut b = Dfa::new(3, 0, vec![0, 1, 2]);
        b.set_transition(0, "a", 1);
        b.set_transition(1, "b", 1);
        b.set_transition(1, "c", 2);
        let product = a.intersection(&b);
        assert!(product.accepts(&word(&["a", "b"])));
        assert!(!product.accepts(&word(&["a", "b", "c"]))); // a's alphabet has no c
        assert!(!a.equivalent(&b)); // b accepts abc
        let c = prefix_a_bstar();
        assert!(a.equivalent(&c));
    }

    #[test]
    fn equivalence_distinguishes_subtle_differences() {
        let a = prefix_a_bstar();
        let mut b = prefix_a_bstar();
        b.set_transition(1, "a", 1); // now accepts "aa"
        assert!(!a.equivalent(&b));
    }
}
