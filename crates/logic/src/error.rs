//! Errors produced by the logic layer.

use std::fmt;

/// Errors from formula analysis, evaluation, and the Bernays–Schönfinkel
/// decision procedure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicError {
    /// A sentence was required but the formula has free variables.
    NotASentence {
        /// The free variables found.
        free_variables: Vec<String>,
    },
    /// The sentence is not in the ∃*∀* (Bernays–Schönfinkel) class: an
    /// existential quantifier occurs (positively) inside the scope of a
    /// universal quantifier.
    NotBernaysSchonfinkel,
    /// A relation symbol was used with inconsistent arities.
    InconsistentArity {
        /// The relation symbol.
        relation: String,
        /// One of the observed arities.
        first: usize,
        /// A conflicting observed arity.
        second: usize,
    },
    /// Evaluation referenced a variable with no binding.
    UnboundVariable {
        /// The variable name.
        name: String,
    },
    /// The grounding exceeded the configured size budget.
    GroundingTooLarge {
        /// Number of propositional nodes the grounding would have produced.
        estimated_nodes: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl fmt::Display for LogicError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogicError::NotASentence { free_variables } => {
                write!(
                    f,
                    "formula is not a sentence; free variables: {free_variables:?}"
                )
            }
            LogicError::NotBernaysSchonfinkel => write!(
                f,
                "sentence is not in the Bernays-Schonfinkel (∃*∀*) prefix class"
            ),
            LogicError::InconsistentArity {
                relation,
                first,
                second,
            } => write!(
                f,
                "relation `{relation}` used with inconsistent arities {first} and {second}"
            ),
            LogicError::UnboundVariable { name } => {
                write!(f, "unbound variable `{name}` during evaluation")
            }
            LogicError::GroundingTooLarge {
                estimated_nodes,
                limit,
            } => write!(
                f,
                "grounding would produce {estimated_nodes} nodes, exceeding the limit of {limit}"
            ),
        }
    }
}

impl std::error::Error for LogicError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_mention_key_data() {
        let e = LogicError::NotASentence {
            free_variables: vec!["x".into()],
        };
        assert!(e.to_string().contains('x'));
        assert!(LogicError::NotBernaysSchonfinkel
            .to_string()
            .contains("Bernays"));
        let e = LogicError::InconsistentArity {
            relation: "pay".into(),
            first: 2,
            second: 3,
        };
        assert!(e.to_string().contains("pay"));
        let e = LogicError::UnboundVariable { name: "y".into() };
        assert!(e.to_string().contains('y'));
        let e = LogicError::GroundingTooLarge {
            estimated_nodes: 10,
            limit: 5,
        };
        assert!(e.to_string().contains("10"));
    }
}
