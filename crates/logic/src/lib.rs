//! # rtx-logic
//!
//! First-order logic substrate for the verification procedures of
//! *Relational Transducers for Electronic Commerce*.
//!
//! Every decision procedure in the paper (log validation — Theorem 3.1, goal
//! reachability — Theorem 3.2, temporal properties — Theorem 3.3,
//! customization containment — Theorem 3.5, error-free-run verification —
//! Theorems 4.4/4.6) is proved decidable by reduction to finite
//! satisfiability of sentences in the **Bernays–Schönfinkel prefix class**
//! ∃\*∀\*FO with relational vocabulary, constants and equality.  This crate
//! provides:
//!
//! * [`Term`] and [`Formula`] — first-order syntax over the relational
//!   vocabulary of `rtx-relational`, with equality, inequality and constants;
//! * [`FiniteStructure`] — finite relational structures and formula
//!   evaluation over them (used both by the brute-force reference
//!   implementations in tests and for witness models);
//! * negation normal form, free-variable analysis, and the ∃\*∀\* class check;
//! * [`bernays`] — the small-model grounding of ∃\*∀\* sentences
//!   (\[Ram30\]/\[Lew80\] as cited in the paper) into propositional formulas,
//!   solved with `rtx-sat`, with witness-model extraction for the free
//!   (uninterpreted) relation symbols.
//!
//! The unique-name assumption of the relational setting is adopted
//! throughout: distinct constants denote distinct domain elements.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bernays;
mod error;
mod formula;
mod structure;
mod term;

pub use bernays::{solve_bs, BsOutcome, BsProblem, GroundingStats};
pub use error::LogicError;
pub use formula::Formula;
pub use structure::FiniteStructure;
pub use term::Term;

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::Value;

    #[test]
    fn end_to_end_satisfiability() {
        // ∃x ( R(x) ∧ ¬S(x) ) with R, S free is satisfiable.
        let f = Formula::exists(
            ["x"],
            Formula::and(vec![
                Formula::atom("R", [Term::var("x")]),
                Formula::not(Formula::atom("S", [Term::var("x")])),
            ]),
        );
        let problem = BsProblem::new(f);
        match solve_bs(&problem).unwrap() {
            BsOutcome::Satisfiable(model) => {
                assert!(!model.relation_tuples("R").is_empty());
            }
            BsOutcome::Unsatisfiable => panic!("expected satisfiable"),
        }
    }

    #[test]
    fn end_to_end_unsatisfiability() {
        // ∃x R(x) ∧ ∀y ¬R(y) is unsatisfiable.
        let f = Formula::and(vec![
            Formula::exists(["x"], Formula::atom("R", [Term::var("x")])),
            Formula::forall(["y"], Formula::not(Formula::atom("R", [Term::var("y")]))),
        ]);
        let problem = BsProblem::new(f);
        assert!(matches!(
            solve_bs(&problem).unwrap(),
            BsOutcome::Unsatisfiable
        ));
    }

    #[test]
    fn fixed_relations_are_closed_world() {
        // price(time, 855) is fixed; ∃x price(x, 845) must be unsatisfiable.
        let mut problem = BsProblem::new(Formula::exists(
            ["x"],
            Formula::atom("price", [Term::var("x"), Term::constant(Value::int(845))]),
        ));
        problem.fix_relation("price", 2, [vec![Value::str("time"), Value::int(855)]]);
        assert!(matches!(
            solve_bs(&problem).unwrap(),
            BsOutcome::Unsatisfiable
        ));
    }
}
