//! Finite relational structures (models).

use rtx_relational::{Instance, RelationName, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A finite first-order structure over the relational vocabulary: a finite
/// domain of [`Value`]s together with an interpretation of relation symbols
/// as sets of tuples (closed-world: missing tuples are false).
///
/// Structures serve three roles:
///
/// * as witness models returned by the Bernays–Schönfinkel decision
///   procedure (Theorem 3.1's witness input sequences are read off such a
///   model);
/// * as the brute-force reference semantics for [`crate::Formula::eval`];
/// * as the bridge between relational [`Instance`]s and logic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FiniteStructure {
    domain: Vec<Value>,
    relations: BTreeMap<RelationName, BTreeSet<Vec<Value>>>,
}

impl FiniteStructure {
    /// Creates a structure with the given domain and an empty interpretation.
    pub fn new(domain: Vec<Value>) -> Self {
        let mut dedup = Vec::new();
        for v in domain {
            if !dedup.contains(&v) {
                dedup.push(v);
            }
        }
        FiniteStructure {
            domain: dedup,
            relations: BTreeMap::new(),
        }
    }

    /// Builds a structure whose relations are taken from a relational
    /// [`Instance`] and whose domain is the given set of values (usually the
    /// active domain of the instance plus any constants of interest).
    pub fn from_instance(domain: Vec<Value>, instance: &Instance) -> Self {
        let mut s = FiniteStructure::new(domain);
        for (name, rel) in instance.iter() {
            for tuple in rel.iter() {
                s.add_fact(name.clone(), tuple.values().to_vec());
            }
        }
        s
    }

    /// The domain, in insertion order.
    pub fn domain(&self) -> &[Value] {
        &self.domain
    }

    /// Adds a value to the domain if not already present.
    pub fn add_domain_value(&mut self, value: Value) {
        if !self.domain.contains(&value) {
            self.domain.push(value);
        }
    }

    /// Adds a fact `R(values)`.  Values outside the domain are added to it.
    pub fn add_fact(&mut self, relation: impl Into<RelationName>, values: Vec<Value>) {
        for v in &values {
            self.add_domain_value(*v);
        }
        self.relations
            .entry(relation.into())
            .or_default()
            .insert(values);
    }

    /// True if the fact `R(values)` holds.
    pub fn holds(&self, relation: &RelationName, values: &[Value]) -> bool {
        self.relations
            .get(relation)
            .is_some_and(|set| set.contains(values))
    }

    /// The tuples of a relation (empty if the relation is unknown).
    pub fn relation_tuples(&self, relation: impl Into<RelationName>) -> BTreeSet<Vec<Value>> {
        self.relations
            .get(&relation.into())
            .cloned()
            .unwrap_or_default()
    }

    /// The relation names with at least one tuple.
    pub fn nonempty_relations(&self) -> Vec<RelationName> {
        self.relations
            .iter()
            .filter(|(_, set)| !set.is_empty())
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Total number of facts.
    pub fn total_facts(&self) -> usize {
        self.relations.values().map(BTreeSet::len).sum()
    }
}

impl fmt::Display for FiniteStructure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "domain = {{")?;
        for (i, v) in self.domain.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        writeln!(f, "}}")?;
        for (name, set) in &self.relations {
            if set.is_empty() {
                continue;
            }
            write!(f, "{name} = {{")?;
            for (i, tuple) in set.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "(")?;
                for (j, v) in tuple.iter().enumerate() {
                    if j > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, ")")?;
            }
            writeln!(f, "}}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::{Schema, Tuple};

    #[test]
    fn facts_and_membership() {
        let mut s = FiniteStructure::new(vec![Value::str("a")]);
        assert!(!s.holds(&"R".into(), &[Value::str("a")]));
        s.add_fact("R", vec![Value::str("a"), Value::str("b")]);
        assert!(s.holds(&"R".into(), &[Value::str("a"), Value::str("b")]));
        // b was added to the domain automatically
        assert_eq!(s.domain().len(), 2);
        assert_eq!(s.total_facts(), 1);
        assert_eq!(s.nonempty_relations(), vec![RelationName::new("R")]);
    }

    #[test]
    fn domain_deduplication() {
        let s = FiniteStructure::new(vec![Value::str("a"), Value::str("a"), Value::int(1)]);
        assert_eq!(s.domain().len(), 2);
        let mut s = s;
        s.add_domain_value(Value::str("a"));
        assert_eq!(s.domain().len(), 2);
    }

    #[test]
    fn from_instance_copies_facts() {
        let schema = Schema::from_pairs([("price", 2)]).unwrap();
        let mut inst = Instance::empty(&schema);
        inst.insert(
            "price",
            Tuple::new(vec![Value::str("time"), Value::int(855)]),
        )
        .unwrap();
        let s = FiniteStructure::from_instance(vec![Value::str("extra")], &inst);
        assert!(s.holds(&"price".into(), &[Value::str("time"), Value::int(855)]));
        assert!(s.domain().contains(&Value::str("extra")));
        assert!(s.domain().contains(&Value::int(855)));
    }

    #[test]
    fn relation_tuples_of_unknown_relation_is_empty() {
        let s = FiniteStructure::new(vec![]);
        assert!(s.relation_tuples("missing").is_empty());
    }

    #[test]
    fn display_lists_domain_and_relations() {
        let mut s = FiniteStructure::new(vec![Value::str("a")]);
        s.add_fact("R", vec![Value::str("a")]);
        let text = s.to_string();
        assert!(text.contains("domain"));
        assert!(text.contains("R = {(a)}"));
    }
}
