//! Finite satisfiability of Bernays–Schönfinkel (∃\*∀\*) sentences.
//!
//! This is the computational heart of every decidability theorem in the
//! paper.  The decision procedure follows the classical argument the paper
//! cites (\[Ram30\], \[Lew80\], \[BGG97\]): a satisfiable ∃^k∀\* sentence over a
//! relational vocabulary with constants has a model whose domain consists of
//! (at most) the constants plus `max(1, k)` additional elements.  Under the
//! unique-name assumption of the relational setting we therefore:
//!
//! 1. normalise the sentence to negation normal form and verify the ∃\*∀\*
//!    shape (existentials never under universals);
//! 2. enumerate candidate domain sizes from `max(1, |C|)` up to `|C| + k`
//!    (where `C` is the set of constants and `k` the number of existential
//!    variables), instantiating fresh anonymous elements for the non-constant
//!    part of the domain;
//! 3. ground the sentence over the candidate domain: quantifiers expand to
//!    finite conjunctions/disjunctions, atoms over *fixed* relations (the
//!    given database and log in the paper's reductions) evaluate to constants,
//!    and atoms over *free* relations (the unknown input sequence) become
//!    propositional variables;
//! 4. hand the grounded formula to the `rtx-sat` solver; a satisfying
//!    assignment is read back as a [`FiniteStructure`] witness model.
//!
//! The domain-size sweep (rather than grounding only at the maximum size) is
//! required for completeness: a sentence such as `∀x∀y x = y` is satisfiable
//! only in a one-element domain.

use crate::{FiniteStructure, Formula, LogicError, Term};
use rtx_relational::{RelationName, Value};
use rtx_sat::{solve_formula, PropFormula, SatResult, Var};
use std::collections::{BTreeMap, BTreeSet};

/// Default budget on the number of propositional nodes a single grounding may
/// produce.  The NEXPTIME lower bound is real: exceeding the budget returns
/// [`LogicError::GroundingTooLarge`] instead of looping for hours.
pub const DEFAULT_NODE_LIMIT: usize = 5_000_000;

/// A Bernays–Schönfinkel satisfiability problem.
#[derive(Debug, Clone)]
pub struct BsProblem {
    sentence: Formula,
    /// Relations with a fixed, closed-world interpretation (name → (arity, tuples)).
    fixed: BTreeMap<RelationName, (usize, BTreeSet<Vec<Value>>)>,
    /// Extra constants that must be part of every candidate domain (e.g. the
    /// active domain of the database in Theorem 3.1).
    extra_constants: BTreeSet<Value>,
    node_limit: usize,
}

impl BsProblem {
    /// Creates a problem with no fixed relations and no extra constants.
    pub fn new(sentence: Formula) -> Self {
        BsProblem {
            sentence,
            fixed: BTreeMap::new(),
            extra_constants: BTreeSet::new(),
            node_limit: DEFAULT_NODE_LIMIT,
        }
    }

    /// The sentence being decided.
    pub fn sentence(&self) -> &Formula {
        &self.sentence
    }

    /// Fixes the interpretation of a relation (closed world).  Any values in
    /// the tuples are added to the constant pool.
    pub fn fix_relation<N, I>(&mut self, name: N, arity: usize, tuples: I) -> &mut Self
    where
        N: Into<RelationName>,
        I: IntoIterator<Item = Vec<Value>>,
    {
        let set: BTreeSet<Vec<Value>> = tuples.into_iter().collect();
        for t in &set {
            self.extra_constants.extend(t.iter().cloned());
        }
        self.fixed.insert(name.into(), (arity, set));
        self
    }

    /// Adds constants that must appear in every candidate domain.
    pub fn add_constants<I>(&mut self, values: I) -> &mut Self
    where
        I: IntoIterator<Item = Value>,
    {
        self.extra_constants.extend(values);
        self
    }

    /// Overrides the grounding node budget.
    pub fn set_node_limit(&mut self, limit: usize) -> &mut Self {
        self.node_limit = limit;
        self
    }

    /// True if `name` has a fixed interpretation.
    pub fn is_fixed(&self, name: &RelationName) -> bool {
        self.fixed.contains_key(name)
    }
}

/// The outcome of a satisfiability check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BsOutcome {
    /// Satisfiable; the witness model interprets both the fixed and the free
    /// relations over the candidate domain.
    Satisfiable(FiniteStructure),
    /// No model exists (over any domain, by the small-model property).
    Unsatisfiable,
}

impl BsOutcome {
    /// True for [`BsOutcome::Satisfiable`].
    pub fn is_satisfiable(&self) -> bool {
        matches!(self, BsOutcome::Satisfiable(_))
    }
}

/// Statistics about the grounding, for the benchmark harness.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroundingStats {
    /// Domain size of the last grounding attempted.
    pub domain_size: usize,
    /// Number of propositional nodes in the last grounded formula.
    pub ground_nodes: usize,
    /// Number of distinct ground atoms (propositional variables) created.
    pub ground_atoms: usize,
    /// Number of candidate domain sizes tried.
    pub domains_tried: usize,
}

/// Decides satisfiability of a [`BsProblem`].
pub fn solve_bs(problem: &BsProblem) -> Result<BsOutcome, LogicError> {
    solve_bs_with_stats(problem).map(|(outcome, _)| outcome)
}

/// Decides satisfiability and reports grounding statistics.
pub fn solve_bs_with_stats(problem: &BsProblem) -> Result<(BsOutcome, GroundingStats), LogicError> {
    let free = problem.sentence.free_variables();
    if !free.is_empty() {
        return Err(LogicError::NotASentence {
            free_variables: free.into_iter().collect(),
        });
    }
    if !problem.sentence.is_bernays_schonfinkel() {
        return Err(LogicError::NotBernaysSchonfinkel);
    }
    // Arity consistency check up front for clearer errors.
    problem.sentence.relations()?;

    let nnf = problem.sentence.nnf();
    let mut constants: Vec<Value> = Vec::new();
    for c in problem
        .sentence
        .constants()
        .into_iter()
        .chain(problem.extra_constants.iter().cloned())
    {
        if !constants.contains(&c) {
            constants.push(c);
        }
    }
    let k = problem.sentence.existential_width();

    let min_size = constants.len().max(1);
    let max_size = (constants.len() + k).max(1);

    let mut stats = GroundingStats::default();
    for size in min_size..=max_size {
        let domain = build_domain(&constants, size);
        stats.domains_tried += 1;
        stats.domain_size = domain.len();

        let mut grounder = Grounder::new(problem, &domain, problem.node_limit);
        let prop = grounder.ground(&nnf, &BTreeMap::new())?;
        stats.ground_nodes = grounder.nodes;
        stats.ground_atoms = grounder.atoms.len();

        match solve_formula(&prop) {
            SatResult::Sat(model) => {
                let mut witness = FiniteStructure::new(domain.clone());
                // Fixed relations keep their given interpretation.
                for (name, (_arity, tuples)) in &problem.fixed {
                    for t in tuples {
                        witness.add_fact(name.clone(), t.clone());
                    }
                }
                // Free relations are read off the SAT model.
                for ((name, tuple), var) in &grounder.atoms {
                    if model.value(*var) == Some(true) {
                        witness.add_fact(name.clone(), tuple.clone());
                    }
                }
                return Ok((BsOutcome::Satisfiable(witness), stats));
            }
            SatResult::Unsat => continue,
        }
    }
    Ok((BsOutcome::Unsatisfiable, stats))
}

/// Builds a domain of exactly `size` values: all constants first, then fresh
/// anonymous elements guaranteed not to collide with any constant.
fn build_domain(constants: &[Value], size: usize) -> Vec<Value> {
    let mut domain: Vec<Value> = constants.to_vec();
    let mut i = 0usize;
    while domain.len() < size {
        let candidate = Value::str(format!("⋆{i}"));
        if !domain.contains(&candidate) {
            domain.push(candidate);
        }
        i += 1;
    }
    domain
}

struct Grounder<'a> {
    problem: &'a BsProblem,
    domain: &'a [Value],
    node_limit: usize,
    nodes: usize,
    atoms: BTreeMap<(RelationName, Vec<Value>), Var>,
}

impl<'a> Grounder<'a> {
    fn new(problem: &'a BsProblem, domain: &'a [Value], node_limit: usize) -> Self {
        Grounder {
            problem,
            domain,
            node_limit,
            nodes: 0,
            atoms: BTreeMap::new(),
        }
    }

    fn bump(&mut self, by: usize) -> Result<(), LogicError> {
        self.nodes += by;
        if self.nodes > self.node_limit {
            Err(LogicError::GroundingTooLarge {
                estimated_nodes: self.nodes,
                limit: self.node_limit,
            })
        } else {
            Ok(())
        }
    }

    fn atom_var(&mut self, relation: &RelationName, values: Vec<Value>) -> Var {
        let next_index = self.atoms.len() as u32;
        *self
            .atoms
            .entry((relation.clone(), values))
            .or_insert(Var(next_index))
    }

    fn resolve(&self, term: &Term, env: &BTreeMap<String, Value>) -> Result<Value, LogicError> {
        match term {
            Term::Const(v) => Ok(*v),
            Term::Var(name) => env
                .get(name)
                .cloned()
                .ok_or_else(|| LogicError::UnboundVariable { name: name.clone() }),
        }
    }

    /// Grounds an NNF formula under a variable environment.
    fn ground(
        &mut self,
        formula: &Formula,
        env: &BTreeMap<String, Value>,
    ) -> Result<PropFormula, LogicError> {
        self.bump(1)?;
        match formula {
            Formula::True => Ok(PropFormula::True),
            Formula::False => Ok(PropFormula::False),
            Formula::Eq(a, b) => {
                let av = self.resolve(a, env)?;
                let bv = self.resolve(b, env)?;
                Ok(if av == bv {
                    PropFormula::True
                } else {
                    PropFormula::False
                })
            }
            Formula::Atom { relation, args } => {
                let values = args
                    .iter()
                    .map(|t| self.resolve(t, env))
                    .collect::<Result<Vec<Value>, LogicError>>()?;
                if let Some((arity, tuples)) = self.problem.fixed.get(relation) {
                    if *arity != values.len() {
                        return Err(LogicError::InconsistentArity {
                            relation: relation.as_str().to_string(),
                            first: *arity,
                            second: values.len(),
                        });
                    }
                    Ok(if tuples.contains(&values) {
                        PropFormula::True
                    } else {
                        PropFormula::False
                    })
                } else {
                    Ok(PropFormula::Atom(self.atom_var(relation, values)))
                }
            }
            Formula::Not(inner) => {
                let g = self.ground(inner, env)?;
                Ok(PropFormula::not(g))
            }
            Formula::And(fs) => {
                let mut parts = Vec::with_capacity(fs.len());
                for f in fs {
                    parts.push(self.ground(f, env)?);
                }
                Ok(PropFormula::and(parts))
            }
            Formula::Or(fs) => {
                let mut parts = Vec::with_capacity(fs.len());
                for f in fs {
                    parts.push(self.ground(f, env)?);
                }
                Ok(PropFormula::or(parts))
            }
            Formula::Implies(a, b) => {
                let ga = self.ground(a, env)?;
                let gb = self.ground(b, env)?;
                Ok(PropFormula::implies(ga, gb))
            }
            Formula::Exists(vars, body) => self.ground_quantifier(vars, body, env, true),
            Formula::Forall(vars, body) => self.ground_quantifier(vars, body, env, false),
        }
    }

    fn ground_quantifier(
        &mut self,
        vars: &[String],
        body: &Formula,
        env: &BTreeMap<String, Value>,
        existential: bool,
    ) -> Result<PropFormula, LogicError> {
        if vars.is_empty() {
            return self.ground(body, env);
        }
        let (first, rest) = vars.split_first().expect("non-empty");
        let mut parts = Vec::with_capacity(self.domain.len());
        for value in self.domain.iter() {
            let mut inner = env.clone();
            inner.insert(first.clone(), *value);
            let grounded = if rest.is_empty() {
                self.ground(body, &inner)?
            } else {
                self.ground_quantifier(rest, body, &inner, existential)?
            };
            parts.push(grounded);
        }
        Ok(if existential {
            PropFormula::or(parts)
        } else {
            PropFormula::and(parts)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn atom(name: &str, vars: &[&str]) -> Formula {
        Formula::atom(name, vars.iter().map(|v| Term::var(*v)))
    }

    #[test]
    fn rejects_open_formulas() {
        let open = atom("R", &["x"]);
        assert!(matches!(
            solve_bs(&BsProblem::new(open)),
            Err(LogicError::NotASentence { .. })
        ));
    }

    #[test]
    fn rejects_non_bs_sentences() {
        let bad = Formula::forall(["y"], Formula::exists(["x"], atom("R", &["x", "y"])));
        assert!(matches!(
            solve_bs(&BsProblem::new(bad)),
            Err(LogicError::NotBernaysSchonfinkel)
        ));
    }

    #[test]
    fn pure_existential_satisfiable() {
        let f = Formula::exists(
            ["x", "y"],
            Formula::and(vec![
                atom("R", &["x", "y"]),
                Formula::neq(Term::var("x"), Term::var("y")),
            ]),
        );
        match solve_bs(&BsProblem::new(f)).unwrap() {
            BsOutcome::Satisfiable(model) => {
                let tuples = model.relation_tuples("R");
                assert!(tuples.iter().any(|t| t[0] != t[1]));
            }
            BsOutcome::Unsatisfiable => panic!("expected satisfiable"),
        }
    }

    #[test]
    fn forall_exists_conflict_is_unsat() {
        // ∃x R(x) ∧ ∀y (¬R(y)) is unsatisfiable.
        let f = Formula::and(vec![
            Formula::exists(["x"], atom("R", &["x"])),
            Formula::forall(["y"], Formula::not(atom("R", &["y"]))),
        ]);
        assert_eq!(
            solve_bs(&BsProblem::new(f)).unwrap(),
            BsOutcome::Unsatisfiable
        );
    }

    #[test]
    fn small_domain_needed_for_equality_sentences() {
        // ∀x∀y x = y is satisfiable only in a one-element domain; the sweep
        // must find it even though the constant pool is empty.
        let f = Formula::forall(["x", "y"], Formula::eq(Term::var("x"), Term::var("y")));
        assert!(solve_bs(&BsProblem::new(f)).unwrap().is_satisfiable());

        // But together with two distinct constants it is unsatisfiable.
        let g = Formula::and(vec![
            Formula::forall(["x", "y"], Formula::eq(Term::var("x"), Term::var("y"))),
            Formula::exists(
                ["x"],
                Formula::and(vec![
                    Formula::eq(Term::var("x"), Term::constant(Value::str("a"))),
                    Formula::neq(
                        Term::constant(Value::str("a")),
                        Term::constant(Value::str("b")),
                    ),
                ]),
            ),
        ]);
        // note: the inequality of constants a ≠ b is true under the unique
        // name assumption, so the sentence reduces to ∀x∀y x=y over a domain
        // containing both a and b — unsatisfiable.
        assert_eq!(
            solve_bs(&BsProblem::new(g)).unwrap(),
            BsOutcome::Unsatisfiable
        );
    }

    #[test]
    fn fixed_relations_constrain_models() {
        // db: price(time, 855).  Sentence: ∃x∃y (price(x, y) ∧ pay(x, y)), pay free.
        let f = Formula::exists(
            ["x", "y"],
            Formula::and(vec![
                Formula::atom("price", [Term::var("x"), Term::var("y")]),
                Formula::atom("pay", [Term::var("x"), Term::var("y")]),
            ]),
        );
        let mut p = BsProblem::new(f);
        p.fix_relation("price", 2, [vec![Value::str("time"), Value::int(855)]]);
        match solve_bs(&p).unwrap() {
            BsOutcome::Satisfiable(model) => {
                let pay = model.relation_tuples("pay");
                assert!(pay.contains(&vec![Value::str("time"), Value::int(855)]));
            }
            BsOutcome::Unsatisfiable => panic!("expected satisfiable"),
        }

        // With an empty price relation the same sentence is unsatisfiable.
        let f2 = Formula::exists(
            ["x", "y"],
            Formula::and(vec![
                Formula::atom("price", [Term::var("x"), Term::var("y")]),
                Formula::atom("pay", [Term::var("x"), Term::var("y")]),
            ]),
        );
        let mut p2 = BsProblem::new(f2);
        p2.fix_relation("price", 2, Vec::<Vec<Value>>::new());
        assert_eq!(solve_bs(&p2).unwrap(), BsOutcome::Unsatisfiable);
    }

    #[test]
    fn universal_constraints_on_free_relations() {
        // ∀x (R(x) → x = a) ∧ ∃x R(x): satisfiable, and the witness must have
        // R = {a}.
        let a = Value::str("a");
        let f = Formula::and(vec![
            Formula::forall(
                ["x"],
                Formula::implies(
                    atom("R", &["x"]),
                    Formula::eq(Term::var("x"), Term::constant(a)),
                ),
            ),
            Formula::exists(["x"], atom("R", &["x"])),
        ]);
        match solve_bs(&BsProblem::new(f)).unwrap() {
            BsOutcome::Satisfiable(model) => {
                let r = model.relation_tuples("R");
                assert_eq!(r, BTreeSet::from([vec![a]]));
            }
            BsOutcome::Unsatisfiable => panic!("expected satisfiable"),
        }
    }

    #[test]
    fn node_limit_is_enforced() {
        // Three pairwise-distinct existential witnesses force the domain sweep
        // past size 2; the six-variable universal block then blows past the
        // tiny node budget before a satisfying domain size is reached.
        let distinct = Formula::exists(
            ["y1", "y2", "y3"],
            Formula::and(vec![
                atom("S", &["y1", "y2", "y3"]),
                Formula::neq(Term::var("y1"), Term::var("y2")),
                Formula::neq(Term::var("y1"), Term::var("y3")),
                Formula::neq(Term::var("y2"), Term::var("y3")),
            ]),
        );
        let wide_forall = Formula::forall(
            ["x1", "x2", "x3", "x4", "x5", "x6"],
            atom("R", &["x1", "x2", "x3", "x4", "x5", "x6"]),
        );
        let mut p = BsProblem::new(Formula::and(vec![distinct, wide_forall]));
        p.set_node_limit(100);
        assert!(matches!(
            solve_bs(&p),
            Err(LogicError::GroundingTooLarge { .. })
        ));
    }

    #[test]
    fn stats_are_reported() {
        let f = Formula::exists(["x"], atom("R", &["x"]));
        let (outcome, stats) = solve_bs_with_stats(&BsProblem::new(f)).unwrap();
        assert!(outcome.is_satisfiable());
        assert!(stats.domain_size >= 1);
        assert!(stats.ground_nodes > 0);
        assert!(stats.domains_tried >= 1);
    }

    #[test]
    fn witness_satisfies_sentence_by_direct_evaluation() {
        // Cross-check the SAT-based procedure against Formula::eval on the
        // returned witness.
        let sentence = Formula::and(vec![
            Formula::exists(
                ["x", "y"],
                Formula::and(vec![
                    atom("edge", &["x", "y"]),
                    Formula::neq(Term::var("x"), Term::var("y")),
                ]),
            ),
            Formula::forall(["x"], Formula::not(atom("edge", &["x", "x"]))),
        ]);
        let problem = BsProblem::new(sentence.clone());
        match solve_bs(&problem).unwrap() {
            BsOutcome::Satisfiable(model) => {
                assert!(sentence.eval(&model, &BTreeMap::new()).unwrap());
            }
            BsOutcome::Unsatisfiable => panic!("expected satisfiable"),
        }
    }
}
