//! First-order formulas over a relational vocabulary with equality.

use crate::{FiniteStructure, LogicError, Term};
use rtx_relational::{RelationName, Value};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// A first-order formula over relation symbols, constants and equality.
///
/// The connective set is closed under the operations the paper's reductions
/// need: the output-rule bodies become conjunctions of (possibly negated)
/// atoms and inequalities, the log-validation sentence is a conjunction of
/// ∃\* and ∀\* sentences, and the temporal sentences of `T_past-input` /
/// `T_sdi` are universally quantified implications.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Formula {
    /// The constant true.
    True,
    /// The constant false.
    False,
    /// A relational atom `R(t1, …, tk)`.
    Atom {
        /// The relation symbol.
        relation: RelationName,
        /// The argument terms.
        args: Vec<Term>,
    },
    /// Equality of two terms.
    Eq(Term, Term),
    /// Negation.
    Not(Box<Formula>),
    /// n-ary conjunction (empty = true).
    And(Vec<Formula>),
    /// n-ary disjunction (empty = false).
    Or(Vec<Formula>),
    /// Implication.
    Implies(Box<Formula>, Box<Formula>),
    /// Existential quantification over a block of variables.
    Exists(Vec<String>, Box<Formula>),
    /// Universal quantification over a block of variables.
    Forall(Vec<String>, Box<Formula>),
}

impl Formula {
    /// A relational atom.
    pub fn atom<N, I, T>(relation: N, args: I) -> Self
    where
        N: Into<RelationName>,
        I: IntoIterator<Item = T>,
        T: Into<Term>,
    {
        Formula::Atom {
            relation: relation.into(),
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// Equality `a = b`.
    pub fn eq(a: impl Into<Term>, b: impl Into<Term>) -> Self {
        Formula::Eq(a.into(), b.into())
    }

    /// Inequality `a ≠ b` (sugar for `¬(a = b)`).
    pub fn neq(a: impl Into<Term>, b: impl Into<Term>) -> Self {
        Formula::not(Formula::eq(a, b))
    }

    /// Negation with simple constant folding.
    ///
    /// An associated constructor (not `std::ops::Not`): it takes the operand
    /// by value and folds constants.
    #[allow(clippy::should_implement_trait)]
    pub fn not(f: Formula) -> Self {
        match f {
            Formula::True => Formula::False,
            Formula::False => Formula::True,
            Formula::Not(inner) => *inner,
            other => Formula::Not(Box::new(other)),
        }
    }

    /// Conjunction with flattening and constant folding.
    pub fn and(fs: Vec<Formula>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::True => {}
                Formula::False => return Formula::False,
                Formula::And(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::True,
            1 => out.into_iter().next().expect("length checked"),
            _ => Formula::And(out),
        }
    }

    /// Disjunction with flattening and constant folding.
    pub fn or(fs: Vec<Formula>) -> Self {
        let mut out = Vec::new();
        for f in fs {
            match f {
                Formula::False => {}
                Formula::True => return Formula::True,
                Formula::Or(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Formula::False,
            1 => out.into_iter().next().expect("length checked"),
            _ => Formula::Or(out),
        }
    }

    /// Implication `a → b`.
    pub fn implies(a: Formula, b: Formula) -> Self {
        Formula::Implies(Box::new(a), Box::new(b))
    }

    /// Existential quantification; an empty variable block is dropped.
    pub fn exists<I, S>(vars: I, body: Formula) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let vars: Vec<String> = vars.into_iter().map(Into::into).collect();
        if vars.is_empty() {
            body
        } else {
            Formula::Exists(vars, Box::new(body))
        }
    }

    /// Universal quantification; an empty variable block is dropped.
    pub fn forall<I, S>(vars: I, body: Formula) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let vars: Vec<String> = vars.into_iter().map(Into::into).collect();
        if vars.is_empty() {
            body
        } else {
            Formula::Forall(vars, Box::new(body))
        }
    }

    /// The free variables of the formula.
    pub fn free_variables(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_free(&mut BTreeSet::new(), &mut out);
        out
    }

    fn collect_free(&self, bound: &mut BTreeSet<String>, out: &mut BTreeSet<String>) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom { args, .. } => {
                for t in args {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Eq(a, b) => {
                for t in [a, b] {
                    if let Term::Var(v) = t {
                        if !bound.contains(v) {
                            out.insert(v.clone());
                        }
                    }
                }
            }
            Formula::Not(f) => f.collect_free(bound, out),
            Formula::And(fs) | Formula::Or(fs) => {
                for f in fs {
                    f.collect_free(bound, out);
                }
            }
            Formula::Implies(a, b) => {
                a.collect_free(bound, out);
                b.collect_free(bound, out);
            }
            Formula::Exists(vars, body) | Formula::Forall(vars, body) => {
                let newly_bound: Vec<String> = vars
                    .iter()
                    .filter(|v| bound.insert((*v).clone()))
                    .cloned()
                    .collect();
                body.collect_free(bound, out);
                for v in newly_bound {
                    bound.remove(&v);
                }
            }
        }
    }

    /// True if the formula has no free variables.
    pub fn is_sentence(&self) -> bool {
        self.free_variables().is_empty()
    }

    /// All constants occurring in the formula.
    pub fn constants(&self) -> BTreeSet<Value> {
        let mut out = BTreeSet::new();
        self.visit_terms(&mut |t| {
            if let Term::Const(v) = t {
                out.insert(*v);
            }
        });
        out
    }

    fn visit_terms<F: FnMut(&Term)>(&self, f: &mut F) {
        match self {
            Formula::True | Formula::False => {}
            Formula::Atom { args, .. } => {
                for t in args {
                    f(t);
                }
            }
            Formula::Eq(a, b) => {
                f(a);
                f(b);
            }
            Formula::Not(inner) => inner.visit_terms(f),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| g.visit_terms(f)),
            Formula::Implies(a, b) => {
                a.visit_terms(f);
                b.visit_terms(f);
            }
            Formula::Exists(_, body) | Formula::Forall(_, body) => body.visit_terms(f),
        }
    }

    /// The relation symbols of the formula with their arities.
    ///
    /// Errors if a symbol is used with two different arities.
    pub fn relations(&self) -> Result<BTreeMap<RelationName, usize>, LogicError> {
        let mut out = BTreeMap::new();
        let mut err = None;
        self.visit_atoms(
            &mut |relation: &RelationName, args: &[Term]| match out.get(relation) {
                Some(&arity) if arity != args.len() => {
                    if err.is_none() {
                        err = Some(LogicError::InconsistentArity {
                            relation: relation.as_str().to_string(),
                            first: arity,
                            second: args.len(),
                        });
                    }
                }
                _ => {
                    out.insert(relation.clone(), args.len());
                }
            },
        );
        match err {
            Some(e) => Err(e),
            None => Ok(out),
        }
    }

    fn visit_atoms<F: FnMut(&RelationName, &[Term])>(&self, f: &mut F) {
        match self {
            Formula::True | Formula::False | Formula::Eq(..) => {}
            Formula::Atom { relation, args } => f(relation, args),
            Formula::Not(inner) => inner.visit_atoms(f),
            Formula::And(fs) | Formula::Or(fs) => fs.iter().for_each(|g| g.visit_atoms(f)),
            Formula::Implies(a, b) => {
                a.visit_atoms(f);
                b.visit_atoms(f);
            }
            Formula::Exists(_, body) | Formula::Forall(_, body) => body.visit_atoms(f),
        }
    }

    /// Substitutes free variables according to `subst` (capture is avoided by
    /// never substituting below a quantifier that rebinds the variable).
    pub fn substitute(&self, subst: &BTreeMap<String, Term>) -> Formula {
        match self {
            Formula::True => Formula::True,
            Formula::False => Formula::False,
            Formula::Atom { relation, args } => Formula::Atom {
                relation: relation.clone(),
                args: args.iter().map(|t| substitute_term(t, subst)).collect(),
            },
            Formula::Eq(a, b) => Formula::Eq(substitute_term(a, subst), substitute_term(b, subst)),
            Formula::Not(f) => Formula::Not(Box::new(f.substitute(subst))),
            Formula::And(fs) => Formula::And(fs.iter().map(|f| f.substitute(subst)).collect()),
            Formula::Or(fs) => Formula::Or(fs.iter().map(|f| f.substitute(subst)).collect()),
            Formula::Implies(a, b) => {
                Formula::Implies(Box::new(a.substitute(subst)), Box::new(b.substitute(subst)))
            }
            Formula::Exists(vars, body) => {
                let inner = shadowed_subst(subst, vars);
                Formula::Exists(vars.clone(), Box::new(body.substitute(&inner)))
            }
            Formula::Forall(vars, body) => {
                let inner = shadowed_subst(subst, vars);
                Formula::Forall(vars.clone(), Box::new(body.substitute(&inner)))
            }
        }
    }

    /// Negation normal form: negations pushed to atoms, implications expanded.
    pub fn nnf(&self) -> Formula {
        self.nnf_with_polarity(true)
    }

    fn nnf_with_polarity(&self, positive: bool) -> Formula {
        match self {
            Formula::True => {
                if positive {
                    Formula::True
                } else {
                    Formula::False
                }
            }
            Formula::False => {
                if positive {
                    Formula::False
                } else {
                    Formula::True
                }
            }
            Formula::Atom { .. } | Formula::Eq(..) => {
                if positive {
                    self.clone()
                } else {
                    Formula::Not(Box::new(self.clone()))
                }
            }
            Formula::Not(f) => f.nnf_with_polarity(!positive),
            Formula::And(fs) => {
                let parts: Vec<Formula> =
                    fs.iter().map(|f| f.nnf_with_polarity(positive)).collect();
                if positive {
                    Formula::and(parts)
                } else {
                    Formula::or(parts)
                }
            }
            Formula::Or(fs) => {
                let parts: Vec<Formula> =
                    fs.iter().map(|f| f.nnf_with_polarity(positive)).collect();
                if positive {
                    Formula::or(parts)
                } else {
                    Formula::and(parts)
                }
            }
            Formula::Implies(a, b) => {
                // a → b  ≡  ¬a ∨ b
                let expanded = Formula::Or(vec![Formula::Not(a.clone()), (**b).clone()]);
                expanded.nnf_with_polarity(positive)
            }
            Formula::Exists(vars, body) => {
                let inner = body.nnf_with_polarity(positive);
                if positive {
                    Formula::exists(vars.clone(), inner)
                } else {
                    Formula::forall(vars.clone(), inner)
                }
            }
            Formula::Forall(vars, body) => {
                let inner = body.nnf_with_polarity(positive);
                if positive {
                    Formula::forall(vars.clone(), inner)
                } else {
                    Formula::exists(vars.clone(), inner)
                }
            }
        }
    }

    /// True if the NNF of the formula is in the ∃*∀* (Bernays–Schönfinkel)
    /// class: no existential quantifier occurs within the scope of a
    /// universal quantifier.
    pub fn is_bernays_schonfinkel(&self) -> bool {
        fn check(f: &Formula, under_forall: bool) -> bool {
            match f {
                Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => true,
                Formula::Not(inner) => check(inner, under_forall),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().all(|g| check(g, under_forall)),
                Formula::Implies(a, b) => check(a, under_forall) && check(b, under_forall),
                Formula::Exists(_, body) => !under_forall && check(body, under_forall),
                Formula::Forall(_, body) => check(body, true),
            }
        }
        check(&self.nnf(), false)
    }

    /// Counts existential-quantifier variables in the NNF (the `k` of the
    /// small-model bound `max(1, k)` from \[Ram30\] as used in §3.2).
    pub fn existential_width(&self) -> usize {
        fn count(f: &Formula) -> usize {
            match f {
                Formula::True | Formula::False | Formula::Atom { .. } | Formula::Eq(..) => 0,
                Formula::Not(inner) => count(inner),
                Formula::And(fs) | Formula::Or(fs) => fs.iter().map(count).sum(),
                Formula::Implies(a, b) => count(a) + count(b),
                Formula::Exists(vars, body) => vars.len() + count(body),
                Formula::Forall(_, body) => count(body),
            }
        }
        count(&self.nnf())
    }

    /// Evaluates the formula over a finite structure under a variable
    /// environment.  All quantifiers range over the structure's domain.
    pub fn eval(
        &self,
        structure: &FiniteStructure,
        env: &BTreeMap<String, Value>,
    ) -> Result<bool, LogicError> {
        match self {
            Formula::True => Ok(true),
            Formula::False => Ok(false),
            Formula::Atom { relation, args } => {
                let values = args
                    .iter()
                    .map(|t| resolve(t, env))
                    .collect::<Result<Vec<Value>, LogicError>>()?;
                Ok(structure.holds(relation, &values))
            }
            Formula::Eq(a, b) => Ok(resolve(a, env)? == resolve(b, env)?),
            Formula::Not(f) => Ok(!f.eval(structure, env)?),
            Formula::And(fs) => {
                for f in fs {
                    if !f.eval(structure, env)? {
                        return Ok(false);
                    }
                }
                Ok(true)
            }
            Formula::Or(fs) => {
                for f in fs {
                    if f.eval(structure, env)? {
                        return Ok(true);
                    }
                }
                Ok(false)
            }
            Formula::Implies(a, b) => Ok(!a.eval(structure, env)? || b.eval(structure, env)?),
            Formula::Exists(vars, body) => eval_quantified(structure, env, vars, body, true),
            Formula::Forall(vars, body) => eval_quantified(structure, env, vars, body, false),
        }
    }
}

fn eval_quantified(
    structure: &FiniteStructure,
    env: &BTreeMap<String, Value>,
    vars: &[String],
    body: &Formula,
    existential: bool,
) -> Result<bool, LogicError> {
    if vars.is_empty() {
        return body.eval(structure, env);
    }
    let (first, rest) = vars.split_first().expect("non-empty checked");
    for value in structure.domain() {
        let mut inner = env.clone();
        inner.insert(first.clone(), *value);
        let result = eval_quantified(structure, &inner, rest, body, existential)?;
        if existential && result {
            return Ok(true);
        }
        if !existential && !result {
            return Ok(false);
        }
    }
    Ok(!existential)
}

fn resolve(term: &Term, env: &BTreeMap<String, Value>) -> Result<Value, LogicError> {
    match term {
        Term::Const(v) => Ok(*v),
        Term::Var(name) => env
            .get(name)
            .cloned()
            .ok_or_else(|| LogicError::UnboundVariable { name: name.clone() }),
    }
}

fn substitute_term(term: &Term, subst: &BTreeMap<String, Term>) -> Term {
    match term {
        Term::Const(_) => term.clone(),
        Term::Var(v) => subst.get(v).cloned().unwrap_or_else(|| term.clone()),
    }
}

fn shadowed_subst(subst: &BTreeMap<String, Term>, vars: &[String]) -> BTreeMap<String, Term> {
    subst
        .iter()
        .filter(|(k, _)| !vars.contains(k))
        .map(|(k, v)| (k.clone(), v.clone()))
        .collect()
}

impl fmt::Display for Formula {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Formula::True => write!(f, "⊤"),
            Formula::False => write!(f, "⊥"),
            Formula::Atom { relation, args } => {
                write!(f, "{relation}(")?;
                for (i, t) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            Formula::Eq(a, b) => write!(f, "{a} = {b}"),
            Formula::Not(inner) => write!(f, "¬({inner})"),
            Formula::And(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∧ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Or(fs) => {
                write!(f, "(")?;
                for (i, g) in fs.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ∨ ")?;
                    }
                    write!(f, "{g}")?;
                }
                write!(f, ")")
            }
            Formula::Implies(a, b) => write!(f, "({a} → {b})"),
            Formula::Exists(vars, body) => write!(f, "∃{} ({body})", vars.join(",")),
            Formula::Forall(vars, body) => write!(f, "∀{} ({body})", vars.join(",")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(name: &str, vars: &[&str]) -> Formula {
        Formula::atom(name, vars.iter().map(|v| Term::var(*v)))
    }

    #[test]
    fn free_variables_respect_binding() {
        let f = Formula::exists(
            ["x"],
            Formula::and(vec![
                r("R", &["x", "y"]),
                Formula::neq(Term::var("x"), Term::var("z")),
            ]),
        );
        let free = f.free_variables();
        assert_eq!(
            free.into_iter().collect::<Vec<_>>(),
            vec!["y".to_string(), "z".to_string()]
        );
        assert!(!f.is_sentence());
        assert!(Formula::forall(["y", "z"], f).is_sentence());
    }

    #[test]
    fn constants_collected() {
        let f = Formula::atom("price", [Term::var("x"), Term::constant(Value::int(855))]);
        assert!(f.constants().contains(&Value::int(855)));
    }

    #[test]
    fn relations_detect_inconsistent_arity() {
        let ok = Formula::and(vec![r("R", &["x"]), r("S", &["x", "y"])]);
        let rels = ok.relations().unwrap();
        assert_eq!(rels.get(&RelationName::new("R")), Some(&1));
        assert_eq!(rels.get(&RelationName::new("S")), Some(&2));

        let bad = Formula::and(vec![r("R", &["x"]), r("R", &["x", "y"])]);
        assert!(matches!(
            bad.relations(),
            Err(LogicError::InconsistentArity { .. })
        ));
    }

    #[test]
    fn substitution_avoids_capture() {
        let f = Formula::exists(["x"], r("R", &["x", "y"]));
        let mut subst = BTreeMap::new();
        subst.insert("y".to_string(), Term::constant(Value::str("a")));
        subst.insert("x".to_string(), Term::constant(Value::str("b")));
        let g = f.substitute(&subst);
        // y is substituted, the bound x is untouched
        assert_eq!(
            g,
            Formula::Exists(
                vec!["x".into()],
                Box::new(Formula::Atom {
                    relation: "R".into(),
                    args: vec![Term::var("x"), Term::constant(Value::str("a"))],
                })
            )
        );
    }

    #[test]
    fn nnf_pushes_negation() {
        let f = Formula::not(Formula::and(vec![
            r("R", &["x"]),
            Formula::not(r("S", &["x"])),
        ]));
        let nnf = f.nnf();
        assert_eq!(
            nnf,
            Formula::or(vec![Formula::not(r("R", &["x"])), r("S", &["x"])])
        );
    }

    #[test]
    fn nnf_flips_quantifiers() {
        let f = Formula::not(Formula::forall(["x"], r("R", &["x"])));
        assert_eq!(
            f.nnf(),
            Formula::exists(["x"], Formula::not(r("R", &["x"])))
        );
    }

    #[test]
    fn nnf_expands_implication() {
        let f = Formula::implies(r("R", &["x"]), r("S", &["x"]));
        assert_eq!(
            f.nnf(),
            Formula::or(vec![Formula::not(r("R", &["x"])), r("S", &["x"])])
        );
    }

    #[test]
    fn bernays_schonfinkel_class_check() {
        // ∃x ∀y φ is BS
        let ok = Formula::exists(["x"], Formula::forall(["y"], r("R", &["x", "y"])));
        assert!(ok.is_bernays_schonfinkel());
        // ∀y ∃x φ is not
        let bad = Formula::forall(["y"], Formula::exists(["x"], r("R", &["x", "y"])));
        assert!(!bad.is_bernays_schonfinkel());
        // ¬∀x∃y is ∃x∀¬ … still BS after NNF? ¬(∀x ∃y R) = ∃x ∀y ¬R: yes
        let negated = Formula::not(bad.clone());
        assert!(negated.is_bernays_schonfinkel());
        // conjunction of BS sentences is BS
        let conj = Formula::and(vec![ok.clone(), Formula::forall(["z"], r("S", &["z"]))]);
        assert!(conj.is_bernays_schonfinkel());
    }

    #[test]
    fn existential_width_counts_nnf_existentials() {
        let f = Formula::and(vec![
            Formula::exists(["x", "y"], r("R", &["x", "y"])),
            Formula::not(Formula::forall(["z"], r("S", &["z"]))),
        ]);
        // NNF: ∃x,y R(x,y) ∧ ∃z ¬S(z) → width 3
        assert_eq!(f.existential_width(), 3);
    }

    #[test]
    fn eval_over_finite_structure() {
        let mut s = FiniteStructure::new(vec![Value::str("a"), Value::str("b")]);
        s.add_fact("R", vec![Value::str("a")]);
        let f = Formula::exists(["x"], r("R", &["x"]));
        assert!(f.eval(&s, &BTreeMap::new()).unwrap());
        let g = Formula::forall(["x"], r("R", &["x"]));
        assert!(!g.eval(&s, &BTreeMap::new()).unwrap());
        let h = Formula::forall(
            ["x"],
            Formula::implies(
                r("R", &["x"]),
                Formula::eq(Term::var("x"), Term::constant(Value::str("a"))),
            ),
        );
        assert!(h.eval(&s, &BTreeMap::new()).unwrap());
    }

    #[test]
    fn eval_reports_unbound_variables() {
        let s = FiniteStructure::new(vec![Value::str("a")]);
        let f = r("R", &["x"]);
        assert!(matches!(
            f.eval(&s, &BTreeMap::new()),
            Err(LogicError::UnboundVariable { .. })
        ));
    }

    #[test]
    fn display_is_readable() {
        let f = Formula::exists(
            ["x"],
            Formula::implies(r("R", &["x"]), Formula::eq(Term::var("x"), Term::var("x"))),
        );
        let text = f.to_string();
        assert!(text.contains("∃x") && text.contains("R(x)") && text.contains("→"));
    }
}
