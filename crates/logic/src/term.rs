//! First-order terms: variables and constants.

use rtx_relational::Value;
use std::fmt;

/// A first-order term.  The paper's rule bodies and ∃*∀* reductions only use
/// variables and constants (no function symbols), which is exactly what the
/// Bernays–Schönfinkel class permits.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Term {
    /// A variable, identified by name.
    Var(String),
    /// A constant of the domain.
    Const(Value),
}

impl Term {
    /// A variable term.
    pub fn var(name: impl Into<String>) -> Self {
        Term::Var(name.into())
    }

    /// A constant term.
    pub fn constant(value: impl Into<Value>) -> Self {
        Term::Const(value.into())
    }

    /// True if this is a variable.
    pub fn is_var(&self) -> bool {
        matches!(self, Term::Var(_))
    }

    /// The variable name, if a variable.
    pub fn as_var(&self) -> Option<&str> {
        match self {
            Term::Var(v) => Some(v),
            Term::Const(_) => None,
        }
    }

    /// The constant value, if a constant.
    pub fn as_const(&self) -> Option<&Value> {
        match self {
            Term::Var(_) => None,
            Term::Const(v) => Some(v),
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            // Integers render bare so they re-parse as integers; symbols are
            // always quoted so they can never be mistaken for variables
            // (single-quoted in the paper's `'gold'` style when the text
            // permits, double-quoted with escapes otherwise).
            Term::Const(Value::Int(i)) => write!(f, "{i}"),
            Term::Const(Value::Sym(s)) => {
                let text = s.as_str();
                if text.contains('\'') || text.contains('\\') {
                    f.write_str(&Value::quote(text))
                } else {
                    write!(f, "'{text}'")
                }
            }
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Self {
        Term::Const(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_and_accessors() {
        let x = Term::var("x");
        assert!(x.is_var());
        assert_eq!(x.as_var(), Some("x"));
        assert_eq!(x.as_const(), None);

        let c = Term::constant(Value::int(855));
        assert!(!c.is_var());
        assert_eq!(c.as_const(), Some(&Value::int(855)));
        assert_eq!(c.as_var(), None);
    }

    #[test]
    fn display_quotes_constants() {
        assert_eq!(Term::var("x").to_string(), "x");
        assert_eq!(Term::constant(Value::str("time")).to_string(), "'time'");
        // Integers are bare (so they re-parse as integers, not symbols);
        // symbols that cannot use the simple quoting escape instead.
        assert_eq!(Term::constant(Value::int(855)).to_string(), "855");
        assert_eq!(Term::constant(Value::str("it's")).to_string(), "\"it's\"");
        assert_eq!(Term::constant(Value::str("a\\b")).to_string(), "\"a\\\\b\"");
        // Uppercase-initial symbols stay quoted, so they can never be read
        // back as variables.
        assert_eq!(
            Term::constant(Value::str("Platinum")).to_string(),
            "'Platinum'"
        );
    }

    #[test]
    fn from_value() {
        let t: Term = Value::int(3).into();
        assert_eq!(t, Term::Const(Value::Int(3)));
    }
}
