//! The table catalog and the store facade.

use crate::{Journal, Operation, StoreError, Table};
use rtx_relational::{Instance, Schema, Tuple, Value};
use std::collections::BTreeMap;

/// A catalog of tables, addressable by name.
#[derive(Debug, Clone, Default)]
pub struct Catalog {
    tables: BTreeMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers a table.  Fails if the name is taken.
    pub fn register(&mut self, table: Table) -> Result<(), StoreError> {
        if self.tables.contains_key(table.name()) {
            return Err(StoreError::DuplicateTable(table.name().to_string()));
        }
        self.tables.insert(table.name().to_string(), table);
        Ok(())
    }

    /// Looks up a table.
    pub fn table(&self, name: &str) -> Result<&Table, StoreError> {
        self.tables
            .get(name)
            .ok_or_else(|| StoreError::UnknownTable(name.to_string()))
    }

    /// Looks up a table mutably.
    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table, StoreError> {
        self.tables
            .get_mut(name)
            .ok_or_else(|| StoreError::UnknownTable(name.to_string()))
    }

    /// The table names, in order.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.keys().cloned().collect()
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Iterates over the tables in name order.
    pub fn iter(&self) -> impl Iterator<Item = &Table> {
        self.tables.values()
    }
}

/// The store facade: a catalog plus the operation journal.
///
/// This is the component a deployed transducer would point its `db` relations
/// at; [`Store::to_instance`] materialises the catalog as the relational
/// [`Instance`] the transducer runtime reads at every step.
#[derive(Debug, Clone, Default)]
pub struct Store {
    catalog: Catalog,
    journal: Journal,
}

impl Store {
    /// Creates an empty store.
    pub fn new() -> Self {
        Store::default()
    }

    /// Creates a table.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        attributes: Option<Vec<String>>,
    ) -> Result<(), StoreError> {
        let name = name.into();
        self.catalog
            .register(Table::new(name.clone(), arity, attributes.clone()))?;
        self.journal.append(Operation::CreateTable {
            name,
            arity,
            attributes,
        });
        Ok(())
    }

    /// Inserts a row into a table.
    pub fn insert(&mut self, table: &str, row: Tuple) -> Result<bool, StoreError> {
        let new = self.catalog.table_mut(table)?.insert(row.clone())?;
        if new {
            self.journal.append(Operation::Insert {
                table: table.to_string(),
                row,
            });
        }
        Ok(new)
    }

    /// Retracts a row from a table.  Journals the operation only when the
    /// row was actually present, mirroring [`Store::insert`]'s duplicate
    /// policy — replaying the journal is change-for-change.
    pub fn retract(&mut self, table: &str, row: &Tuple) -> Result<bool, StoreError> {
        let removed = self.catalog.table_mut(table)?.remove(row)?;
        if removed {
            self.journal.append(Operation::Retract {
                table: table.to_string(),
                row: row.clone(),
            });
        }
        Ok(removed)
    }

    /// Read access to the catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// The operation journal.
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Mutable journal access for the durable layer (truncation after a
    /// snapshot, rebasing after recovery).  Crate-private: callers outside
    /// the store must not edit the operation stream.
    pub(crate) fn journal_mut(&mut self) -> &mut Journal {
        &mut self.journal
    }

    /// Builds a secondary index on `table.column`.
    pub fn build_index(&mut self, table: &str, column: usize) -> Result<(), StoreError> {
        self.catalog.table_mut(table)?.build_index(column)
    }

    /// Selection by equality on one column.
    pub fn select_eq(
        &self,
        table: &str,
        column: usize,
        value: &Value,
    ) -> Result<Vec<Tuple>, StoreError> {
        self.catalog.table(table)?.select_eq(column, value)
    }

    /// Full scan of a table.
    pub fn scan(&self, table: &str) -> Result<Vec<Tuple>, StoreError> {
        Ok(self.catalog.table(table)?.scan().cloned().collect())
    }

    /// Equijoin of two tables.
    pub fn join_eq(
        &self,
        left: &str,
        left_column: usize,
        right: &str,
        right_column: usize,
    ) -> Result<Vec<Tuple>, StoreError> {
        self.catalog
            .table(left)?
            .join_eq(left_column, self.catalog.table(right)?, right_column)
    }

    /// Materialises the whole store as a relational [`Instance`] over the
    /// catalog's schema — the form the transducer runtime consumes as its
    /// database `D`.
    pub fn to_instance(&self) -> Result<Instance, StoreError> {
        let schema = Schema::from_pairs(
            self.catalog
                .iter()
                .map(|t| (t.name().to_string(), t.arity())),
        )?;
        let mut instance = Instance::empty(&schema);
        for table in self.catalog.iter() {
            for row in table.scan() {
                instance.insert(table.name().to_string(), row.clone())?;
            }
        }
        Ok(instance)
    }

    /// Loads an [`Instance`] into a fresh store (one table per relation).
    pub fn from_instance(instance: &Instance) -> Result<Self, StoreError> {
        let mut store = Store::new();
        for (name, relation) in instance.iter() {
            store.create_table(name.as_str(), relation.arity(), None)?;
            for tuple in relation.iter() {
                store.insert(name.as_str(), tuple.clone())?;
            }
        }
        Ok(store)
    }

    /// Rebuilds a store from a journal.
    pub fn replay(journal: &Journal) -> Result<Self, StoreError> {
        let mut store = Store::new();
        for op in journal.operations() {
            match op {
                Operation::CreateTable {
                    name,
                    arity,
                    attributes,
                } => store.create_table(name.clone(), *arity, attributes.clone())?,
                Operation::Insert { table, row } => {
                    store.insert(table, row.clone())?;
                }
                Operation::Retract { table, row } => {
                    store.retract(table, row)?;
                }
            }
        }
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_store() -> Store {
        let mut s = Store::new();
        s.create_table("price", 2, None).unwrap();
        s.create_table("available", 1, None).unwrap();
        for (p, amt) in [("time", 855), ("newsweek", 845), ("lemonde", 8350)] {
            s.insert(
                "price",
                Tuple::from_iter(vec![Value::str(p), Value::int(amt)]),
            )
            .unwrap();
        }
        s.insert("available", Tuple::from_iter(vec![Value::str("time")]))
            .unwrap();
        s
    }

    #[test]
    fn duplicate_table_rejected() {
        let mut s = sample_store();
        assert!(matches!(
            s.create_table("price", 2, None),
            Err(StoreError::DuplicateTable(_))
        ));
    }

    #[test]
    fn unknown_table_errors() {
        let s = sample_store();
        assert!(matches!(s.scan("nope"), Err(StoreError::UnknownTable(_))));
        assert!(matches!(
            s.select_eq("nope", 0, &Value::int(1)),
            Err(StoreError::UnknownTable(_))
        ));
    }

    #[test]
    fn join_via_store() {
        let s = sample_store();
        let joined = s.join_eq("available", 0, "price", 0).unwrap();
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].get(2), Some(&Value::int(855)));
    }

    #[test]
    fn instance_round_trip() {
        let s = sample_store();
        let instance = s.to_instance().unwrap();
        assert_eq!(instance.relation("price").unwrap().len(), 3);
        let s2 = Store::from_instance(&instance).unwrap();
        assert_eq!(s2.to_instance().unwrap(), instance);
    }

    #[test]
    fn journal_replay_reproduces_store() {
        let s = sample_store();
        assert_eq!(s.journal().len(), 2 + 4);
        let replayed = Store::replay(s.journal()).unwrap();
        assert_eq!(replayed.to_instance().unwrap(), s.to_instance().unwrap());
    }

    #[test]
    fn retractions_are_journaled_and_replayed() {
        let mut s = sample_store();
        let before = s.journal().len();

        // Only real removals reach the journal.
        let gone = Tuple::from_iter(vec![Value::str("newsweek"), Value::int(845)]);
        assert!(s.retract("price", &gone).unwrap());
        assert!(!s.retract("price", &gone).unwrap());
        assert!(matches!(
            s.retract("nope", &gone),
            Err(StoreError::UnknownTable(_))
        ));
        assert_eq!(s.journal().len(), before + 1);
        assert!(!s.catalog().table("price").unwrap().contains(&gone));

        // A mixed insert/retract journal rebuilds the same store.
        s.insert("available", Tuple::from_iter(vec![Value::str("lemonde")]))
            .unwrap();
        s.retract("available", &Tuple::from_iter(vec![Value::str("time")]))
            .unwrap();
        let replayed = Store::replay(s.journal()).unwrap();
        assert_eq!(replayed.to_instance().unwrap(), s.to_instance().unwrap());
    }

    #[test]
    fn duplicate_inserts_not_journaled() {
        let mut s = sample_store();
        let before = s.journal().len();
        assert!(!s
            .insert("available", Tuple::from_iter(vec![Value::str("time")]))
            .unwrap());
        assert_eq!(s.journal().len(), before);
    }

    #[test]
    fn catalog_introspection() {
        let s = sample_store();
        assert_eq!(s.catalog().len(), 2);
        assert!(!s.catalog().is_empty());
        assert_eq!(
            s.catalog().table_names(),
            vec!["available".to_string(), "price".to_string()]
        );
        assert_eq!(s.catalog().table("price").unwrap().arity(), 2);
    }

    #[test]
    fn indexes_through_store() {
        let mut s = sample_store();
        s.build_index("price", 0).unwrap();
        assert!(s.catalog().table("price").unwrap().has_index(0));
        let rows = s.select_eq("price", 0, &Value::str("newsweek")).unwrap();
        assert_eq!(rows.len(), 1);
    }
}
