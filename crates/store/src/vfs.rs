//! Storage backends: the [`Vfs`] abstraction the durable layer writes
//! through, with real-filesystem, in-memory and fault-injecting
//! implementations.
//!
//! Every byte the durable layer persists flows through a [`Vfs`], so the
//! *same* WAL/snapshot/recovery code runs against
//!
//! * [`StdVfs`] — real files under a root directory (production shape);
//! * [`MemVfs`] — an in-memory file map shared by `Arc`, which is what lets a
//!   test "reboot": drop the [`crate::DurableStore`], keep the `MemVfs`, and
//!   recover from exactly the bytes that were "on disk";
//! * [`FaultVfs`] — a wrapper injecting a deterministic [`Fault`] at the k-th
//!   I/O operation: a transient error, a crash (every later operation fails),
//!   a **torn write** (a prefix of the bytes persists, then crash) or a
//!   **short read**.  Sweeping k across a workload turns "does recovery
//!   work?" into an exhaustive, deterministic property test — every I/O
//!   operation of the workload becomes a crash point.
//!
//! The interface is deliberately small — whole-file reads, append handles,
//! atomic write+rename, remove — because that is all a WAL-plus-snapshot
//! design needs, and a small surface keeps the fault matrix exhaustive.

use crate::StoreError;
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn io_err(op: &str, path: &str, detail: impl std::fmt::Display) -> StoreError {
    StoreError::Io {
        context: format!("{op} {path}: {detail}"),
    }
}

/// An append handle to one file of a [`Vfs`].
pub trait VfsFile: Send {
    /// Appends bytes at the end of the file.
    fn append(&mut self, data: &[u8]) -> Result<(), StoreError>;

    /// Forces appended bytes to stable storage (fsync).
    fn sync(&mut self) -> Result<(), StoreError>;
}

/// A minimal storage backend: named files addressed by relative path.
///
/// Implementations must make [`Vfs::write_atomic`] all-or-nothing with
/// respect to crashes (write to a temp name, fsync, rename) — recovery
/// depends on never seeing a half-written snapshot.
pub trait Vfs: Send + Sync {
    /// The whole content of `path`, or `None` if the file does not exist.
    fn read(&self, path: &str) -> Result<Option<Vec<u8>>, StoreError>;

    /// Opens `path` for appending, creating it empty if absent.
    fn open_append(&self, path: &str) -> Result<Box<dyn VfsFile>, StoreError>;

    /// Replaces `path` with `data` atomically (temp file + fsync + rename):
    /// after a crash, `path` holds either its old content or all of `data`,
    /// never a prefix.
    fn write_atomic(&self, path: &str, data: &[u8]) -> Result<(), StoreError>;

    /// Removes `path`; removing an absent file succeeds.
    fn remove(&self, path: &str) -> Result<(), StoreError>;
}

// ---------------------------------------------------------------------------
// StdVfs
// ---------------------------------------------------------------------------

/// The real filesystem, rooted at a directory (created on construction).
#[derive(Debug, Clone)]
pub struct StdVfs {
    root: PathBuf,
}

impl StdVfs {
    /// A backend rooted at `root`, creating the directory if needed.
    pub fn new(root: impl Into<PathBuf>) -> Result<Self, StoreError> {
        let root = root.into();
        std::fs::create_dir_all(&root)
            .map_err(|e| io_err("create directory", &root.display().to_string(), e))?;
        Ok(StdVfs { root })
    }

    /// The root directory.
    pub fn root(&self) -> &std::path::Path {
        &self.root
    }

    fn full(&self, path: &str) -> PathBuf {
        self.root.join(path)
    }

    /// Best-effort directory fsync, so renames themselves are durable on
    /// filesystems that need it.  Failure to *open* the directory is
    /// ignored (not all platforms allow it); a failing fsync on an opened
    /// directory is reported.
    fn sync_root(&self) -> Result<(), StoreError> {
        if let Ok(dir) = std::fs::File::open(&self.root) {
            dir.sync_all()
                .map_err(|e| io_err("sync directory", &self.root.display().to_string(), e))?;
        }
        Ok(())
    }
}

struct StdFile {
    file: std::fs::File,
    path: String,
}

impl VfsFile for StdFile {
    fn append(&mut self, data: &[u8]) -> Result<(), StoreError> {
        self.file
            .write_all(data)
            .map_err(|e| io_err("append", &self.path, e))
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        self.file
            .sync_all()
            .map_err(|e| io_err("fsync", &self.path, e))
    }
}

impl Vfs for StdVfs {
    fn read(&self, path: &str) -> Result<Option<Vec<u8>>, StoreError> {
        match std::fs::read(self.full(path)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", path, e)),
        }
    }

    fn open_append(&self, path: &str) -> Result<Box<dyn VfsFile>, StoreError> {
        let file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.full(path))
            .map_err(|e| io_err("open for append", path, e))?;
        Ok(Box::new(StdFile {
            file,
            path: path.to_string(),
        }))
    }

    fn write_atomic(&self, path: &str, data: &[u8]) -> Result<(), StoreError> {
        let tmp_name = format!("{path}.tmp");
        let tmp = self.full(&tmp_name);
        let mut file = std::fs::File::create(&tmp).map_err(|e| io_err("create", &tmp_name, e))?;
        file.write_all(data)
            .map_err(|e| io_err("write", &tmp_name, e))?;
        file.sync_all().map_err(|e| io_err("fsync", &tmp_name, e))?;
        drop(file);
        std::fs::rename(&tmp, self.full(path)).map_err(|e| io_err("rename", path, e))?;
        self.sync_root()
    }

    fn remove(&self, path: &str) -> Result<(), StoreError> {
        match std::fs::remove_file(self.full(path)) {
            Ok(()) => Ok(()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(()),
            Err(e) => Err(io_err("remove", path, e)),
        }
    }
}

// ---------------------------------------------------------------------------
// MemVfs
// ---------------------------------------------------------------------------

/// An in-memory backend: a shared map from path to bytes.
///
/// Clones share the same files (`Arc` inside), which is how recovery tests
/// simulate a reboot: the [`crate::DurableStore`] is dropped, the `MemVfs`
/// survives as "the disk", and a fresh store recovers from it.
#[derive(Debug, Clone, Default)]
pub struct MemVfs {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
}

impl MemVfs {
    /// An empty in-memory backend.
    pub fn new() -> Self {
        MemVfs::default()
    }

    /// The names of the files currently held, in order.
    pub fn file_names(&self) -> Vec<String> {
        self.files
            .lock()
            .expect("mem vfs")
            .keys()
            .cloned()
            .collect()
    }

    /// The size of `path` in bytes, if it exists.
    pub fn len_of(&self, path: &str) -> Option<usize> {
        self.files.lock().expect("mem vfs").get(path).map(Vec::len)
    }

    /// Overwrites one byte of `path` in place — the corruption primitive of
    /// the recovery tests.  Panics if the file or offset does not exist
    /// (tests only).
    pub fn corrupt_byte(&self, path: &str, offset: usize) {
        let mut files = self.files.lock().expect("mem vfs");
        let file = files.get_mut(path).expect("corrupt_byte: no such file");
        file[offset] ^= 0xFF;
    }

    /// Truncates `path` to `len` bytes — the torn-tail primitive of the
    /// recovery tests.  Panics if the file does not exist (tests only).
    pub fn truncate(&self, path: &str, len: usize) {
        let mut files = self.files.lock().expect("mem vfs");
        files
            .get_mut(path)
            .expect("truncate: no such file")
            .truncate(len);
    }
}

struct MemFile {
    files: Arc<Mutex<BTreeMap<String, Vec<u8>>>>,
    path: String,
}

impl VfsFile for MemFile {
    fn append(&mut self, data: &[u8]) -> Result<(), StoreError> {
        self.files
            .lock()
            .expect("mem vfs")
            .entry(self.path.clone())
            .or_default()
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        Ok(())
    }
}

impl Vfs for MemVfs {
    fn read(&self, path: &str) -> Result<Option<Vec<u8>>, StoreError> {
        Ok(self.files.lock().expect("mem vfs").get(path).cloned())
    }

    fn open_append(&self, path: &str) -> Result<Box<dyn VfsFile>, StoreError> {
        self.files
            .lock()
            .expect("mem vfs")
            .entry(path.to_string())
            .or_default();
        Ok(Box::new(MemFile {
            files: Arc::clone(&self.files),
            path: path.to_string(),
        }))
    }

    fn write_atomic(&self, path: &str, data: &[u8]) -> Result<(), StoreError> {
        self.files
            .lock()
            .expect("mem vfs")
            .insert(path.to_string(), data.to_vec());
        Ok(())
    }

    fn remove(&self, path: &str) -> Result<(), StoreError> {
        self.files.lock().expect("mem vfs").remove(path);
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// FaultVfs
// ---------------------------------------------------------------------------

/// What happens at the k-th I/O operation of a [`FaultVfs`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// The operation fails once; every later operation succeeds (a
    /// transient I/O error).
    Error,
    /// The operation fails and so does every later one (a clean kill: the
    /// operation's bytes never reach the backing store).
    Crash,
    /// If the operation writes, only a prefix of its bytes reaches the
    /// backing store; then every later operation fails (a torn write —
    /// the classic half-written final WAL record).  Non-writing operations
    /// behave as [`Fault::Crash`].
    TornWrite,
    /// If the operation is a read, it returns only a prefix of the file;
    /// later operations succeed.  Non-reading operations behave as
    /// [`Fault::Error`].
    ShortRead,
}

#[derive(Debug)]
struct FaultState {
    /// Operations remaining before the fault fires (fires at 0).
    remaining: u64,
    fault: Fault,
    /// Set once a [`Fault::Crash`]/[`Fault::TornWrite`] fired: every
    /// subsequent operation fails.
    crashed: bool,
    /// Set once any fault fired (for [`FaultVfs::fired`]).
    fired: bool,
    /// Total operations observed (for [`FaultVfs::operations`]).
    observed: u64,
}

/// A [`Vfs`] wrapper that injects one deterministic [`Fault`] at the k-th
/// I/O operation, counting every `read`, `append`, `sync`, `write_atomic`
/// and `remove` uniformly.
#[derive(Debug, Clone)]
pub struct FaultVfs<V> {
    base: V,
    state: Arc<Mutex<FaultState>>,
}

enum Op<'a> {
    Read,
    Write(&'a [u8]),
    Other,
}

impl<V: Vfs> FaultVfs<V> {
    /// Wraps `base`, arming `fault` to fire at I/O operation number `k`
    /// (1-based: `k = 1` faults the very first operation).
    pub fn new(base: V, k: u64, fault: Fault) -> Self {
        FaultVfs {
            base,
            state: Arc::new(Mutex::new(FaultState {
                remaining: k.max(1),
                fault,
                crashed: false,
                fired: false,
                observed: 0,
            })),
        }
    }

    /// The wrapped backend.
    pub fn base(&self) -> &V {
        &self.base
    }

    /// True if the armed fault has fired.
    pub fn fired(&self) -> bool {
        self.state.lock().expect("fault state").fired
    }

    /// Total I/O operations observed so far (including the faulted one).
    pub fn operations(&self) -> u64 {
        self.state.lock().expect("fault state").observed
    }

    /// Ticks the operation counter; decides what this operation must do.
    fn tick(&self, op: &Op<'_>) -> Verdict {
        let mut s = self.state.lock().expect("fault state");
        s.observed += 1;
        if s.crashed {
            return Verdict::Fail;
        }
        if s.fired && !matches!(s.fault, Fault::Crash | Fault::TornWrite) {
            return Verdict::Proceed;
        }
        if s.remaining > 1 {
            s.remaining -= 1;
            return Verdict::Proceed;
        }
        if s.remaining == 0 {
            return Verdict::Proceed; // already fired (transient modes)
        }
        // remaining == 1: this is the k-th operation.
        s.remaining = 0;
        s.fired = true;
        match (s.fault, op) {
            (Fault::TornWrite, Op::Write(data)) => {
                s.crashed = true;
                Verdict::Torn(data.len() / 2)
            }
            (Fault::TornWrite | Fault::Crash, _) => {
                s.crashed = true;
                Verdict::Fail
            }
            (Fault::ShortRead, Op::Read) => Verdict::Short,
            (Fault::ShortRead, _) | (Fault::Error, _) => Verdict::Fail,
        }
    }

    fn injected(&self, what: &str) -> StoreError {
        StoreError::Io {
            context: format!("injected fault: {what}"),
        }
    }
}

enum Verdict {
    Proceed,
    Fail,
    /// Persist only this many bytes of the write, then fail.
    Torn(usize),
    /// Return only a prefix of the read.
    Short,
}

/// An append handle whose operations tick the shared fault state.
struct FaultFile<V: Vfs> {
    vfs: FaultVfs<V>,
    inner: Box<dyn VfsFile>,
}

impl<V: Vfs + Clone + Send + Sync + 'static> VfsFile for FaultFile<V> {
    fn append(&mut self, data: &[u8]) -> Result<(), StoreError> {
        match self.vfs.tick(&Op::Write(data)) {
            Verdict::Proceed => self.inner.append(data),
            Verdict::Torn(prefix) => {
                // Persist the torn prefix through the un-ticked inner handle,
                // then report failure: the caller sees an error, the "disk"
                // holds half a record.
                let _ = self.inner.append(&data[..prefix]);
                Err(self.vfs.injected("torn append"))
            }
            _ => Err(self.vfs.injected("append")),
        }
    }

    fn sync(&mut self) -> Result<(), StoreError> {
        match self.vfs.tick(&Op::Other) {
            Verdict::Proceed => self.inner.sync(),
            _ => Err(self.vfs.injected("fsync")),
        }
    }
}

impl<V: Vfs + Clone + 'static> Vfs for FaultVfs<V> {
    fn read(&self, path: &str) -> Result<Option<Vec<u8>>, StoreError> {
        match self.tick(&Op::Read) {
            Verdict::Proceed => self.base.read(path),
            Verdict::Short => Ok(self
                .base
                .read(path)?
                .map(|bytes| bytes[..bytes.len() / 2].to_vec())),
            _ => Err(self.injected("read")),
        }
    }

    fn open_append(&self, path: &str) -> Result<Box<dyn VfsFile>, StoreError> {
        // Opening is not itself a faultable operation (it moves no bytes),
        // but a crashed backend stays unreachable.
        if self.state.lock().expect("fault state").crashed {
            return Err(self.injected("open"));
        }
        Ok(Box::new(FaultFile {
            vfs: self.clone(),
            inner: self.base.open_append(path)?,
        }))
    }

    fn write_atomic(&self, path: &str, data: &[u8]) -> Result<(), StoreError> {
        match self.tick(&Op::Write(data)) {
            Verdict::Proceed => self.base.write_atomic(path, data),
            // An atomic write is all-or-nothing even torn: the temp file
            // tears, the rename never happens, the destination keeps its
            // old content.  So Torn degrades to plain failure here.
            _ => Err(self.injected("atomic write")),
        }
    }

    fn remove(&self, path: &str) -> Result<(), StoreError> {
        match self.tick(&Op::Other) {
            Verdict::Proceed => self.base.remove(path),
            _ => Err(self.injected("remove")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_vfs_round_trips_and_shares() {
        let vfs = MemVfs::new();
        assert_eq!(vfs.read("a").unwrap(), None);
        let mut f = vfs.open_append("a").unwrap();
        f.append(b"hello ").unwrap();
        f.append(b"world").unwrap();
        f.sync().unwrap();
        // A clone sees the same bytes (shared disk).
        let clone = vfs.clone();
        assert_eq!(clone.read("a").unwrap().unwrap(), b"hello world");
        assert_eq!(clone.len_of("a"), Some(11));
        clone.write_atomic("b", b"snap").unwrap();
        assert_eq!(vfs.file_names(), vec!["a".to_string(), "b".to_string()]);
        vfs.remove("a").unwrap();
        vfs.remove("a").unwrap(); // absent removal is fine
        assert_eq!(vfs.read("a").unwrap(), None);
        vfs.corrupt_byte("b", 0);
        assert_ne!(vfs.read("b").unwrap().unwrap()[0], b's');
        vfs.truncate("b", 1);
        assert_eq!(vfs.len_of("b"), Some(1));
    }

    #[test]
    fn std_vfs_round_trips_on_real_files() {
        // Unit tests have no CARGO_TARGET_TMPDIR; keep the scratch space
        // inside the workspace target directory.
        let dir =
            std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../target/tmp/std-vfs-unit");
        let _ = std::fs::remove_dir_all(&dir);
        let vfs = StdVfs::new(&dir).unwrap();
        assert_eq!(vfs.read("wal").unwrap(), None);
        let mut f = vfs.open_append("wal").unwrap();
        f.append(b"rec1").unwrap();
        f.sync().unwrap();
        drop(f);
        let mut f = vfs.open_append("wal").unwrap();
        f.append(b"rec2").unwrap();
        f.sync().unwrap();
        assert_eq!(vfs.read("wal").unwrap().unwrap(), b"rec1rec2");
        vfs.write_atomic("snap", b"snapshot-bytes").unwrap();
        assert_eq!(vfs.read("snap").unwrap().unwrap(), b"snapshot-bytes");
        // Atomic replacement leaves no temp file behind.
        assert!(!vfs.root().join("snap.tmp").exists());
        vfs.remove("snap").unwrap();
        vfs.remove("snap").unwrap();
        assert_eq!(vfs.read("snap").unwrap(), None);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn crash_fault_fails_everything_from_k() {
        let vfs = FaultVfs::new(MemVfs::new(), 3, Fault::Crash);
        let mut f = vfs.open_append("wal").unwrap();
        f.append(b"one").unwrap(); // op 1
        f.append(b"two").unwrap(); // op 2
        assert!(!vfs.fired());
        assert!(f.append(b"three").is_err()); // op 3: crash
        assert!(vfs.fired());
        assert!(f.sync().is_err());
        assert!(vfs.read("wal").is_err());
        assert!(vfs.open_append("wal").is_err());
        // The disk holds exactly the pre-crash bytes.
        assert_eq!(vfs.base().read("wal").unwrap().unwrap(), b"onetwo");
        assert_eq!(vfs.operations(), 5);
    }

    #[test]
    fn torn_write_persists_half_the_bytes_then_crashes() {
        let vfs = FaultVfs::new(MemVfs::new(), 2, Fault::TornWrite);
        let mut f = vfs.open_append("wal").unwrap();
        f.append(b"head").unwrap();
        assert!(f.append(b"0123456789").is_err()); // torn: 5 bytes land
        assert_eq!(vfs.base().read("wal").unwrap().unwrap(), b"head01234");
        assert!(f.append(b"more").is_err()); // crashed thereafter
        assert_eq!(vfs.base().read("wal").unwrap().unwrap(), b"head01234");
    }

    #[test]
    fn transient_error_fails_exactly_once() {
        let vfs = FaultVfs::new(MemVfs::new(), 2, Fault::Error);
        let mut f = vfs.open_append("wal").unwrap();
        f.append(b"a").unwrap();
        assert!(f.append(b"b").is_err()); // op 2 fails...
        f.append(b"c").unwrap(); // ...op 3 succeeds again
        assert_eq!(vfs.base().read("wal").unwrap().unwrap(), b"ac");
    }

    #[test]
    fn short_read_returns_a_prefix() {
        let base = MemVfs::new();
        base.write_atomic("wal", b"0123456789").unwrap();
        let vfs = FaultVfs::new(base, 1, Fault::ShortRead);
        assert_eq!(vfs.read("wal").unwrap().unwrap(), b"01234");
        // Later reads are whole again.
        assert_eq!(vfs.read("wal").unwrap().unwrap(), b"0123456789");
    }

    #[test]
    fn atomic_writes_never_tear() {
        let base = MemVfs::new();
        base.write_atomic("snap", b"old").unwrap();
        let vfs = FaultVfs::new(base, 1, Fault::TornWrite);
        assert!(vfs.write_atomic("snap", b"newer-and-longer").is_err());
        // All-or-nothing: the old content survives untouched.
        assert_eq!(vfs.base().read("snap").unwrap().unwrap(), b"old");
    }
}
