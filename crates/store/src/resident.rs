//! Bridge from the stored catalog to a resident transducer database.
//!
//! A deployed transducer runtime does not want to re-materialise the whole
//! catalog ([`Store::to_instance`]) before every run: it wants the catalog
//! **resident** — prepared once as a [`ResidentDb`], shared by every session,
//! with changes flowing through incrementally.  The store's write-ahead
//! [`Journal`](crate::Journal) is exactly the right change feed: every
//! mutation is already an append-only operation, so keeping a resident
//! database current is a matter of replaying the journal suffix it has not
//! seen yet.  Each replayed insert or retraction bumps only the touched
//! relation's version stamp, which is what lets the resident database
//! invalidate indexes (and sessions invalidate step caches) per relation
//! instead of wholesale.
//!
//! ```
//! use rtx_store::{ResidentSync, Store};
//! use rtx_relational::{Tuple, Value};
//!
//! let mut store = Store::new();
//! store.create_table("price", 2, None).unwrap();
//! store
//!     .insert("price", Tuple::new(vec![Value::str("time"), Value::int(855)]))
//!     .unwrap();
//!
//! // Make the catalog resident once…
//! let (resident, mut sync) = store.to_resident().unwrap();
//! let v0 = resident.version();
//!
//! // …keep writing to the store…
//! store
//!     .insert("price", Tuple::new(vec![Value::str("lemonde"), Value::int(8350)]))
//!     .unwrap();
//!
//! // …and drive the journal suffix into the resident database.
//! assert_eq!(sync.sync(&store, &resident).unwrap(), 1);
//! assert!(resident.version() > v0);
//! assert_eq!(resident.snapshot().relation("price").unwrap().len(), 2);
//! ```

use crate::{Operation, Store, StoreError};
use rtx_datalog::ResidentDb;

/// A cursor over a store's journal tracking how far a [`ResidentDb`] has
/// been synchronised — obtained from [`Store::to_resident`].
///
/// The position is an **absolute** operation index (see
/// [`Journal::base`](crate::Journal::base)): it stays meaningful when the journal is
/// truncated after a snapshot, because truncation advances the journal's
/// base offset instead of renumbering the surviving operations.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ResidentSync {
    applied: usize,
}

impl ResidentSync {
    /// A cursor that has applied the journal operations with absolute index
    /// below `applied`.
    pub fn at(applied: usize) -> Self {
        ResidentSync { applied }
    }

    /// Absolute index of the next journal operation to apply (equivalently:
    /// the number of operations ever journaled that this cursor has seen).
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Replays the journal suffix this cursor has not seen into `resident`:
    /// `CreateTable` grows the resident schema, `Insert` adds the row and
    /// `Retract` removes it, each bumping the touched relation's version
    /// stamp.  Returns the number of operations applied.
    ///
    /// The journal never records duplicate inserts or retractions of absent
    /// rows, so replay against a resident database built from the same
    /// store is change-for-change: a no-op suffix leaves every version
    /// stamp (and therefore every index and session cache) untouched.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::JournalTruncated`] if the journal was cleared
    /// past this cursor's position — operations this cursor still needed are
    /// gone, so the resident database can no longer be brought current
    /// incrementally and must be rebuilt via [`Store::to_resident`].
    pub fn sync(&mut self, store: &Store, resident: &ResidentDb) -> Result<usize, StoreError> {
        let journal = store.journal();
        if self.applied < journal.base() {
            return Err(StoreError::JournalTruncated {
                applied: self.applied,
                base: journal.base(),
            });
        }
        let operations = journal.operations();
        let start = (self.applied - journal.base()).min(operations.len());
        let pending = &operations[start..];
        for op in pending {
            match op {
                Operation::CreateTable { name, arity, .. } => {
                    resident.ensure_relation(name.as_str(), *arity)?;
                }
                Operation::Insert { table, row } => {
                    resident.insert(table.as_str(), row.clone())?;
                }
                Operation::Retract { table, row } => {
                    resident.retract(table.as_str(), row)?;
                }
            }
        }
        let applied = pending.len();
        self.applied = journal.end();
        Ok(applied)
    }
}

impl Store {
    /// Makes the catalog resident: a [`ResidentDb`] holding every table as a
    /// copy-on-write relation, plus a [`ResidentSync`] cursor positioned at
    /// the current journal head so later writes replay incrementally.
    pub fn to_resident(&self) -> Result<(ResidentDb, ResidentSync), StoreError> {
        let resident = ResidentDb::new(self.to_instance()?);
        Ok((resident, ResidentSync::at(self.journal().end())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::{RelationName, Tuple, Value};

    fn store() -> Store {
        let mut s = Store::new();
        s.create_table("price", 2, None).unwrap();
        s.create_table("available", 1, None).unwrap();
        for (p, amt) in [("time", 855), ("newsweek", 845)] {
            s.insert("price", Tuple::new(vec![Value::str(p), Value::int(amt)]))
                .unwrap();
        }
        s
    }

    #[test]
    fn to_resident_snapshots_the_catalog() {
        let s = store();
        let (resident, sync) = s.to_resident().unwrap();
        assert_eq!(sync.applied(), s.journal().len());
        assert_eq!(resident.snapshot(), s.to_instance().unwrap());
    }

    #[test]
    fn sync_applies_only_the_journal_suffix() {
        let mut s = store();
        let (resident, mut sync) = s.to_resident().unwrap();

        // Nothing new: no version churn.
        let v = resident.version();
        assert_eq!(sync.sync(&s, &resident).unwrap(), 0);
        assert_eq!(resident.version(), v);

        // New table + rows arrive through the journal.
        s.create_table("category", 2, None).unwrap();
        s.insert("category", Tuple::from_iter(["news", "time"]))
            .unwrap();
        s.insert(
            "price",
            Tuple::new(vec![Value::str("lemonde"), Value::int(8350)]),
        )
        .unwrap();
        assert_eq!(sync.sync(&s, &resident).unwrap(), 3);
        assert_eq!(resident.snapshot(), s.to_instance().unwrap());
        assert_eq!(sync.applied(), s.journal().len());
    }

    #[test]
    fn sync_bumps_only_touched_relations() {
        let mut s = store();
        let (resident, mut sync) = s.to_resident().unwrap();
        let available = RelationName::new("available");
        let price = RelationName::new("price");
        let available_before = resident.version_of(&available);

        s.insert(
            "price",
            Tuple::new(vec![Value::str("lemonde"), Value::int(8350)]),
        )
        .unwrap();
        sync.sync(&s, &resident).unwrap();

        assert_eq!(resident.version_of(&available), available_before);
        assert!(resident.version_of(&price) > 0);
    }

    #[test]
    fn mixed_insert_and_retract_suffixes_round_trip() {
        let mut s = store();
        let (resident, mut sync) = s.to_resident().unwrap();

        // Interleave inserts and retractions, including an insert that is
        // later retracted and a retraction that is later re-inserted.
        s.insert(
            "price",
            Tuple::new(vec![Value::str("lemonde"), Value::int(8350)]),
        )
        .unwrap();
        s.retract(
            "price",
            &Tuple::new(vec![Value::str("time"), Value::int(855)]),
        )
        .unwrap();
        s.insert("available", Tuple::from_iter(["lemonde"]))
            .unwrap();
        s.retract(
            "price",
            &Tuple::new(vec![Value::str("lemonde"), Value::int(8350)]),
        )
        .unwrap();
        s.insert(
            "price",
            Tuple::new(vec![Value::str("time"), Value::int(855)]),
        )
        .unwrap();
        assert_eq!(sync.sync(&s, &resident).unwrap(), 5);

        // The synchronised resident database is byte-identical to one built
        // from the final store state, and to one built by replaying the
        // whole journal from scratch.
        assert_eq!(resident.snapshot(), s.to_instance().unwrap());
        let (fresh, _) = Store::replay(s.journal()).unwrap().to_resident().unwrap();
        assert_eq!(resident.snapshot(), fresh.snapshot());

        // Retractions bump versions like inserts do: a session watching
        // `price` learns about the shrink through the same stamp channel.
        let price = RelationName::new("price");
        let before = resident.version_of(&price);
        s.retract(
            "price",
            &Tuple::new(vec![Value::str("newsweek"), Value::int(845)]),
        )
        .unwrap();
        sync.sync(&s, &resident).unwrap();
        assert!(resident.version_of(&price) > before);
        assert_eq!(resident.snapshot(), s.to_instance().unwrap());
    }

    #[test]
    fn sync_survives_journal_truncation() {
        // Regression test for the `Journal::clear`/`ResidentSync` desync:
        // `applied` is an absolute count, so truncating the journal after a
        // snapshot used to make the next sync silently re-slice from a stale
        // relative index.  With the monotone base offset, a cursor that was
        // current at truncation time resumes exactly at the new writes.
        let mut s = store();
        let (resident, mut sync) = s.to_resident().unwrap();
        assert_eq!(sync.sync(&s, &resident).unwrap(), 0);

        // Snapshot point: drop the buffered operations.
        let end_before = s.journal().end();
        s.journal_mut().clear();
        assert_eq!(s.journal().base(), end_before);

        // The cursor is *not* desynchronized: nothing pending, and new
        // writes after truncation flow through exactly once.
        assert_eq!(sync.sync(&s, &resident).unwrap(), 0);
        s.insert(
            "price",
            Tuple::new(vec![Value::str("lemonde"), Value::int(8350)]),
        )
        .unwrap();
        assert_eq!(sync.sync(&s, &resident).unwrap(), 1);
        assert_eq!(resident.snapshot(), s.to_instance().unwrap());
        assert_eq!(sync.applied(), s.journal().end());

        // A cursor left *behind* the truncation point cannot resume — the
        // operations it needed are gone.  That is a hard, typed error, not a
        // silent partial replay.
        let mut stale = ResidentSync::at(0);
        assert_eq!(
            stale.sync(&s, &resident),
            Err(StoreError::JournalTruncated {
                applied: 0,
                base: end_before,
            })
        );
    }

    #[test]
    fn replaying_a_rebuilt_store_from_scratch_matches() {
        let s = store();
        let replayed = Store::replay(s.journal()).unwrap();
        let (resident, _) = s.to_resident().unwrap();
        let (from_replay, _) = replayed.to_resident().unwrap();
        assert_eq!(resident.snapshot(), from_replay.snapshot());
    }
}
