//! Crash-safe persistence: an on-disk WAL plus snapshots, with recovery.
//!
//! [`DurableStore`] wraps a [`Store`] so that every mutation is persisted
//! through a [`Vfs`] **before** it is applied in memory, and a process can
//! recover the exact committed state after a crash.  The on-disk layout is
//! one snapshot file plus a write-ahead log tail (see the [crate
//! docs](crate) for the full lifecycle):
//!
//! * **WAL** (`wal`) — a 24-byte header (magic, epoch, base offset) followed
//!   by records, each `len: u32 | crc32: u32 | payload`, where the payload is
//!   one [`Operation`] encoded with the [`rtx_relational::codec`] (symbols by
//!   text — the symbol-resolution boundary).  The record with ordinal `i`
//!   holds the operation with *absolute* index `base + i`, aligning the WAL
//!   byte stream with the in-memory [`Journal`](crate::Journal)'s absolute
//!   offsets.
//! * **Snapshot** (`snapshot`) — magic, CRC over the body, epoch, the
//!   absolute operation count it captures, then every table with its rows.
//!   Snapshots are written to a temp file and atomically renamed
//!   ([`Vfs::write_atomic`]), so a crash mid-checkpoint leaves the old
//!   snapshot intact.
//!
//! Recovery ([`DurableStore::open`]) loads the snapshot, replays the WAL
//! records whose absolute index the snapshot has not already captured, and
//! classifies damage precisely: a **torn tail** (the final record's bytes run
//! out at end-of-file — the signature of a crash mid-append) is dropped and
//! reported via [`RecoveryReport::torn_tail`]; any mismatch *before* the
//! tail — a failed checksum on a complete record, an undecodable payload, a
//! base offset that skips operations — is a hard [`StoreError::Corrupt`]
//! with the byte offset where validation failed.

use crate::vfs::{Vfs, VfsFile};
use crate::{Operation, Store, StoreError};
use rtx_relational::codec::{self, Reader};
use rtx_relational::Tuple;
use std::sync::Arc;

const WAL_FILE: &str = "wal";
const SNAPSHOT_FILE: &str = "snapshot";
const WAL_MAGIC: &[u8; 8] = b"RTXWAL1\n";
const SNAP_MAGIC: &[u8; 8] = b"RTXSNAP1";
const WAL_HEADER_LEN: usize = 8 + 8 + 8;

const OP_CREATE: u8 = 0;
const OP_INSERT: u8 = 1;
const OP_RETRACT: u8 = 2;

// ---------------------------------------------------------------------------
// CRC32 (IEEE), table computed at compile time — no external dependency.
// ---------------------------------------------------------------------------

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// CRC32 (IEEE 802.3 polynomial) of `bytes`.
fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ---------------------------------------------------------------------------
// Fsync policy
// ---------------------------------------------------------------------------

/// When WAL appends are forced to stable storage.
///
/// The `RTX_FSYNC` environment variable overrides the policy passed to
/// [`DurableStore::open`] (mirroring the engine's `RTX_THREADS` override):
/// `always`, `never`, or `every:N` for group commit of `N` appends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync after every append: an acknowledged write is durable.
    Always,
    /// Group commit: fsync after every `N` appends (and at checkpoints).
    /// A crash can lose up to `N - 1` acknowledged operations.
    EveryN(usize),
    /// Never fsync from the store; leave flushing to the OS.  Fastest, and
    /// still crash-*consistent* (recovery sees a clean prefix), but recent
    /// acknowledged writes may be lost.
    Never,
}

impl FsyncPolicy {
    /// The accepted forms of `RTX_FSYNC`, for the strict-parse error
    /// message.
    pub const ENV_EXPECTED: &'static str = "`always`, `never`, or `every:N` with N >= 1";

    /// Parses one (pre-trimmed, non-empty) `RTX_FSYNC` token: `"always"`,
    /// `"never"`, or `"every:N"` with `N ≥ 1` (ASCII case-insensitive on the
    /// keyword; the count rejects signs, spaces and 0).
    fn parse_token(value: &str) -> Option<FsyncPolicy> {
        match value.to_ascii_lowercase().as_str() {
            "always" => Some(FsyncPolicy::Always),
            "never" => Some(FsyncPolicy::Never),
            v => {
                let n = v.strip_prefix("every:")?;
                if n.is_empty() || !n.bytes().all(|b| b.is_ascii_digit()) {
                    return None;
                }
                match n.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(FsyncPolicy::EveryN(n)),
                    _ => None,
                }
            }
        }
    }

    /// Strictly parses an `RTX_FSYNC` override through the shared
    /// [`env`](rtx_relational::env) contract: `Ok(None)` ("no override")
    /// when the value is absent or blank, a hard
    /// [`EnvParseError`](rtx_relational::env::EnvParseError) when it is set
    /// but malformed.  [`DurableStore::open`] turns that error into
    /// [`StoreError::Config`] — a typo'd fsync policy must refuse to open
    /// the store, not silently fall back to the programmatic default.
    pub fn from_env(
        value: Option<&str>,
    ) -> Result<Option<FsyncPolicy>, rtx_relational::env::EnvParseError> {
        rtx_relational::env::parse_setting(
            "RTX_FSYNC",
            value,
            Self::ENV_EXPECTED,
            Self::parse_token,
        )
    }
}

// ---------------------------------------------------------------------------
// Operation codec
// ---------------------------------------------------------------------------

fn encode_operation(op: &Operation) -> Vec<u8> {
    let mut out = Vec::new();
    match op {
        Operation::CreateTable {
            name,
            arity,
            attributes,
        } => {
            out.push(OP_CREATE);
            codec::put_str(&mut out, name);
            codec::put_u32(&mut out, *arity as u32);
            match attributes {
                None => out.push(0),
                Some(attrs) => {
                    out.push(1);
                    codec::put_u32(&mut out, attrs.len() as u32);
                    for a in attrs {
                        codec::put_str(&mut out, a);
                    }
                }
            }
        }
        Operation::Insert { table, row } => {
            out.push(OP_INSERT);
            codec::put_str(&mut out, table);
            codec::put_tuple(&mut out, row);
        }
        Operation::Retract { table, row } => {
            out.push(OP_RETRACT);
            codec::put_str(&mut out, table);
            codec::put_tuple(&mut out, row);
        }
    }
    out
}

fn decode_operation(r: &mut Reader<'_>) -> Result<Operation, codec::DecodeError> {
    let at = r.position();
    match r.get_u8("operation tag")? {
        OP_CREATE => {
            let name = r.get_str("table name")?.to_string();
            let arity = r.get_u32("table arity")? as usize;
            let attributes = match r.get_u8("attributes flag")? {
                0 => None,
                1 => {
                    let count = r.get_u32("attribute count")? as usize;
                    if count > r.remaining() {
                        return Err(codec::DecodeError {
                            offset: r.position(),
                            reason: format!(
                                "attribute count {count} exceeds the {} remaining bytes",
                                r.remaining()
                            ),
                        });
                    }
                    let mut attrs = Vec::with_capacity(count);
                    for _ in 0..count {
                        attrs.push(r.get_str("attribute name")?.to_string());
                    }
                    Some(attrs)
                }
                flag => {
                    return Err(codec::DecodeError {
                        offset: r.position() - 1,
                        reason: format!("invalid attributes flag {flag}"),
                    })
                }
            };
            Ok(Operation::CreateTable {
                name,
                arity,
                attributes,
            })
        }
        OP_INSERT => Ok(Operation::Insert {
            table: r.get_str("table name")?.to_string(),
            row: r.get_tuple()?,
        }),
        OP_RETRACT => Ok(Operation::Retract {
            table: r.get_str("table name")?.to_string(),
            row: r.get_tuple()?,
        }),
        tag => Err(codec::DecodeError {
            offset: at,
            reason: format!("unknown operation tag {tag}"),
        }),
    }
}

// ---------------------------------------------------------------------------
// Recovery report
// ---------------------------------------------------------------------------

/// A dropped torn tail: where the final, incomplete WAL record started and
/// why it was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset into the WAL file where the torn record begins.
    pub offset: u64,
    /// Why the record was rejected (truncated header, short payload…).
    pub reason: String,
}

/// What [`DurableStore::open`] found and did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Absolute operation count captured by the loaded snapshot (0 when
    /// booting fresh or before the first checkpoint).
    pub snapshot_ops: usize,
    /// WAL tail operations replayed on top of the snapshot.
    pub replayed: usize,
    /// The torn final record, if the WAL ended mid-append.  The torn bytes
    /// were discarded (and the WAL file trimmed back to its valid prefix);
    /// the operation they encoded was never acknowledged durable under
    /// [`FsyncPolicy::Always`].
    pub torn_tail: Option<TornTail>,
}

// ---------------------------------------------------------------------------
// DurableStore
// ---------------------------------------------------------------------------

/// A [`Store`] whose mutations are write-ahead logged through a [`Vfs`],
/// with checkpointing and crash recovery.  See the [crate docs](crate) for
/// the durability lifecycle.
pub struct DurableStore {
    vfs: Arc<dyn Vfs>,
    store: Store,
    wal: Box<dyn VfsFile>,
    epoch: u64,
    policy: FsyncPolicy,
    /// Appends not yet covered by an fsync (group commit accounting).
    unsynced: usize,
}

impl std::fmt::Debug for DurableStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableStore")
            .field("epoch", &self.epoch)
            .field("policy", &self.policy)
            .field("journal_end", &self.store.journal().end())
            .finish_non_exhaustive()
    }
}

impl DurableStore {
    /// Opens (or creates) a durable store on `vfs`, recovering any persisted
    /// state: the latest snapshot is loaded, the WAL tail replayed, and a
    /// torn final record dropped with a note in the [`RecoveryReport`].
    ///
    /// The fsync `policy` may be overridden by the `RTX_FSYNC` environment
    /// variable ([`FsyncPolicy::from_env`]).
    ///
    /// # Errors
    ///
    /// [`StoreError::Io`] if the backend fails; [`StoreError::Corrupt`] if
    /// persisted data fails validation anywhere before the WAL tail;
    /// [`StoreError::Config`] if `RTX_FSYNC` is set to a malformed value —
    /// a typo'd policy refuses to open rather than silently running under
    /// the wrong durability guarantee.
    pub fn open(
        vfs: Arc<dyn Vfs>,
        policy: FsyncPolicy,
    ) -> Result<(Self, RecoveryReport), StoreError> {
        let raw = std::env::var("RTX_FSYNC").ok();
        let policy = FsyncPolicy::from_env(raw.as_deref())
            .map_err(|e| StoreError::Config {
                detail: e.to_string(),
            })?
            .unwrap_or(policy);
        let mut report = RecoveryReport::default();

        // 1. Snapshot: the base state plus the absolute op count it captures.
        let (mut store, snapshot_ops, snapshot_epoch) = match vfs.read(SNAPSHOT_FILE)? {
            None => (Store::new(), 0usize, 0u64),
            Some(bytes) => decode_snapshot(&bytes)?,
        };
        report.snapshot_ops = snapshot_ops;

        // The rebuild journaled snapshot rows from absolute index 0; throw
        // those entries away and fast-forward to the snapshot's op count so
        // WAL tail replay continues the absolute numbering.
        store.journal_mut().clear();
        store.journal_mut().rebase(snapshot_ops);

        // 2. WAL: header + tail records.
        let mut epoch = snapshot_epoch;
        match vfs.read(WAL_FILE)? {
            None => {
                // First boot (or the WAL vanished after a clean checkpoint):
                // start a fresh log continuing the snapshot's numbering.
                vfs.write_atomic(WAL_FILE, &wal_header(epoch, snapshot_ops))?;
            }
            Some(bytes) => {
                let parsed = parse_wal(&bytes)?;
                if parsed.epoch > snapshot_epoch {
                    return Err(StoreError::Corrupt {
                        offset: 8,
                        reason: format!(
                            "wal epoch {} is newer than snapshot epoch {} — snapshot lost",
                            parsed.epoch, snapshot_epoch
                        ),
                    });
                }
                if parsed.base > snapshot_ops {
                    return Err(StoreError::Corrupt {
                        offset: 16,
                        reason: format!(
                            "wal base {} skips past snapshot op count {snapshot_ops} — \
                             operations missing",
                            parsed.base
                        ),
                    });
                }
                let wal_end = parsed.base + parsed.records.len();
                if snapshot_ops >= wal_end && (snapshot_ops > parsed.base || parsed.torn.is_some())
                {
                    // The snapshot already covers everything this WAL holds
                    // (a crash landed between snapshot rename and WAL swap
                    // during a checkpoint): retire the stale log.
                    report.torn_tail = parsed.torn;
                    vfs.write_atomic(WAL_FILE, &wal_header(epoch, snapshot_ops))?;
                } else {
                    epoch = epoch.max(parsed.epoch);
                    // Replay the records the snapshot has not captured.
                    for (ordinal, op) in parsed.records.iter().enumerate() {
                        if parsed.base + ordinal < snapshot_ops {
                            continue;
                        }
                        apply_replayed(&mut store, op)?;
                        report.replayed += 1;
                    }
                    if parsed.torn.is_some() {
                        // Trim the torn bytes so future appends extend a
                        // clean prefix.
                        vfs.write_atomic(WAL_FILE, &bytes[..parsed.valid_len])?;
                    }
                    report.torn_tail = parsed.torn;
                }
            }
        }

        let wal = vfs.open_append(WAL_FILE)?;
        Ok((
            DurableStore {
                vfs,
                store,
                wal,
                epoch,
                policy,
                unsynced: 0,
            },
            report,
        ))
    }

    /// Read access to the in-memory store (catalog, journal, queries).
    pub fn store(&self) -> &Store {
        &self.store
    }

    /// The current snapshot/WAL epoch (bumped by every checkpoint).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The fsync policy in effect.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// WAL appends acknowledged since the last fsync (group-commit debt).
    pub fn pending_sync(&self) -> usize {
        self.unsynced
    }

    /// Creates a table, write-ahead logged.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        arity: usize,
        attributes: Option<Vec<String>>,
    ) -> Result<(), StoreError> {
        let name = name.into();
        // Pre-validate so the WAL only ever records operations that apply
        // cleanly: the on-disk stream must replay change-for-change.
        if self.store.catalog().table(&name).is_ok() {
            return Err(StoreError::DuplicateTable(name));
        }
        self.log(&Operation::CreateTable {
            name: name.clone(),
            arity,
            attributes: attributes.clone(),
        })?;
        self.store.create_table(name, arity, attributes)
    }

    /// Inserts a row, write-ahead logged.  Returns `true` if the row was
    /// new; duplicate inserts touch neither the WAL nor the journal.
    pub fn insert(&mut self, table: &str, row: Tuple) -> Result<bool, StoreError> {
        let t = self.store.catalog().table(table)?;
        if t.arity() != row.arity() {
            return Err(StoreError::ArityMismatch {
                table: table.to_string(),
                expected: t.arity(),
                actual: row.arity(),
            });
        }
        if t.contains(&row) {
            return Ok(false);
        }
        self.log(&Operation::Insert {
            table: table.to_string(),
            row: row.clone(),
        })?;
        self.store.insert(table, row)
    }

    /// Retracts a row, write-ahead logged.  Returns `true` if the row was
    /// present; retracting an absent row touches neither the WAL nor the
    /// journal.
    pub fn retract(&mut self, table: &str, row: &Tuple) -> Result<bool, StoreError> {
        if !self.store.catalog().table(table)?.contains(row) {
            return Ok(false);
        }
        self.log(&Operation::Retract {
            table: table.to_string(),
            row: row.clone(),
        })?;
        self.store.retract(table, row)
    }

    /// Forces every acknowledged append to stable storage, regardless of
    /// policy.
    pub fn sync(&mut self) -> Result<(), StoreError> {
        if self.unsynced > 0 || matches!(self.policy, FsyncPolicy::Never) {
            self.wal.sync()?;
            self.unsynced = 0;
        }
        Ok(())
    }

    /// Checkpoints the store: writes a snapshot of the current state (temp
    /// file + fsync + atomic rename), then — only once the snapshot is
    /// durable — truncates the WAL to a fresh epoch whose base offset is the
    /// snapshot's operation count, and clears the in-memory journal (which
    /// advances its monotone base, keeping [`crate::ResidentSync`] cursors
    /// valid).
    ///
    /// A crash at *any* point leaves a recoverable pair: before the snapshot
    /// rename the old snapshot + full WAL still recover; between rename and
    /// WAL swap the new snapshot subsumes the stale WAL, which recovery
    /// detects by op count and retires.
    pub fn checkpoint(&mut self) -> Result<(), StoreError> {
        self.sync()?;
        let next_epoch = self.epoch + 1;
        let op_count = self.store.journal().end();
        let snapshot = encode_snapshot(&self.store, next_epoch, op_count)?;
        self.vfs.write_atomic(SNAPSHOT_FILE, &snapshot)?;
        // Snapshot is durable; the WAL records it covers are now redundant.
        self.vfs
            .write_atomic(WAL_FILE, &wal_header(next_epoch, op_count))?;
        self.wal = self.vfs.open_append(WAL_FILE)?;
        self.store.journal_mut().clear();
        self.epoch = next_epoch;
        self.unsynced = 0;
        Ok(())
    }

    /// Encodes `op`, appends it as a checksummed WAL record, and applies the
    /// fsync policy.  Called *before* the in-memory apply (write-ahead
    /// ordering): on error the store is untouched.
    fn log(&mut self, op: &Operation) -> Result<(), StoreError> {
        let payload = encode_operation(op);
        let mut record = Vec::with_capacity(8 + payload.len());
        codec::put_u32(&mut record, payload.len() as u32);
        codec::put_u32(&mut record, crc32(&payload));
        record.extend_from_slice(&payload);
        self.wal.append(&record)?;
        match self.policy {
            FsyncPolicy::Always => self.wal.sync()?,
            FsyncPolicy::EveryN(n) => {
                self.unsynced += 1;
                if self.unsynced >= n {
                    self.wal.sync()?;
                    self.unsynced = 0;
                }
            }
            FsyncPolicy::Never => {}
        }
        Ok(())
    }
}

/// Applies one replayed WAL operation to the store being recovered.  The WAL
/// only ever records operations that changed state, so a replay that turns
/// out to be a no-op means the log and snapshot disagree — corruption that
/// slipped past the checksums, surfaced loudly rather than absorbed.
fn apply_replayed(store: &mut Store, op: &Operation) -> Result<(), StoreError> {
    let changed = match op {
        Operation::CreateTable {
            name,
            arity,
            attributes,
        } => {
            store.create_table(name.clone(), *arity, attributes.clone())?;
            true
        }
        Operation::Insert { table, row } => store.insert(table, row.clone())?,
        Operation::Retract { table, row } => store.retract(table, row)?,
    };
    if !changed {
        return Err(StoreError::Corrupt {
            offset: 0,
            reason: "wal record replayed as a no-op — log and snapshot disagree".to_string(),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// WAL encode / parse
// ---------------------------------------------------------------------------

fn wal_header(epoch: u64, base: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(WAL_HEADER_LEN);
    out.extend_from_slice(WAL_MAGIC);
    codec::put_u64(&mut out, epoch);
    codec::put_u64(&mut out, base as u64);
    out
}

struct ParsedWal {
    epoch: u64,
    base: usize,
    records: Vec<Operation>,
    /// Byte length of the valid prefix (header + intact records).
    valid_len: usize,
    torn: Option<TornTail>,
}

/// Parses a WAL file: header, then records until end-of-file.  An incomplete
/// **final** record (its bytes run out at EOF) is a torn tail — reported,
/// not fatal.  A complete record that fails its checksum or does not decode
/// is corruption — fatal, with the offending byte offset.
fn parse_wal(bytes: &[u8]) -> Result<ParsedWal, StoreError> {
    if bytes.len() < WAL_HEADER_LEN || &bytes[..8] != WAL_MAGIC {
        return Err(StoreError::Corrupt {
            offset: 0,
            reason: format!(
                "bad wal header: {}",
                if bytes.len() < WAL_HEADER_LEN {
                    format!("{} bytes, need {WAL_HEADER_LEN}", bytes.len())
                } else {
                    "magic mismatch".to_string()
                }
            ),
        });
    }
    let mut header = Reader::new(&bytes[8..WAL_HEADER_LEN]);
    let epoch = header.get_u64("wal epoch").expect("16 header bytes");
    let base = header.get_u64("wal base").expect("16 header bytes") as usize;

    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    let mut torn = None;
    while pos < bytes.len() {
        let remaining = bytes.len() - pos;
        if remaining < 8 {
            torn = Some(TornTail {
                offset: pos as u64,
                reason: format!("record header truncated: {remaining} of 8 bytes"),
            });
            break;
        }
        let mut head = Reader::new(&bytes[pos..pos + 8]);
        let len = head.get_u32("record length").expect("8 bytes") as usize;
        let crc = head.get_u32("record checksum").expect("8 bytes");
        if remaining - 8 < len {
            torn = Some(TornTail {
                offset: pos as u64,
                reason: format!("record payload truncated: {} of {len} bytes", remaining - 8),
            });
            break;
        }
        // The record's bytes are fully present: any mismatch from here on is
        // corruption, not a tear.
        let payload = &bytes[pos + 8..pos + 8 + len];
        let actual = crc32(payload);
        if actual != crc {
            return Err(StoreError::Corrupt {
                offset: pos as u64,
                reason: format!(
                    "record checksum mismatch: stored {crc:#010x}, computed {actual:#010x}"
                ),
            });
        }
        let mut r = Reader::new(payload);
        let op = decode_operation(&mut r).map_err(|e| {
            let e = e.offset_by(pos + 8);
            StoreError::Corrupt {
                offset: e.offset as u64,
                reason: e.reason,
            }
        })?;
        if !r.is_empty() {
            return Err(StoreError::Corrupt {
                offset: (pos + 8 + r.position()) as u64,
                reason: format!("{} trailing bytes after operation", r.remaining()),
            });
        }
        records.push(op);
        pos += 8 + len;
    }
    Ok(ParsedWal {
        epoch,
        base,
        records,
        valid_len: pos,
        torn,
    })
}

// ---------------------------------------------------------------------------
// Snapshot encode / decode
// ---------------------------------------------------------------------------

fn encode_snapshot(store: &Store, epoch: u64, op_count: usize) -> Result<Vec<u8>, StoreError> {
    let mut body = Vec::new();
    codec::put_u64(&mut body, epoch);
    codec::put_u64(&mut body, op_count as u64);
    codec::put_u32(&mut body, store.catalog().len() as u32);
    for table in store.catalog().iter() {
        codec::put_str(&mut body, table.name());
        codec::put_u32(&mut body, table.arity() as u32);
        match table.attributes() {
            None => body.push(0),
            Some(attrs) => {
                body.push(1);
                codec::put_u32(&mut body, attrs.len() as u32);
                for a in attrs {
                    codec::put_str(&mut body, a);
                }
            }
        }
        let rows: Vec<&Tuple> = table.scan().collect();
        codec::put_u64(&mut body, rows.len() as u64);
        for row in rows {
            codec::put_tuple(&mut body, row);
        }
    }
    let mut out = Vec::with_capacity(12 + body.len());
    out.extend_from_slice(SNAP_MAGIC);
    codec::put_u32(&mut out, crc32(&body));
    out.extend_from_slice(&body);
    Ok(out)
}

/// Decodes a snapshot into a rebuilt [`Store`] plus the absolute op count
/// and epoch it captured.  Snapshots are written atomically, so *any*
/// damage — short file, bad magic, checksum or structural mismatch — is
/// hard corruption.
fn decode_snapshot(bytes: &[u8]) -> Result<(Store, usize, u64), StoreError> {
    if bytes.len() < 12 || &bytes[..8] != SNAP_MAGIC {
        return Err(StoreError::Corrupt {
            offset: 0,
            reason: format!(
                "bad snapshot header: {}",
                if bytes.len() < 12 {
                    format!("{} bytes, need at least 12", bytes.len())
                } else {
                    "magic mismatch".to_string()
                }
            ),
        });
    }
    let stored_crc = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    let body = &bytes[12..];
    let actual = crc32(body);
    if actual != stored_crc {
        return Err(StoreError::Corrupt {
            offset: 8,
            reason: format!(
                "snapshot checksum mismatch: stored {stored_crc:#010x}, computed {actual:#010x}"
            ),
        });
    }
    let corrupt = |e: codec::DecodeError| {
        let e = e.offset_by(12);
        StoreError::Corrupt {
            offset: e.offset as u64,
            reason: e.reason,
        }
    };
    let mut r = Reader::new(body);
    let epoch = r.get_u64("snapshot epoch").map_err(corrupt)?;
    let op_count = r.get_u64("snapshot op count").map_err(corrupt)? as usize;
    let table_count = r.get_u32("table count").map_err(corrupt)? as usize;
    let mut store = Store::new();
    for _ in 0..table_count {
        let name = r.get_str("table name").map_err(corrupt)?.to_string();
        let arity = r.get_u32("table arity").map_err(corrupt)? as usize;
        let attributes = match r.get_u8("attributes flag").map_err(corrupt)? {
            0 => None,
            1 => {
                let count = r.get_u32("attribute count").map_err(corrupt)? as usize;
                if count > r.remaining() {
                    return Err(StoreError::Corrupt {
                        offset: (12 + r.position()) as u64,
                        reason: format!(
                            "attribute count {count} exceeds the {} remaining bytes",
                            r.remaining()
                        ),
                    });
                }
                let mut attrs = Vec::with_capacity(count);
                for _ in 0..count {
                    attrs.push(r.get_str("attribute name").map_err(corrupt)?.to_string());
                }
                Some(attrs)
            }
            flag => {
                return Err(StoreError::Corrupt {
                    offset: (12 + r.position() - 1) as u64,
                    reason: format!("invalid attributes flag {flag}"),
                })
            }
        };
        store.create_table(name.clone(), arity, attributes)?;
        let row_count = r.get_u64("row count").map_err(corrupt)? as usize;
        if row_count > r.remaining() {
            return Err(StoreError::Corrupt {
                offset: (12 + r.position()) as u64,
                reason: format!(
                    "row count {row_count} exceeds the {} remaining bytes",
                    r.remaining()
                ),
            });
        }
        for _ in 0..row_count {
            let row = r.get_tuple().map_err(corrupt)?;
            store.insert(&name, row)?;
        }
    }
    if !r.is_empty() {
        return Err(StoreError::Corrupt {
            offset: (12 + r.position()) as u64,
            reason: format!("{} trailing bytes after last table", r.remaining()),
        });
    }
    Ok((store, op_count, epoch))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Fault, FaultVfs, MemVfs};
    use rtx_relational::Value;

    fn open_mem(vfs: &MemVfs) -> (DurableStore, RecoveryReport) {
        DurableStore::open(Arc::new(vfs.clone()), FsyncPolicy::Always).unwrap()
    }

    fn seed(store: &mut DurableStore) {
        store.create_table("price", 2, None).unwrap();
        for (p, amt) in [("time", 855), ("newsweek", 845)] {
            store
                .insert("price", Tuple::new(vec![Value::str(p), Value::int(amt)]))
                .unwrap();
        }
    }

    #[test]
    fn reopen_recovers_from_the_wal_alone() {
        let vfs = MemVfs::new();
        let (mut store, report) = open_mem(&vfs);
        assert_eq!(report, RecoveryReport::default());
        seed(&mut store);
        store
            .retract(
                "price",
                &Tuple::new(vec![Value::str("time"), Value::int(855)]),
            )
            .unwrap();
        let expect = store.store().to_instance().unwrap();
        drop(store); // "crash": no checkpoint ever ran

        let (recovered, report) = open_mem(&vfs);
        assert_eq!(report.snapshot_ops, 0);
        assert_eq!(report.replayed, 4);
        assert_eq!(report.torn_tail, None);
        assert_eq!(recovered.store().to_instance().unwrap(), expect);
        // Absolute numbering continues where the log left off.
        assert_eq!(recovered.store().journal().end(), 4);
    }

    #[test]
    fn checkpoint_then_reopen_uses_the_snapshot() {
        let vfs = MemVfs::new();
        let (mut store, _) = open_mem(&vfs);
        seed(&mut store);
        store.checkpoint().unwrap();
        assert_eq!(store.epoch(), 1);
        assert!(store.store().journal().is_empty());
        assert_eq!(store.store().journal().base(), 3);
        // Post-checkpoint writes land in the fresh WAL tail.
        store
            .insert(
                "price",
                Tuple::new(vec![Value::str("lemonde"), Value::int(8350)]),
            )
            .unwrap();
        let expect = store.store().to_instance().unwrap();
        drop(store);

        let (recovered, report) = open_mem(&vfs);
        assert_eq!(report.snapshot_ops, 3);
        assert_eq!(report.replayed, 1);
        assert_eq!(recovered.store().to_instance().unwrap(), expect);
        assert_eq!(recovered.epoch(), 1);
        assert_eq!(recovered.store().journal().end(), 4);

        // Duplicate-table creation still rejected after recovery.
        assert!(matches!(
            {
                let mut r = recovered;
                r.create_table("price", 2, None)
            },
            Err(StoreError::DuplicateTable(_))
        ));
    }

    #[test]
    fn torn_tail_is_dropped_gracefully_and_trimmed() {
        let vfs = MemVfs::new();
        let (mut store, _) = open_mem(&vfs);
        seed(&mut store);
        drop(store);
        // Tear the last record: chop 3 bytes off the WAL.
        let len = vfs.len_of(WAL_FILE).unwrap();
        vfs.truncate(WAL_FILE, len - 3);

        let (recovered, report) = open_mem(&vfs);
        let torn = report.torn_tail.expect("tail was torn");
        assert!(torn.reason.contains("truncated"), "{}", torn.reason);
        assert_eq!(report.replayed, 2); // create + first insert survive
        assert_eq!(recovered.store().scan("price").unwrap().len(), 1);
        drop(recovered);

        // The torn bytes were trimmed: a second recovery is clean.
        let (_, report) = open_mem(&vfs);
        assert_eq!(report.torn_tail, None);
        assert_eq!(report.replayed, 2);
    }

    #[test]
    fn mid_file_corruption_is_a_hard_error_with_offset() {
        let vfs = MemVfs::new();
        let (mut store, _) = open_mem(&vfs);
        seed(&mut store);
        drop(store);
        // Flip a byte inside the FIRST record's payload (header is 24
        // bytes, record header 8 more).
        vfs.corrupt_byte(WAL_FILE, WAL_HEADER_LEN + 8 + 2);

        let err = DurableStore::open(Arc::new(vfs.clone()), FsyncPolicy::Always).unwrap_err();
        match err {
            StoreError::Corrupt { offset, reason } => {
                assert_eq!(offset, WAL_HEADER_LEN as u64);
                assert!(reason.contains("checksum"), "{reason}");
            }
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn corrupt_snapshot_is_a_hard_error() {
        let vfs = MemVfs::new();
        let (mut store, _) = open_mem(&vfs);
        seed(&mut store);
        store.checkpoint().unwrap();
        drop(store);
        vfs.corrupt_byte(SNAPSHOT_FILE, 20);
        let err = DurableStore::open(Arc::new(vfs.clone()), FsyncPolicy::Always).unwrap_err();
        assert!(matches!(err, StoreError::Corrupt { .. }), "{err:?}");
    }

    #[test]
    fn crash_between_snapshot_and_wal_swap_recovers() {
        // Checkpoint's danger window: the new snapshot is renamed into
        // place, then the crash hits before the WAL is reset.  Recovery
        // must notice the stale WAL (its ops are all covered) and retire it.
        let vfs = MemVfs::new();
        let (mut store, _) = open_mem(&vfs);
        seed(&mut store);
        let expect = store.store().to_instance().unwrap();
        // Hand-roll the first half of a checkpoint.
        let snap = encode_snapshot(store.store(), 1, store.store().journal().end()).unwrap();
        vfs.write_atomic(SNAPSHOT_FILE, &snap).unwrap();
        drop(store); // crash before the WAL swap

        let (recovered, report) = open_mem(&vfs);
        assert_eq!(report.snapshot_ops, 3);
        assert_eq!(report.replayed, 0);
        assert_eq!(recovered.store().to_instance().unwrap(), expect);
        assert_eq!(recovered.store().journal().end(), 3);
    }

    #[test]
    fn group_commit_syncs_every_n() {
        let vfs = MemVfs::new();
        let (mut store, _) =
            DurableStore::open(Arc::new(vfs.clone()), FsyncPolicy::EveryN(3)).unwrap();
        store.create_table("t", 1, None).unwrap();
        assert_eq!(store.pending_sync(), 1);
        store
            .insert("t", Tuple::from_iter(vec![Value::int(1)]))
            .unwrap();
        assert_eq!(store.pending_sync(), 2);
        store
            .insert("t", Tuple::from_iter(vec![Value::int(2)]))
            .unwrap(); // third append: group commits
        assert_eq!(store.pending_sync(), 0);
        store
            .insert("t", Tuple::from_iter(vec![Value::int(3)]))
            .unwrap();
        assert_eq!(store.pending_sync(), 1);
        store.sync().unwrap();
        assert_eq!(store.pending_sync(), 0);
    }

    #[test]
    fn wal_append_failure_leaves_memory_untouched() {
        // Fault the 6th I/O op: snapshot read (1), wal read (2), header
        // write (3), create append (4), create fsync (5), insert append
        // (6) — the insert's WAL write fails, so the in-memory store must
        // not apply it either.
        let vfs = MemVfs::new();
        let faulty = FaultVfs::new(vfs.clone(), 6, Fault::Error);
        let (mut store, _) = DurableStore::open(Arc::new(faulty), FsyncPolicy::Always).unwrap();
        store.create_table("t", 1, None).unwrap();
        let row = Tuple::from_iter(vec![Value::int(1)]);
        assert!(matches!(
            store.insert("t", row.clone()),
            Err(StoreError::Io { .. })
        ));
        assert!(store.store().scan("t").unwrap().is_empty());
        assert_eq!(store.store().journal().end(), 1);
        // The fault was transient: the same insert goes through now.
        assert!(store.insert("t", row).unwrap());
        assert_eq!(store.store().scan("t").unwrap().len(), 1);
    }

    #[test]
    fn rtx_fsync_override_parses_strictly() {
        // Unset or blank means "no override" under the shared RTX_* contract.
        assert_eq!(FsyncPolicy::from_env(None), Ok(None));
        assert_eq!(FsyncPolicy::from_env(Some("")), Ok(None));
        assert_eq!(FsyncPolicy::from_env(Some("  ")), Ok(None));
        // Well-formed values trim surrounding whitespace and ignore keyword
        // case, like every other RTX_* variable.
        assert_eq!(
            FsyncPolicy::from_env(Some("always")),
            Ok(Some(FsyncPolicy::Always))
        );
        assert_eq!(
            FsyncPolicy::from_env(Some(" Never ")),
            Ok(Some(FsyncPolicy::Never))
        );
        assert_eq!(
            FsyncPolicy::from_env(Some("every:8")),
            Ok(Some(FsyncPolicy::EveryN(8)))
        );
        // Malformed values are hard errors naming the variable — no signs,
        // no zero, no inner spaces, no garbage.
        for bad in [
            "every:",
            "every:0",
            "every:-2",
            "every: 3",
            "every:3x",
            "3",
            "sometimes",
            "alwaysnever",
        ] {
            let err = FsyncPolicy::from_env(Some(bad)).unwrap_err();
            assert_eq!(err.var, "RTX_FSYNC", "{bad:?}");
            assert_eq!(err.value, bad);
        }
    }

    #[test]
    fn operation_codec_round_trips() {
        let ops = vec![
            Operation::CreateTable {
                name: "t".into(),
                arity: 2,
                attributes: Some(vec!["a".into(), "b".into()]),
            },
            Operation::CreateTable {
                name: String::new(),
                arity: 0,
                attributes: None,
            },
            Operation::Insert {
                table: "t".into(),
                row: Tuple::new(vec![Value::str("x\"y\n"), Value::int(i64::MIN)]),
            },
            Operation::Retract {
                table: "t".into(),
                row: Tuple::new(vec![Value::str(""), Value::int(-1)]),
            },
        ];
        for op in &ops {
            let bytes = encode_operation(op);
            let mut r = Reader::new(&bytes);
            assert_eq!(&decode_operation(&mut r).unwrap(), op);
            assert!(r.is_empty());
            // Every truncation errors, never panics.
            for cut in 0..bytes.len() {
                assert!(decode_operation(&mut Reader::new(&bytes[..cut])).is_err());
            }
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }
}
