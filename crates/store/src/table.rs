//! Hash-indexed tables.

use crate::StoreError;
use rtx_relational::{FxHashMap, Tuple, Value};
use std::collections::{BTreeMap, HashSet};

/// A single table: rows of a fixed arity with a primary hash index (for O(1)
/// duplicate detection) and lazily maintained per-column secondary indexes.
#[derive(Debug, Clone, Default)]
pub struct Table {
    name: String,
    arity: usize,
    attributes: Option<Vec<String>>,
    rows: Vec<Tuple>,
    primary: HashSet<Tuple>,
    /// column → (value → row indexes)
    secondary: BTreeMap<usize, FxHashMap<Value, Vec<usize>>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(name: impl Into<String>, arity: usize, attributes: Option<Vec<String>>) -> Self {
        Table {
            name: name.into(),
            arity,
            attributes,
            rows: Vec::new(),
            primary: HashSet::new(),
            secondary: BTreeMap::new(),
        }
    }

    /// The table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table arity.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Optional attribute names.
    pub fn attributes(&self) -> Option<&[String]> {
        self.attributes.as_deref()
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Inserts a row; duplicate rows are ignored (set semantics).  Returns
    /// whether the row was new.
    pub fn insert(&mut self, row: Tuple) -> Result<bool, StoreError> {
        if row.arity() != self.arity {
            return Err(StoreError::ArityMismatch {
                table: self.name.clone(),
                expected: self.arity,
                actual: row.arity(),
            });
        }
        if self.primary.contains(&row) {
            return Ok(false);
        }
        let row_index = self.rows.len();
        for (column, index) in self.secondary.iter_mut() {
            let value = *row.get(*column).expect("arity checked");
            index.entry(value).or_default().push(row_index);
        }
        self.primary.insert(row.clone());
        self.rows.push(row);
        Ok(true)
    }

    /// Removes a row, maintaining every secondary index.  Returns whether
    /// the row was present (removing an absent row is a no-op, mirroring
    /// [`Table::insert`]'s set semantics).  Costs one scan to locate the
    /// row slot plus O(indexes) bucket surgery — rows are stored unordered,
    /// so the vacated slot is filled by the last row and that row's index
    /// entries are repointed.
    pub fn remove(&mut self, row: &Tuple) -> Result<bool, StoreError> {
        if row.arity() != self.arity {
            return Err(StoreError::ArityMismatch {
                table: self.name.clone(),
                expected: self.arity,
                actual: row.arity(),
            });
        }
        if !self.primary.remove(row) {
            return Ok(false);
        }
        let pos = self
            .rows
            .iter()
            .position(|r| r == row)
            .expect("primary and rows agree");
        let last = self.rows.len() - 1;
        for (column, index) in self.secondary.iter_mut() {
            let value = *row.get(*column).expect("arity checked");
            if let Some(bucket) = index.get_mut(&value) {
                bucket.retain(|&i| i != pos);
                if bucket.is_empty() {
                    index.remove(&value);
                }
            }
        }
        self.rows.swap_remove(pos);
        // The former last row (if any) moved into `pos`: repoint its entries.
        if pos != last {
            let moved = self.rows[pos].clone();
            for (column, index) in self.secondary.iter_mut() {
                let value = *moved.get(*column).expect("arity checked");
                if let Some(bucket) = index.get_mut(&value) {
                    for i in bucket.iter_mut() {
                        if *i == last {
                            *i = pos;
                        }
                    }
                }
            }
        }
        Ok(true)
    }

    /// True if the row is present.
    pub fn contains(&self, row: &Tuple) -> bool {
        self.primary.contains(row)
    }

    /// Iterates over all rows (full scan).
    pub fn scan(&self) -> impl Iterator<Item = &Tuple> {
        self.rows.iter()
    }

    /// Builds (if necessary) the secondary index on a column.
    pub fn build_index(&mut self, column: usize) -> Result<(), StoreError> {
        if column >= self.arity {
            return Err(StoreError::ColumnOutOfRange {
                table: self.name.clone(),
                column,
            });
        }
        if self.secondary.contains_key(&column) {
            return Ok(());
        }
        let mut index: FxHashMap<Value, Vec<usize>> = FxHashMap::default();
        for (i, row) in self.rows.iter().enumerate() {
            index
                .entry(*row.get(column).expect("arity checked"))
                .or_default()
                .push(i);
        }
        self.secondary.insert(column, index);
        Ok(())
    }

    /// True if a secondary index exists on the column.
    pub fn has_index(&self, column: usize) -> bool {
        self.secondary.contains_key(&column)
    }

    /// Selects the rows whose `column` equals `value`, using the secondary
    /// index when available, otherwise a full scan.
    pub fn select_eq(&self, column: usize, value: &Value) -> Result<Vec<Tuple>, StoreError> {
        if column >= self.arity {
            return Err(StoreError::ColumnOutOfRange {
                table: self.name.clone(),
                column,
            });
        }
        if let Some(index) = self.secondary.get(&column) {
            return Ok(index
                .get(value)
                .map(|ids| ids.iter().map(|&i| self.rows[i].clone()).collect())
                .unwrap_or_default());
        }
        Ok(self
            .rows
            .iter()
            .filter(|row| row.get(column) == Some(value))
            .cloned()
            .collect())
    }

    /// Projects every row onto the given columns.
    pub fn project(&self, columns: &[usize]) -> Result<Vec<Tuple>, StoreError> {
        for &c in columns {
            if c >= self.arity {
                return Err(StoreError::ColumnOutOfRange {
                    table: self.name.clone(),
                    column: c,
                });
            }
        }
        Ok(self
            .rows
            .iter()
            .map(|row| row.project(columns).expect("columns checked"))
            .collect())
    }

    /// Hash equijoin with another table on `self.column == other.column`.
    /// Returns concatenated rows.
    pub fn join_eq(
        &self,
        own_column: usize,
        other: &Table,
        other_column: usize,
    ) -> Result<Vec<Tuple>, StoreError> {
        if own_column >= self.arity {
            return Err(StoreError::ColumnOutOfRange {
                table: self.name.clone(),
                column: own_column,
            });
        }
        if other_column >= other.arity {
            return Err(StoreError::ColumnOutOfRange {
                table: other.name.clone(),
                column: other_column,
            });
        }
        // Build a hash map on the smaller side.
        let mut by_value: FxHashMap<&Value, Vec<&Tuple>> = FxHashMap::default();
        for row in &other.rows {
            by_value
                .entry(row.get(other_column).expect("arity checked"))
                .or_default()
                .push(row);
        }
        let mut out = Vec::new();
        for row in &self.rows {
            let key = row.get(own_column).expect("arity checked");
            if let Some(matches) = by_value.get(key) {
                for m in matches {
                    out.push(row.concat(m));
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn price_table() -> Table {
        let mut t = Table::new("price", 2, Some(vec!["product".into(), "amount".into()]));
        t.insert(Tuple::from_iter(vec![Value::str("time"), Value::int(855)]))
            .unwrap();
        t.insert(Tuple::from_iter(vec![
            Value::str("newsweek"),
            Value::int(845),
        ]))
        .unwrap();
        t.insert(Tuple::from_iter(vec![
            Value::str("lemonde"),
            Value::int(8350),
        ]))
        .unwrap();
        t
    }

    #[test]
    fn insert_is_set_semantics_and_checks_arity() {
        let mut t = price_table();
        assert_eq!(t.len(), 3);
        assert!(!t
            .insert(Tuple::from_iter(vec![Value::str("time"), Value::int(855)]))
            .unwrap());
        assert_eq!(t.len(), 3);
        assert!(matches!(
            t.insert(Tuple::from_iter(vec![Value::str("x")])),
            Err(StoreError::ArityMismatch { .. })
        ));
        assert!(t.contains(&Tuple::from_iter(vec![Value::str("time"), Value::int(855)])));
        assert!(!t.is_empty());
        assert_eq!(t.name(), "price");
        assert_eq!(t.arity(), 2);
        assert_eq!(t.attributes().unwrap().len(), 2);
    }

    #[test]
    fn remove_maintains_rows_primary_and_indexes() {
        let mut t = price_table();
        t.build_index(0).unwrap();

        // Absent rows and arity mismatches mirror insert's behaviour.
        assert!(!t
            .remove(&Tuple::from_iter(vec![
                Value::str("economist"),
                Value::int(1)
            ]))
            .unwrap());
        assert!(matches!(
            t.remove(&Tuple::from_iter(vec![Value::str("x")])),
            Err(StoreError::ArityMismatch { .. })
        ));

        // Remove a row that is not last: the swapped row's index entries
        // must be repointed, and every probe must stay consistent.
        let time = Tuple::from_iter(vec![Value::str("time"), Value::int(855)]);
        assert!(t.remove(&time).unwrap());
        assert_eq!(t.len(), 2);
        assert!(!t.contains(&time));
        assert!(t.select_eq(0, &Value::str("time")).unwrap().is_empty());
        assert_eq!(t.select_eq(0, &Value::str("lemonde")).unwrap().len(), 1);
        assert_eq!(t.select_eq(0, &Value::str("newsweek")).unwrap().len(), 1);

        // Remove-then-reinsert round-trips.
        t.insert(time.clone()).unwrap();
        assert_eq!(t.select_eq(0, &Value::str("time")).unwrap().len(), 1);

        // Draining the table empties every bucket.
        for row in t.scan().cloned().collect::<Vec<_>>() {
            assert!(t.remove(&row).unwrap());
        }
        assert!(t.is_empty());
        assert!(t.select_eq(0, &Value::str("lemonde")).unwrap().is_empty());
    }

    #[test]
    fn select_with_and_without_index_agree() {
        let mut t = price_table();
        let unindexed = t.select_eq(0, &Value::str("time")).unwrap();
        t.build_index(0).unwrap();
        assert!(t.has_index(0));
        let indexed = t.select_eq(0, &Value::str("time")).unwrap();
        assert_eq!(unindexed, indexed);
        assert_eq!(indexed.len(), 1);
        // index is maintained by later inserts
        t.insert(Tuple::from_iter(vec![Value::str("time"), Value::int(900)]))
            .unwrap();
        assert_eq!(t.select_eq(0, &Value::str("time")).unwrap().len(), 2);
        // missing value
        assert!(t.select_eq(0, &Value::str("economist")).unwrap().is_empty());
    }

    #[test]
    fn column_bounds_are_checked() {
        let mut t = price_table();
        assert!(matches!(
            t.select_eq(5, &Value::int(1)),
            Err(StoreError::ColumnOutOfRange { .. })
        ));
        assert!(t.build_index(7).is_err());
        assert!(t.project(&[0, 9]).is_err());
    }

    #[test]
    fn projection() {
        let t = price_table();
        let products = t.project(&[0]).unwrap();
        assert_eq!(products.len(), 3);
        assert!(products.contains(&Tuple::from_iter(vec![Value::str("lemonde")])));
    }

    #[test]
    fn hash_join() {
        let prices = price_table();
        let mut orders = Table::new("order", 1, None);
        orders
            .insert(Tuple::from_iter(vec![Value::str("time")]))
            .unwrap();
        orders
            .insert(Tuple::from_iter(vec![Value::str("economist")]))
            .unwrap();
        let joined = orders.join_eq(0, &prices, 0).unwrap();
        assert_eq!(joined.len(), 1);
        assert_eq!(joined[0].arity(), 3);
        assert_eq!(joined[0].get(2), Some(&Value::int(855)));
        assert!(orders.join_eq(3, &prices, 0).is_err());
        assert!(orders.join_eq(0, &prices, 9).is_err());
    }
}
