//! Append-only operation journal with replay.

use rtx_relational::Tuple;

/// A journaled operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// A table was created.
    CreateTable {
        /// Table name.
        name: String,
        /// Table arity.
        arity: usize,
        /// Optional attribute names.
        attributes: Option<Vec<String>>,
    },
    /// A row was inserted.
    Insert {
        /// Table name.
        table: String,
        /// The inserted row.
        row: Tuple,
    },
    /// A row was retracted.
    Retract {
        /// Table name.
        table: String,
        /// The removed row.
        row: Tuple,
    },
}

/// An append-only journal of operations, addressed by **absolute** offsets.
///
/// Every mutating operation on a [`crate::Store`] is appended here; a fresh
/// store with identical contents can be rebuilt with [`crate::Store::replay`],
/// and the journal is the change feed the resident runtime
/// ([`crate::ResidentSync`]) and the durable layer ([`crate::DurableStore`])
/// both consume.  On disk the same operation stream becomes the write-ahead
/// log: [`crate::DurableStore`] encodes each appended operation as a
/// CRC-checksummed WAL record, so the in-memory journal and the persisted
/// log are two views of one sequence.
///
/// # Base offsets and truncation
///
/// Operations have *absolute* indices: the i-th operation ever journaled has
/// index `i`, forever.  The journal holds the suffix starting at
/// [`Journal::base`] and ending at [`Journal::end`]; [`Journal::clear`]
/// (called after a snapshot) drops the buffered operations but **advances the
/// base** instead of resetting it, so cursors holding absolute positions
/// (like [`crate::ResidentSync::applied`]) stay meaningful across
/// truncation.  The base is monotone — it only ever grows.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Journal {
    /// Absolute index of `operations[0]`: how many operations were appended
    /// and then truncated away by earlier [`Journal::clear`] calls.
    base: usize,
    operations: Vec<Operation>,
}

impl Journal {
    /// Creates an empty journal with base offset 0.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends an operation.
    pub fn append(&mut self, op: Operation) {
        self.operations.push(op);
    }

    /// The buffered operations (absolute indices [`Journal::base`]`..`
    /// [`Journal::end`]), in append order.
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Absolute index of the first buffered operation — the number of
    /// operations truncated away by [`Journal::clear`].
    pub fn base(&self) -> usize {
        self.base
    }

    /// Absolute index one past the last buffered operation: the total number
    /// of operations ever journaled.
    pub fn end(&self) -> usize {
        self.base + self.operations.len()
    }

    /// Number of currently buffered operations ([`Journal::end`] minus
    /// [`Journal::base`]).
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// True if no operations are currently buffered.
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// Truncates the buffered operations (e.g. after a snapshot has made
    /// them redundant), advancing [`Journal::base`] past them so absolute
    /// offsets held by cursors stay correct.
    pub fn clear(&mut self) {
        self.base += self.operations.len();
        self.operations.clear();
    }

    /// Fast-forwards the base offset of an empty journal to `base` — used by
    /// recovery so a store rebuilt from a snapshot of `n` operations resumes
    /// journaling at absolute index `n` rather than 0.
    ///
    /// Only ever moves forward on an empty journal; any other call is a
    /// recovery-logic bug and panics in debug builds (release builds clamp).
    pub(crate) fn rebase(&mut self, base: usize) {
        debug_assert!(self.operations.is_empty(), "rebase of non-empty journal");
        debug_assert!(base >= self.base, "rebase must be monotone");
        self.base = self.base.max(base);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::Value;

    #[test]
    fn journal_records_in_order() {
        let mut j = Journal::new();
        assert!(j.is_empty());
        j.append(Operation::CreateTable {
            name: "price".into(),
            arity: 2,
            attributes: None,
        });
        j.append(Operation::Insert {
            table: "price".into(),
            row: Tuple::from_iter(vec![Value::str("time"), Value::int(855)]),
        });
        assert_eq!(j.len(), 2);
        assert!(matches!(j.operations()[0], Operation::CreateTable { .. }));
        assert!(matches!(j.operations()[1], Operation::Insert { .. }));
        j.clear();
        assert!(j.is_empty());
    }

    #[test]
    fn clear_advances_the_base_monotonically() {
        let mut j = Journal::new();
        assert_eq!((j.base(), j.end()), (0, 0));
        for i in 0..3 {
            j.append(Operation::Insert {
                table: "t".into(),
                row: Tuple::from_iter(vec![Value::int(i)]),
            });
        }
        assert_eq!((j.base(), j.end(), j.len()), (0, 3, 3));
        j.clear();
        // Truncation keeps absolute positions: the next append is op #3.
        assert_eq!((j.base(), j.end(), j.len()), (3, 3, 0));
        j.append(Operation::Insert {
            table: "t".into(),
            row: Tuple::from_iter(vec![Value::int(99)]),
        });
        assert_eq!((j.base(), j.end(), j.len()), (3, 4, 1));
        j.clear();
        assert_eq!((j.base(), j.end()), (4, 4));
    }

    #[test]
    fn rebase_fast_forwards_an_empty_journal() {
        let mut j = Journal::new();
        j.rebase(7);
        assert_eq!((j.base(), j.end()), (7, 7));
        // Monotone: rebasing backwards clamps to the current base.
        j.rebase(7);
        assert_eq!(j.base(), 7);
    }
}
