//! Append-only operation journal with replay.

use rtx_relational::Tuple;

/// A journaled operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operation {
    /// A table was created.
    CreateTable {
        /// Table name.
        name: String,
        /// Table arity.
        arity: usize,
        /// Optional attribute names.
        attributes: Option<Vec<String>>,
    },
    /// A row was inserted.
    Insert {
        /// Table name.
        table: String,
        /// The inserted row.
        row: Tuple,
    },
    /// A row was retracted.
    Retract {
        /// Table name.
        table: String,
        /// The removed row.
        row: Tuple,
    },
}

/// An append-only journal of operations.
///
/// The journal is the minimal durability mechanism the store offers: every
/// mutating operation on a [`crate::Store`] is appended here and a fresh
/// store with identical contents can be rebuilt with
/// [`crate::Store::replay`].  (Persistence to disk is intentionally out of
/// scope — the paper's substrate only needs a queryable catalog — but the
/// journal gives the store the same recover-by-replay structure a durable
/// implementation would have.)
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Journal {
    operations: Vec<Operation>,
}

impl Journal {
    /// Creates an empty journal.
    pub fn new() -> Self {
        Journal::default()
    }

    /// Appends an operation.
    pub fn append(&mut self, op: Operation) {
        self.operations.push(op);
    }

    /// The operations, in append order.
    pub fn operations(&self) -> &[Operation] {
        &self.operations
    }

    /// Number of journaled operations.
    pub fn len(&self) -> usize {
        self.operations.len()
    }

    /// True if nothing has been journaled.
    pub fn is_empty(&self) -> bool {
        self.operations.is_empty()
    }

    /// Truncates the journal (e.g. after a snapshot).
    pub fn clear(&mut self) {
        self.operations.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::Value;

    #[test]
    fn journal_records_in_order() {
        let mut j = Journal::new();
        assert!(j.is_empty());
        j.append(Operation::CreateTable {
            name: "price".into(),
            arity: 2,
            attributes: None,
        });
        j.append(Operation::Insert {
            table: "price".into(),
            row: Tuple::from_iter(vec![Value::str("time"), Value::int(855)]),
        });
        assert_eq!(j.len(), 2);
        assert!(matches!(j.operations()[0], Operation::CreateTable { .. }));
        assert!(matches!(j.operations()[1], Operation::Insert { .. }));
        j.clear();
        assert!(j.is_empty());
    }
}
