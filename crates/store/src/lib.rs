//! # rtx-store
//!
//! An in-memory relational store — the substrate standing in for the external
//! database the paper assumes behind the `db` relations of a transducer
//! schema ("the db relations represent a database used by the system,
//! possibly very large and external", §2.2; the prototype of \[FAY97\] used
//! Postgres).
//!
//! The store provides what the transducer runtime and the datalog engine
//! need from such a database at laptop scale:
//!
//! * a [`Catalog`] of named tables with fixed arity and optional attribute
//!   names;
//! * hash-indexed [`Table`]s with O(1) duplicate detection and per-column
//!   secondary indexes for selection;
//! * selection / projection / equijoin primitives used by the workload
//!   generators and benchmarks;
//! * conversion to and from the `rtx-relational` [`Instance`](rtx_relational::Instance) type, which is
//!   what the transducer runtime consumes at each step;
//! * a write-ahead [`Journal`] (append-only operation log) with replay, which
//!   is the minimal durability story an electronic-commerce deployment needs
//!   for its catalog updates;
//! * a bridge to the resident runtime ([`Store::to_resident`] +
//!   [`ResidentSync`]): the catalog becomes a version-stamped
//!   [`ResidentDb`](rtx_datalog::ResidentDb) shared by every session, and
//!   journal replay keeps it current with per-relation version bumps.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod journal;
mod resident;
mod table;

pub use catalog::{Catalog, Store};
pub use journal::{Journal, Operation};
pub use resident::ResidentSync;
pub use table::Table;

/// Errors produced by the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A table name was used that does not exist.
    UnknownTable(String),
    /// A table was created twice.
    DuplicateTable(String),
    /// A row of the wrong arity was inserted.
    ArityMismatch {
        /// The table involved.
        table: String,
        /// Declared arity.
        expected: usize,
        /// Offending row arity.
        actual: usize,
    },
    /// A column index was out of range.
    ColumnOutOfRange {
        /// The table involved.
        table: String,
        /// The offending column index.
        column: usize,
    },
    /// An error from the relational layer.
    Relational(rtx_relational::RelationalError),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            StoreError::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            StoreError::ArityMismatch {
                table,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for table `{table}`: expected {expected}, got {actual}"
            ),
            StoreError::ColumnOutOfRange { table, column } => {
                write!(f, "column {column} out of range for table `{table}`")
            }
            StoreError::Relational(e) => write!(f, "relational error: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<rtx_relational::RelationalError> for StoreError {
    fn from(e: rtx_relational::RelationalError) -> Self {
        StoreError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::{Tuple, Value};

    #[test]
    fn store_end_to_end() {
        let mut store = Store::new();
        store
            .create_table("price", 2, Some(vec!["product".into(), "amount".into()]))
            .unwrap();
        store
            .insert(
                "price",
                Tuple::from_iter(vec![Value::str("time"), Value::int(855)]),
            )
            .unwrap();
        store
            .insert(
                "price",
                Tuple::from_iter(vec![Value::str("newsweek"), Value::int(845)]),
            )
            .unwrap();
        let rows = store.select_eq("price", 0, &Value::str("time")).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), Some(&Value::int(855)));

        let instance = store.to_instance().unwrap();
        assert_eq!(instance.relation("price").unwrap().len(), 2);
    }

    #[test]
    fn error_display() {
        assert!(StoreError::UnknownTable("x".into())
            .to_string()
            .contains('x'));
        assert!(StoreError::DuplicateTable("x".into())
            .to_string()
            .contains("exists"));
    }
}
