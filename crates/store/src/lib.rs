//! # rtx-store
//!
//! An in-memory relational store — the substrate standing in for the external
//! database the paper assumes behind the `db` relations of a transducer
//! schema ("the db relations represent a database used by the system,
//! possibly very large and external", §2.2; the prototype of \[FAY97\] used
//! Postgres).
//!
//! The store provides what the transducer runtime and the datalog engine
//! need from such a database at laptop scale:
//!
//! * a [`Catalog`] of named tables with fixed arity and optional attribute
//!   names;
//! * hash-indexed [`Table`]s with O(1) duplicate detection and per-column
//!   secondary indexes for selection;
//! * selection / projection / equijoin primitives used by the workload
//!   generators and benchmarks;
//! * conversion to and from the `rtx-relational` [`Instance`](rtx_relational::Instance) type, which is
//!   what the transducer runtime consumes at each step;
//! * a write-ahead [`Journal`] (append-only operation log) with replay and
//!   absolute base offsets that survive truncation;
//! * a bridge to the resident runtime ([`Store::to_resident`] +
//!   [`ResidentSync`]): the catalog becomes a version-stamped
//!   [`ResidentDb`](rtx_datalog::ResidentDb) shared by every session, and
//!   journal replay keeps it current with per-relation version bumps;
//! * a crash-safe durable layer ([`DurableStore`]) over a pluggable storage
//!   backend ([`Vfs`]), with deterministic fault injection ([`FaultVfs`])
//!   for testing recovery.
//!
//! # Durability lifecycle
//!
//! The durable layer persists the store as **one snapshot plus a WAL tail**,
//! moving through a fixed lifecycle:
//!
//! 1. **Append** — every mutation is encoded as a length-prefixed,
//!    CRC32-checksummed record and appended to the on-disk WAL *before* it is
//!    applied to the in-memory catalog (write-ahead ordering).  Interned
//!    symbols cross this boundary by text, so a recovering process (with an
//!    empty [`SymbolTable`](rtx_relational::SymbolTable)) re-interns them.
//! 2. **Fsync policy** — [`FsyncPolicy`] decides when appended records become
//!    durable: `Always` (fsync per commit), `EveryN` (group commit), or
//!    `Never` (leave it to the OS).  The `RTX_FSYNC` environment variable
//!    overrides the policy at [`DurableStore::open`] time.
//! 3. **Snapshot** — [`DurableStore::checkpoint`] writes the whole catalog to
//!    a temp file, fsyncs it, and atomically renames it into place.  The
//!    snapshot records the absolute operation count it captures.
//! 4. **Truncate** — only after the snapshot is durable is the WAL reset (new
//!    epoch, base offset = snapshot's operation count) and the in-memory
//!    [`Journal`] cleared.  [`Journal::clear`] advances a monotone base
//!    offset, so [`ResidentSync`] cursors holding absolute positions resume
//!    correctly after truncation.
//! 5. **Recover** — [`DurableStore::open`] loads the latest valid snapshot
//!    and replays the WAL tail.  A torn final record (the classic
//!    half-written append at the crash point) is detected by length/CRC
//!    mismatch and dropped with a note in the [`RecoveryReport`]; corruption
//!    *before* the tail is a hard [`StoreError::Corrupt`] with a byte offset.
//!
//! Recovery is exercised by a deterministic fault-injection harness
//! ([`FaultVfs`]) that crashes the storage backend at the k-th I/O operation;
//! the workspace-level kill-and-recover sweep asserts that for *every* crash
//! point the recovered state equals the committed prefix of the workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod catalog;
mod durable;
mod journal;
mod resident;
mod table;
mod vfs;

pub use catalog::{Catalog, Store};
pub use durable::{DurableStore, FsyncPolicy, RecoveryReport, TornTail};
pub use journal::{Journal, Operation};
pub use resident::ResidentSync;
pub use table::Table;
pub use vfs::{Fault, FaultVfs, MemVfs, StdVfs, Vfs, VfsFile};

/// Errors produced by the store.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A table name was used that does not exist.
    UnknownTable(String),
    /// A table was created twice.
    DuplicateTable(String),
    /// A row of the wrong arity was inserted.
    ArityMismatch {
        /// The table involved.
        table: String,
        /// Declared arity.
        expected: usize,
        /// Offending row arity.
        actual: usize,
    },
    /// A column index was out of range.
    ColumnOutOfRange {
        /// The table involved.
        table: String,
        /// The offending column index.
        column: usize,
    },
    /// An error from the relational layer.
    Relational(rtx_relational::RelationalError),
    /// An I/O error from the storage backend.  The rendered
    /// [`std::io::Error`] (operation, path, OS detail) is captured as text so
    /// the error type stays `Clone + PartialEq + Eq` like the rest of the
    /// enum.
    Io {
        /// What failed, where, and why (e.g. `"fsync wal: No space left"`).
        context: String,
    },
    /// Persisted data failed validation during recovery — a checksum or
    /// structural mismatch *before* the final WAL record, or an unreadable
    /// snapshot.  (A torn **final** record is not corruption: it is dropped
    /// gracefully and reported via
    /// [`RecoveryReport::torn_tail`].)
    Corrupt {
        /// Byte offset into the corrupt file where validation failed.
        offset: u64,
        /// What the validator expected vs. what it found.
        reason: String,
    },
    /// A [`ResidentSync`] cursor points below the journal's base offset —
    /// the operations it still needed were truncated away before it synced
    /// them.  The cursor holder must rebuild its resident database from a
    /// fresh [`Store::to_resident`].
    JournalTruncated {
        /// The cursor's absolute position.
        applied: usize,
        /// The journal's base offset (first operation still buffered).
        base: usize,
    },
    /// A malformed configuration override (e.g. an unparseable `RTX_FSYNC`
    /// value).  Never produced for an *unset* variable — only a set value
    /// that fails the strict parse, so a typo'd fsync policy can't silently
    /// weaken (or tighten) durability.
    Config {
        /// Which override failed to parse, the value, and the accepted forms.
        detail: String,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::UnknownTable(name) => write!(f, "unknown table `{name}`"),
            StoreError::DuplicateTable(name) => write!(f, "table `{name}` already exists"),
            StoreError::ArityMismatch {
                table,
                expected,
                actual,
            } => write!(
                f,
                "arity mismatch for table `{table}`: expected {expected}, got {actual}"
            ),
            StoreError::ColumnOutOfRange { table, column } => {
                write!(f, "column {column} out of range for table `{table}`")
            }
            StoreError::Relational(e) => write!(f, "relational error: {e}"),
            StoreError::Io { context } => write!(f, "i/o error: {context}"),
            StoreError::Corrupt { offset, reason } => {
                write!(f, "corrupt store data at byte {offset}: {reason}")
            }
            StoreError::JournalTruncated { applied, base } => write!(
                f,
                "journal truncated past cursor: applied {applied} < base {base}"
            ),
            StoreError::Config { detail } => write!(f, "configuration error: {detail}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<rtx_relational::RelationalError> for StoreError {
    fn from(e: rtx_relational::RelationalError) -> Self {
        StoreError::Relational(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::{Tuple, Value};

    #[test]
    fn store_end_to_end() {
        let mut store = Store::new();
        store
            .create_table("price", 2, Some(vec!["product".into(), "amount".into()]))
            .unwrap();
        store
            .insert(
                "price",
                Tuple::from_iter(vec![Value::str("time"), Value::int(855)]),
            )
            .unwrap();
        store
            .insert(
                "price",
                Tuple::from_iter(vec![Value::str("newsweek"), Value::int(845)]),
            )
            .unwrap();
        let rows = store.select_eq("price", 0, &Value::str("time")).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].get(1), Some(&Value::int(855)));

        let instance = store.to_instance().unwrap();
        assert_eq!(instance.relation("price").unwrap().len(), 2);
    }

    #[test]
    fn error_display() {
        assert!(StoreError::UnknownTable("x".into())
            .to_string()
            .contains('x'));
        assert!(StoreError::DuplicateTable("x".into())
            .to_string()
            .contains("exists"));
    }
}
