//! Monitored commerce scenarios: small Spocus business models packaged with
//! the `T_sdi` input-control constraints a [`rtx_verify::SessionMonitor`]
//! enforces over them, plus seeded input sequences — one clean, one that
//! violates a constraint — for the guardrail tests and benchmarks.
//!
//! Four scenarios, each a paper-flavoured electronic-commerce workflow:
//!
//! * [`auction_scenario`] — an auction whose sniping guard forbids bids on a
//!   closed item;
//! * [`inventory_scenario`] — unit-stock reservations whose oversell guard
//!   forbids reserving an already-reserved item;
//! * [`escrow_scenario`] — a multi-party escrow whose release guard demands
//!   that both buyer and seller have deposited before funds are released;
//! * [`fraud_scenario`] — a marketplace whose payout guard forbids paying
//!   out to a flagged account (and whose per-account outputs are the natural
//!   target of a demanded session: see
//!   [`rtx_core::Runtime::open_session_with_demand`]).

use rtx_core::SpocusBuilder;
use rtx_core::SpocusTransducer;
use rtx_datalog::{Atom, BodyLiteral, ResidentDb};
use rtx_logic::{Formula, Term};
use rtx_relational::{Instance, InstanceSequence, Tuple};
use rtx_verify::{SdiConstraint, SessionMonitor, VerifyError};
use std::sync::Arc;

/// A business model bundled with its input-control policy and seeded input
/// sequences for exercising the online guardrails.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Scenario name (also the transducer name).
    pub name: &'static str,
    /// The Spocus business model.
    pub transducer: Arc<SpocusTransducer>,
    /// The fixed database the scenario runs over.
    pub database: Instance,
    /// Named `T_sdi` constraints the scenario's monitor enforces.
    pub constraints: Vec<(&'static str, SdiConstraint)>,
    /// An input sequence that satisfies every constraint at every step.
    pub clean_inputs: InstanceSequence,
    /// An input sequence whose **last** step violates a constraint.
    pub violating_inputs: InstanceSequence,
    /// The name of the constraint the violating sequence trips.
    pub violated_constraint: &'static str,
}

impl Scenario {
    /// Builds a [`SessionMonitor`] for this scenario over a shared database,
    /// with every scenario constraint installed in the admission gate.
    pub fn monitor(&self, db: &Arc<ResidentDb>) -> Result<SessionMonitor, VerifyError> {
        let mut monitor = SessionMonitor::new(self.transducer.clone(), db.clone())?;
        for (name, constraint) in &self.constraints {
            monitor = monitor.with_constraint(*name, constraint.clone())?;
        }
        Ok(monitor)
    }

    /// All four guardrail scenarios.
    pub fn all() -> Vec<Scenario> {
        vec![
            auction_scenario(),
            inventory_scenario(),
            escrow_scenario(),
            fraud_scenario(),
        ]
    }
}

fn steps(schema: &rtx_relational::Schema, rows: &[&[(&str, &[&str])]]) -> InstanceSequence {
    let instances = rows
        .iter()
        .map(|step| {
            let mut inst = Instance::empty(schema);
            for (relation, values) in *step {
                inst.insert(*relation, Tuple::from_iter(values.iter().copied()))
                    .expect("scenario inputs match the input schema");
            }
            inst
        })
        .collect();
    InstanceSequence::new(schema.clone(), instances).expect("one shared input schema")
}

/// An auction: bidders bid on listed items until the item is closed, at which
/// point every recorded bidder is awarded (a toy settlement).  The sniping
/// guard — constraint `no-sniping` — forbids any bid on an item that has
/// already been closed.
pub fn auction_scenario() -> Scenario {
    let transducer = SpocusBuilder::new("auction")
        .input("bid", 2)
        .input("close", 1)
        .database("listed", 1)
        .output("ack", 2)
        .output("award", 2)
        .output("late-bid", 2)
        .output_rule("ack(I,B) :- bid(I,B), listed(I)")
        .output_rule("award(I,B) :- close(I), past-bid(I,B)")
        .output_rule("late-bid(I,B) :- bid(I,B), past-close(I)")
        .log(["bid", "close", "award", "late-bid"])
        .build()
        .expect("the auction model is Spocus by construction");

    let mut database = Instance::empty(transducer.schema().db());
    database
        .insert("listed", Tuple::from_iter(["art"]))
        .expect("listed/1");

    // bid(I,B) ∧ past-close(I) → ⊥ : no bid may land after the close.
    let no_sniping = SdiConstraint::new(
        vec![
            BodyLiteral::Positive(Atom::new("bid", [Term::var("i"), Term::var("b")])),
            BodyLiteral::Positive(Atom::new("past-close", [Term::var("i")])),
        ],
        Formula::False,
    )
    .expect("the sniping guard is a well-formed T_sdi constraint");

    let input = transducer.schema().input().clone();
    let clean_inputs = steps(
        &input,
        &[
            &[("bid", &["art", "alice"][..])],
            &[("bid", &["art", "bob"])],
            &[("close", &["art"])],
        ],
    );
    let violating_inputs = steps(
        &input,
        &[
            &[("bid", &["art", "alice"][..])],
            &[("close", &["art"])],
            &[("bid", &["art", "bob"])],
        ],
    );

    Scenario {
        name: "auction",
        transducer: Arc::new(transducer),
        database,
        constraints: vec![("no-sniping", no_sniping)],
        clean_inputs,
        violating_inputs,
        violated_constraint: "no-sniping",
    }
}

/// Unit-stock inventory reservations: each stocked item can be held by at
/// most one customer, ever.  The oversell guard — constraint `no-oversell` —
/// forbids reserving a stocked item that any customer already reserved at an
/// earlier step.
pub fn inventory_scenario() -> Scenario {
    let transducer = SpocusBuilder::new("inventory")
        .input("reserve", 2)
        .database("stock", 1)
        .output("hold", 2)
        .output("oversold", 2)
        .output_rule("hold(I,C) :- reserve(I,C), stock(I)")
        .output_rule("oversold(I,C) :- reserve(I,C), past-reserve(I,D), stock(I)")
        .log(["reserve", "hold", "oversold"])
        .build()
        .expect("the inventory model is Spocus by construction");

    let mut database = Instance::empty(transducer.schema().db());
    for item in ["widget", "gadget"] {
        database
            .insert("stock", Tuple::from_iter([item]))
            .expect("stock/1");
    }

    // reserve(I,C) ∧ past-reserve(I,D) ∧ stock(I) → ⊥ : a stocked unit
    // reserved once may never be reserved again.
    let no_oversell = SdiConstraint::new(
        vec![
            BodyLiteral::Positive(Atom::new("reserve", [Term::var("i"), Term::var("c")])),
            BodyLiteral::Positive(Atom::new("past-reserve", [Term::var("i"), Term::var("d")])),
            BodyLiteral::Positive(Atom::new("stock", [Term::var("i")])),
        ],
        Formula::False,
    )
    .expect("the oversell guard is a well-formed T_sdi constraint");

    let input = transducer.schema().input().clone();
    let clean_inputs = steps(
        &input,
        &[
            &[("reserve", &["widget", "alice"][..])],
            &[("reserve", &["gadget", "bob"])],
        ],
    );
    let violating_inputs = steps(
        &input,
        &[
            &[("reserve", &["widget", "alice"][..])],
            &[("reserve", &["widget", "bob"])],
        ],
    );

    Scenario {
        name: "inventory",
        transducer: Arc::new(transducer),
        database,
        constraints: vec![("no-oversell", no_oversell)],
        clean_inputs,
        violating_inputs,
        violated_constraint: "no-oversell",
    }
}

/// A multi-party escrow: both the buyer and the seller of a deal must
/// deposit before the deal settles.  The release guard — constraint
/// `funds-before-release` — demands that a `release` arrives only after both
/// parties' deposits are on record.
pub fn escrow_scenario() -> Scenario {
    let transducer = SpocusBuilder::new("escrow")
        .input("deposit", 2)
        .input("release", 1)
        .database("buyer", 2)
        .database("seller", 2)
        .output("receipt", 2)
        .output("settle", 1)
        .output_rule("receipt(D,P) :- deposit(D,P)")
        .output_rule(
            "settle(D) :- release(D), buyer(D,B), past-deposit(D,B), \
             seller(D,S), past-deposit(D,S)",
        )
        .log(["deposit", "release", "settle"])
        .build()
        .expect("the escrow model is Spocus by construction");

    let mut database = Instance::empty(transducer.schema().db());
    database
        .insert("buyer", Tuple::from_iter(["deal1", "alice"]))
        .expect("buyer/2");
    database
        .insert("seller", Tuple::from_iter(["deal1", "bob"]))
        .expect("seller/2");

    // release(D) ∧ buyer(D,B) ∧ seller(D,S) →
    //     past-deposit(D,B) ∧ past-deposit(D,S)
    let funds_before_release = SdiConstraint::new(
        vec![
            BodyLiteral::Positive(Atom::new("release", [Term::var("d")])),
            BodyLiteral::Positive(Atom::new("buyer", [Term::var("d"), Term::var("b")])),
            BodyLiteral::Positive(Atom::new("seller", [Term::var("d"), Term::var("s")])),
        ],
        Formula::and(vec![
            Formula::atom("past-deposit", [Term::var("d"), Term::var("b")]),
            Formula::atom("past-deposit", [Term::var("d"), Term::var("s")]),
        ]),
    )
    .expect("the release guard is a well-formed T_sdi constraint");

    let input = transducer.schema().input().clone();
    let clean_inputs = steps(
        &input,
        &[
            &[("deposit", &["deal1", "alice"][..])],
            &[("deposit", &["deal1", "bob"])],
            &[("release", &["deal1"])],
        ],
    );
    // Only the buyer has deposited when the release arrives.
    let violating_inputs = steps(
        &input,
        &[
            &[("deposit", &["deal1", "alice"][..])],
            &[("release", &["deal1"])],
        ],
    );

    Scenario {
        name: "escrow",
        transducer: Arc::new(transducer),
        database,
        constraints: vec![("funds-before-release", funds_before_release)],
        clean_inputs,
        violating_inputs,
        violated_constraint: "funds-before-release",
    }
}

/// A marketplace with a fraud screen: purchases of listed items by
/// unflagged accounts are confirmed, purchases by flagged accounts raise an
/// alert, and a repeat purchase of the same item is surfaced as a
/// `repeat-buy` pattern.  The payout guard — constraint `no-flagged-payout`
/// — forbids paying out to an account the screen has flagged.
///
/// Every output is keyed on the account in column 0, so a session serving
/// one account naturally demands `confirm`/`alert`/`repeat-buy` under a
/// `bf` binding pattern seeded from its own `purchase` inputs — the
/// demand-driven evaluation path of
/// [`rtx_core::Runtime::open_session_with_demand`].
pub fn fraud_scenario() -> Scenario {
    let transducer = SpocusBuilder::new("fraud")
        .input("purchase", 2)
        .input("payout", 1)
        .database("flagged", 1)
        .database("listed", 1)
        .output("confirm", 2)
        .output("alert", 2)
        .output("repeat-buy", 2)
        .output_rule("confirm(A,I) :- purchase(A,I), listed(I), NOT flagged(A)")
        .output_rule("alert(A,I) :- purchase(A,I), flagged(A)")
        .output_rule("repeat-buy(A,I) :- purchase(A,I), past-purchase(A,I)")
        .log(["purchase", "payout", "alert", "repeat-buy"])
        .build()
        .expect("the fraud model is Spocus by construction");

    let mut database = Instance::empty(transducer.schema().db());
    database
        .insert("flagged", Tuple::from_iter(["mallory"]))
        .expect("flagged/1");
    for item in ["ring", "watch"] {
        database
            .insert("listed", Tuple::from_iter([item]))
            .expect("listed/1");
    }

    // payout(A) ∧ flagged(A) → ⊥ : no payout to a flagged account.
    let no_flagged_payout = SdiConstraint::new(
        vec![
            BodyLiteral::Positive(Atom::new("payout", [Term::var("a")])),
            BodyLiteral::Positive(Atom::new("flagged", [Term::var("a")])),
        ],
        Formula::False,
    )
    .expect("the payout guard is a well-formed T_sdi constraint");

    let input = transducer.schema().input().clone();
    let clean_inputs = steps(
        &input,
        &[
            &[("purchase", &["alice", "ring"][..])],
            &[("purchase", &["alice", "ring"])],
            &[("payout", &["alice"])],
        ],
    );
    let violating_inputs = steps(
        &input,
        &[
            &[("purchase", &["mallory", "watch"][..])],
            &[("payout", &["mallory"])],
        ],
    );

    Scenario {
        name: "fraud",
        transducer: Arc::new(transducer),
        database,
        constraints: vec![("no-flagged-payout", no_flagged_payout)],
        clean_inputs,
        violating_inputs,
        violated_constraint: "no-flagged-payout",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_core::{CoreError, MonitorPolicy, RelationalTransducer, Runtime, ViolationKind};

    #[test]
    fn clean_runs_are_violation_free_and_unperturbed() {
        for scenario in Scenario::all() {
            let db = Arc::new(ResidentDb::new(scenario.database.clone()));
            let runtime = Runtime::shared(db.clone());
            let mut session = runtime
                .open_session(scenario.name, scenario.transducer.clone())
                .unwrap();
            session.set_monitor_policy(MonitorPolicy::Enforce);
            session.attach_observer(Box::new(scenario.monitor(&db).unwrap()));

            let mut outputs = Vec::new();
            for input in scenario.clean_inputs.iter() {
                outputs.push(session.step(input).unwrap());
            }
            assert!(session.violations().is_empty(), "{}", scenario.name);

            // The monitored outputs are exactly the offline run's outputs.
            let offline = scenario
                .transducer
                .run(&scenario.database, &scenario.clean_inputs)
                .unwrap();
            let expected: Vec<Instance> = offline.outputs().iter().cloned().collect();
            assert_eq!(outputs, expected, "{}", scenario.name);
        }
    }

    #[test]
    fn observe_mode_reports_the_seeded_violation() {
        for scenario in Scenario::all() {
            let db = Arc::new(ResidentDb::new(scenario.database.clone()));
            let runtime = Runtime::shared(db.clone());
            let mut session = runtime
                .open_session(scenario.name, scenario.transducer.clone())
                .unwrap();
            session.set_monitor_policy(MonitorPolicy::Observe);
            session.attach_observer(Box::new(scenario.monitor(&db).unwrap()));

            for input in scenario.violating_inputs.iter() {
                session.step(input).unwrap();
            }
            let violation = session
                .violations()
                .iter()
                .find(|v| v.kind == ViolationKind::Constraint)
                .unwrap_or_else(|| panic!("{}: no constraint violation reported", scenario.name));
            assert_eq!(violation.source, scenario.violated_constraint);
            assert_eq!(violation.step, scenario.violating_inputs.len() - 1);
            // The witness names a concrete input tuple.
            assert!(violation.relation.is_some(), "{}", scenario.name);
            assert!(violation.tuple.is_some(), "{}", scenario.name);
            assert_eq!(
                runtime.health().violations,
                session.violations().len() as u64
            );
        }
    }

    #[test]
    fn enforce_mode_rejects_the_seeded_violation() {
        for scenario in Scenario::all() {
            let db = Arc::new(ResidentDb::new(scenario.database.clone()));
            let runtime = Runtime::shared(db.clone());
            let mut session = runtime
                .open_session(scenario.name, scenario.transducer.clone())
                .unwrap();
            session.set_monitor_policy(MonitorPolicy::Enforce);
            session.attach_observer(Box::new(scenario.monitor(&db).unwrap()));

            let last = scenario.violating_inputs.len() - 1;
            for (index, input) in scenario.violating_inputs.iter().enumerate() {
                let result = session.step(input);
                if index < last {
                    result.unwrap();
                    continue;
                }
                match result {
                    Err(CoreError::StepRejected {
                        step, constraint, ..
                    }) => {
                        assert_eq!(step, last, "{}", scenario.name);
                        assert_eq!(constraint, scenario.violated_constraint);
                    }
                    other => panic!("{}: expected StepRejected, got {other:?}", scenario.name),
                }
            }
            // The rejected step did not advance the session.
            assert_eq!(session.len(), last, "{}", scenario.name);
            assert_eq!(runtime.health().rejections, 1, "{}", scenario.name);
        }
    }

    #[test]
    fn the_fraud_screen_enforces_through_the_demand_path() {
        use rtx_core::{DemandPolicy, SessionDemand, SessionGoal};

        // A demanded fraud session: every output is probed at the accounts of
        // this step's own purchases.  The demand covers every derivation the
        // model can make for those inputs, so the monitor's log validation
        // sees the same outputs the offline run produces — and the payout
        // guard still rejects the flagged payout at the last step.
        let scenario = fraud_scenario();
        let demand = |mode: DemandPolicy| {
            let db = Arc::new(ResidentDb::new(scenario.database.clone()));
            let runtime = Runtime::shared(db.clone());
            runtime.set_demand_policy(mode);
            let spec = SessionDemand::new()
                .goal(
                    SessionGoal::new("confirm", "bf")
                        .unwrap()
                        .from_input("purchase", [0]),
                )
                .goal(
                    SessionGoal::new("alert", "bf")
                        .unwrap()
                        .from_input("purchase", [0]),
                )
                .goal(
                    SessionGoal::new("repeat-buy", "bf")
                        .unwrap()
                        .from_input("purchase", [0]),
                );
            let mut session = runtime
                .open_session_with_demand(scenario.name, scenario.transducer.clone(), spec)
                .unwrap();
            session.set_monitor_policy(MonitorPolicy::Enforce);
            session.attach_observer(Box::new(scenario.monitor(&db).unwrap()));

            let last = scenario.violating_inputs.len() - 1;
            let mut outputs = Vec::new();
            for (index, input) in scenario.violating_inputs.iter().enumerate() {
                if index < last {
                    outputs.push(session.step(input).unwrap());
                    continue;
                }
                match session.step(input) {
                    Err(CoreError::StepRejected { constraint, .. }) => {
                        assert_eq!(constraint, scenario.violated_constraint);
                    }
                    other => panic!("{mode:?}: expected StepRejected, got {other:?}"),
                }
            }
            outputs
        };

        let rewritten = demand(DemandPolicy::Demand);
        let filtered = demand(DemandPolicy::Full);
        // Both demand policies agree, and both match the offline run on the
        // accepted prefix (the demand covers every per-account derivation).
        assert_eq!(rewritten, filtered);
        let offline = scenario
            .transducer
            .run(&scenario.database, &scenario.violating_inputs)
            .unwrap();
        let last = scenario.violating_inputs.len() - 1;
        let expected: Vec<Instance> = offline.outputs().iter().take(last).cloned().collect();
        assert_eq!(rewritten, expected);
    }

    #[test]
    fn a_tampered_log_step_raises_a_log_violation() {
        use rtx_core::SessionObserver;

        let scenario = escrow_scenario();
        let db = Arc::new(ResidentDb::new(scenario.database.clone()));
        let mut monitor = scenario.monitor(&db).unwrap();

        // Claim a settlement the spec cannot derive: no deposits on record.
        let schema = scenario.transducer.schema().input().clone();
        let mut input = Instance::empty(&schema);
        input
            .insert("release", Tuple::from_iter(["deal1"]))
            .unwrap();
        let mut output = Instance::empty(scenario.transducer.schema().output());
        output
            .insert("settle", Tuple::from_iter(["deal1"]))
            .unwrap();

        let violations = monitor.observe(0, &input, &output).unwrap();
        let log_violation = violations
            .iter()
            .find(|v| v.kind == ViolationKind::Log)
            .expect("the unjustified settle is flagged");
        assert_eq!(log_violation.source, "settle");
    }
}
