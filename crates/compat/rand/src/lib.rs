//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this tiny crate
//! provides the exact API surface the workspace uses: [`rngs::StdRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer ranges and
//! [`Rng::gen_bool`].  The generator is SplitMix64, which is deterministic,
//! fast and statistically adequate for synthetic workload generation (it is
//! not, and does not need to be, cryptographically secure).

/// Seedable random number generators.
pub trait SeedableRng: Sized {
    /// Constructs the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range using the given word source.
    fn sample(self, word: u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample(self, word: u64) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (word as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample(self, word: u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (word as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_sample_range!(i64, u64, i32, u32, usize);

/// The sampling interface: a word source plus derived uniform samplers.
pub trait Rng {
    /// The next raw 64-bit word of the stream.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from an integer range.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    /// A Bernoulli trial with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool {
        // 53 bits of mantissa give a uniform f64 in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

/// Concrete generator types.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// SplitMix64: the "standard" deterministic generator of this stand-in.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = rng.gen_range(1..10_000i64);
            assert!((1..10_000).contains(&x));
            let y = rng.gen_range(1..=2usize);
            assert!((1..=2).contains(&y));
        }
    }

    #[test]
    fn gen_bool_respects_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
