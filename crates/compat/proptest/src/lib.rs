//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset the workspace's property tests use: [`Strategy`] with
//! `prop_map`, integer-range and tuple strategies, [`collection::vec`], the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` attribute,
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Generation is deterministic: each test case derives its seed from the test
//! name and case index, so failures are reproducible.
//!
//! # Shrinking
//!
//! Unlike the original stand-in, failures are **greedily minimized** before
//! being reported.  Every strategy generates through an intermediate *seed*
//! representation ([`Strategy::Seed`]) that it knows how to simplify:
//!
//! * [`collection::vec`] drops elements one at a time (never below the
//!   strategy's minimum length) and recursively shrinks the survivors —
//!   for the randomized datalog tests this is what deletes whole rules,
//!   body atoms and database facts while the failure still reproduces;
//! * integer ranges step their value toward the range start;
//! * tuples and [`Strategy::prop_map`] shrink through their components.
//!
//! On a failing case the harness re-runs the test body on candidate
//! simplifications (panics silenced while probing), keeps any candidate that
//! still fails, repeats to a fixed point (with an attempt budget), and then
//! panics with the *minimized* inputs rendered via `Debug` alongside the
//! original failure message.

use std::fmt;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Deterministic SplitMix64 word source used by strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..bound` (`bound` must be positive).
    pub fn index(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

/// FNV-1a over the test name, mixed with the case index: the per-case seed.
pub fn case_seed(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A value generator with a shrinkable intermediate representation.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// The shrinkable pre-image of a value (what the random draws produced
    /// before any `prop_map`).
    type Seed: Clone;

    /// Draws a fresh seed.
    fn generate_seed(&self, rng: &mut TestRng) -> Self::Seed;

    /// Converts a seed into the value handed to the test body.
    fn materialize(&self, seed: &Self::Seed) -> Self::Value;

    /// Candidate one-step simplifications of `seed`, each strictly smaller in
    /// some well-founded sense (so greedy shrinking terminates).
    fn shrink_seed(&self, seed: &Self::Seed) -> Vec<Self::Seed>;

    /// Generates one value (seed and materialization in one step).
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        self.materialize(&self.generate_seed(rng))
    }

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    type Seed = S::Seed;

    fn generate_seed(&self, rng: &mut TestRng) -> S::Seed {
        self.inner.generate_seed(rng)
    }

    fn materialize(&self, seed: &S::Seed) -> O {
        (self.f)(self.inner.materialize(seed))
    }

    fn shrink_seed(&self, seed: &S::Seed) -> Vec<S::Seed> {
        self.inner.shrink_seed(seed)
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    type Seed = ();

    fn generate_seed(&self, _rng: &mut TestRng) -> Self::Seed {}

    fn materialize(&self, _seed: &Self::Seed) -> T {
        self.0.clone()
    }

    fn shrink_seed(&self, _seed: &Self::Seed) -> Vec<Self::Seed> {
        Vec::new()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            type Seed = $t;
            fn generate_seed(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
            fn materialize(&self, seed: &$t) -> $t {
                *seed
            }
            fn shrink_seed(&self, seed: &$t) -> Vec<$t> {
                shrink_toward(self.start as i128, *seed as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            type Seed = $t;
            fn generate_seed(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
            fn materialize(&self, seed: &$t) -> $t {
                *seed
            }
            fn shrink_seed(&self, seed: &$t) -> Vec<$t> {
                shrink_toward(*self.start() as i128, *seed as i128)
                    .into_iter()
                    .map(|v| v as $t)
                    .collect()
            }
        }
    )*};
}

impl_range_strategy!(i64, u64, i32, u32, usize);

/// Integer shrink candidates: the range start, the midpoint between start
/// and the current value, and the predecessor — jumping as far as possible
/// first, but still able to creep up on the exact failure boundary.
fn shrink_toward(start: i128, value: i128) -> Vec<i128> {
    let mut out = Vec::new();
    if value != start {
        out.push(start);
        let mid = start + (value - start) / 2;
        if mid != start && mid != value {
            out.push(mid);
        }
        if value - 1 != start && value - 1 != mid {
            out.push(value - 1);
        }
    }
    out
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            type Seed = ($($s::Seed,)+);
            fn generate_seed(&self, rng: &mut TestRng) -> Self::Seed {
                ($(self.$idx.generate_seed(rng),)+)
            }
            fn materialize(&self, seed: &Self::Seed) -> Self::Value {
                ($(self.$idx.materialize(&seed.$idx),)+)
            }
            fn shrink_seed(&self, seed: &Self::Seed) -> Vec<Self::Seed> {
                let mut out = Vec::new();
                $(
                    for candidate in self.$idx.shrink_seed(&seed.$idx) {
                        let mut next = seed.clone();
                        next.$idx = candidate;
                        out.push(next);
                    }
                )+
                out
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing vectors whose length is drawn from `size` and
    /// whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        type Seed = Vec<S::Seed>;

        fn generate_seed(&self, rng: &mut TestRng) -> Vec<S::Seed> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.index(span);
            (0..len).map(|_| self.elem.generate_seed(rng)).collect()
        }

        fn materialize(&self, seed: &Vec<S::Seed>) -> Vec<S::Value> {
            seed.iter().map(|s| self.elem.materialize(s)).collect()
        }

        fn shrink_seed(&self, seed: &Vec<S::Seed>) -> Vec<Vec<S::Seed>> {
            let mut out = Vec::new();
            // Drop one element (rules, atoms, facts, …) while staying at or
            // above the strategy's minimum length.
            if seed.len() > self.size.start {
                for drop in 0..seed.len() {
                    let mut next = seed.clone();
                    next.remove(drop);
                    out.push(next);
                }
            }
            // Shrink one element in place.
            for (i, elem_seed) in seed.iter().enumerate() {
                for candidate in self.elem.shrink_seed(elem_seed) {
                    let mut next = seed.clone();
                    next[i] = candidate;
                    out.push(next);
                }
            }
            out
        }
    }
}

/// Per-proptest-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Upper bound on shrink probes per failing case: shrinking is greedy and
/// each accepted candidate strictly simplifies the seed, so this only matters
/// for pathological cases with huge seeds.
const SHRINK_ATTEMPT_BUDGET: usize = 4096;

fn run_silently<V>(body: &mut dyn FnMut(V), value: V) -> Result<(), Box<dyn std::any::Any + Send>> {
    catch_unwind(AssertUnwindSafe(|| body(value)))
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        payload
            .downcast_ref::<String>()
            .cloned()
            .unwrap_or_else(|| "<non-string panic payload>".to_string())
    }
}

/// Runs every deterministic case of a property test — the engine behind the
/// [`proptest!`] macro.  `body` receives the materialized strategy value (for
/// multiple macro arguments, a tuple); failures are greedily shrunk by
/// [`run_case`].
pub fn run_cases<S, F>(test_name: &str, cases: u32, strategy: &S, mut body: F)
where
    S: Strategy,
    S::Value: fmt::Debug,
    F: FnMut(S::Value),
{
    for case in 0..cases as u64 {
        run_case(test_name, case, strategy, &mut body);
    }
}

/// Runs one deterministic case of a property test, greedily shrinking the
/// inputs on failure before reporting (see the [crate docs](crate)).
pub fn run_case<S>(test_name: &str, case: u64, strategy: &S, body: &mut dyn FnMut(S::Value))
where
    S: Strategy,
    S::Value: fmt::Debug,
{
    let mut rng = TestRng::new(case_seed(test_name, case));
    let seed = strategy.generate_seed(&mut rng);
    let original = strategy.materialize(&seed);
    let original_rendered = format!("{original:#?}");
    let Err(payload) = run_silently(body, original) else {
        return;
    };
    let message = panic_message(payload.as_ref());

    // Probe candidates with the panic hook silenced so shrinking does not
    // spray panic reports; the hook is global, so concurrent failing tests
    // may briefly lose their backtraces — an acceptable trade for a test
    // stand-in.  The guard restores the hook even if this scope unwinds
    // (e.g. a `prop_map` closure that panics on a shrunk seed).
    type PanicHook = Box<dyn Fn(&std::panic::PanicHookInfo<'_>) + Sync + Send>;
    struct HookGuard(Option<PanicHook>);
    impl Drop for HookGuard {
        fn drop(&mut self) {
            if let Some(hook) = self.0.take() {
                std::panic::set_hook(hook);
            }
        }
    }
    let _guard = HookGuard(Some(std::panic::take_hook()));
    std::panic::set_hook(Box::new(|_| {}));
    let mut current = seed;
    let mut steps = 0usize;
    let mut attempts = 0usize;
    'shrinking: loop {
        for candidate in strategy.shrink_seed(&current) {
            if attempts >= SHRINK_ATTEMPT_BUDGET {
                break 'shrinking;
            }
            attempts += 1;
            // Materialize inside the catch as well: a candidate whose
            // `prop_map` panics is simply not a valid simplification and is
            // skipped (it would be accepted as "still failing" otherwise,
            // steering shrinking toward materialization crashes instead of
            // the property failure being minimized).
            let Ok(candidate_value) =
                catch_unwind(AssertUnwindSafe(|| strategy.materialize(&candidate)))
            else {
                continue;
            };
            if run_silently(body, candidate_value).is_err() {
                current = candidate;
                steps += 1;
                continue 'shrinking;
            }
        }
        break;
    }
    drop(_guard);

    let minimized = strategy.materialize(&current);
    panic!(
        "proptest {test_name} failed at case {case}: {message}\n\
         minimized input ({steps} shrink steps, {attempts} probes):\n{minimized:#?}\n\
         original input:\n{original_rendered}"
    );
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic cases, with greedy
/// shrinking of failures (see the [crate docs](crate)).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let strategy = ($($strat,)+);
                $crate::run_cases(
                    stringify!($name),
                    config.cases,
                    &strategy,
                    |($($arg,)+)| $body,
                );
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// `use proptest::prelude::*` — the conventional import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::new(3);
        let strat = collection::vec(1i64..50, 1..4);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|x| (1..50).contains(x)));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut rng = TestRng::new(9);
        let strat = (0usize..3, 1i64..50).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..100 {
            let x = strat.generate(&mut rng);
            assert!((1..53).contains(&x));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = collection::vec(0usize..100, 1..10);
        let a = strat.generate(&mut TestRng::new(11));
        let b = strat.generate(&mut TestRng::new(11));
        assert_eq!(a, b);
    }

    #[test]
    fn vec_shrinking_drops_elements_and_respects_min_len() {
        let strat = collection::vec(0usize..100, 2..10);
        let seed = vec![5usize, 90, 7];
        let candidates = strat.shrink_seed(&seed);
        // Three drop-one candidates (len 3 > min 2) …
        assert!(candidates.contains(&vec![90, 7]));
        assert!(candidates.contains(&vec![5, 7]));
        assert!(candidates.contains(&vec![5, 90]));
        // … plus per-element shrinks toward the range start.
        assert!(candidates.contains(&vec![0, 90, 7]));
        // At the minimum length no drops are offered.
        let at_min = strat.shrink_seed(&vec![1, 2]);
        assert!(at_min.iter().all(|c| c.len() == 2));
    }

    #[test]
    fn failing_cases_are_minimized_before_reporting() {
        // The property "no element is ≥ 7" fails for generated vectors that
        // contain a large element; greedy shrinking must reduce the reported
        // counterexample to the single smallest failing element.
        let strategy = (collection::vec(0usize..10, 1..6),);
        let mut body = |(v,): (Vec<usize>,)| {
            assert!(v.iter().all(|&x| x < 7), "saw an element ≥ 7");
        };
        // Find a case that actually fails, then check its minimized report.
        let failing_case = (0..200u64).find(|&case| {
            let mut rng = TestRng::new(crate::case_seed("minimize_demo", case));
            let seed = crate::Strategy::generate_seed(&strategy, &mut rng);
            let value = crate::Strategy::materialize(&strategy, &seed);
            value.0.iter().any(|&x| x >= 7)
        });
        let Some(case) = failing_case else {
            panic!("expected some generated vector to contain an element ≥ 7");
        };
        let err = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            crate::run_case("minimize_demo", case, &strategy, &mut body);
        }))
        .expect_err("the failing case must still fail through run_case");
        let report = err
            .downcast_ref::<String>()
            .expect("run_case panics with a formatted String");
        // The minimized counterexample is exactly one offending element,
        // shrunk as far as the property allows (7 is the smallest failure).
        assert!(
            report.contains("minimized input"),
            "report missing the minimized section: {report}"
        );
        let minimized = report
            .split("minimized input")
            .nth(1)
            .and_then(|s| s.split("original input").next())
            .expect("report has minimized and original sections");
        assert!(
            minimized.contains('7') && !minimized.contains('8') && !minimized.contains('9'),
            "minimized counterexample should be [7]: {report}"
        );
    }

    #[test]
    fn shrinking_is_not_entered_for_passing_cases() {
        let strategy = (0i64..100,);
        let mut calls = 0usize;
        let mut body = |(_x,): (i64,)| {
            calls += 1;
        };
        crate::run_case("passing_case", 0, &strategy, &mut body);
        assert_eq!(calls, 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_declares_runnable_tests(x in 0i64..10, v in collection::vec(0usize..4, 1..3)) {
            prop_assert!((0..10).contains(&x));
            prop_assert_eq!(!v.is_empty(), true);
        }
    }
}
