//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the subset the workspace's property tests use: [`Strategy`] with
//! `prop_map`, integer-range and tuple strategies, [`collection::vec`], the
//! [`proptest!`] macro with an optional `#![proptest_config(..)]` attribute,
//! and `prop_assert!`/`prop_assert_eq!`.
//!
//! Generation is deterministic: each test case derives its seed from the test
//! name and case index, so failures are reproducible without shrinking
//! support (the generated values are small enough to debug directly).

use std::ops::{Range, RangeInclusive};

/// Deterministic SplitMix64 word source used by strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next raw 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform index in `0..bound` (`bound` must be positive).
    pub fn index(&mut self, bound: usize) -> usize {
        (self.next_u64() % bound.max(1) as u64) as usize
    }
}

/// FNV-1a over the test name, mixed with the case index: the per-case seed.
pub fn case_seed(name: &str, case: u64) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01B3);
    }
    h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)
}

/// A value generator.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through a function.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// The strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample an empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + offset) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample an empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (start as i128 + offset) as $t
            }
        }
    )*};
}

impl_range_strategy!(i64, u64, i32, u32, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// A strategy producing vectors whose length is drawn from `size` and
    /// whose elements come from `elem`.
    pub fn vec<S: Strategy>(elem: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { elem, size }
    }

    /// The strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        elem: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.end - self.size.start;
            let len = self.size.start + rng.index(span);
            (0..len).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Per-proptest-block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// Configuration running the given number of cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Asserts a condition inside a proptest body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)*) => {
        assert_eq!($a, $b, $($fmt)*)
    };
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                for case in 0..config.cases as u64 {
                    let mut rng =
                        $crate::TestRng::new($crate::case_seed(stringify!($name), case));
                    $(let $arg = $crate::Strategy::generate(&$strat, &mut rng);)+
                    $body
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// `use proptest::prelude::*` — the conventional import surface.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
    pub use crate::{Just, ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_and_vecs_generate_in_bounds() {
        let mut rng = TestRng::new(3);
        let strat = collection::vec(1i64..50, 1..4);
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
            assert!(v.iter().all(|x| (1..50).contains(x)));
        }
    }

    #[test]
    fn tuples_and_map_compose() {
        let mut rng = TestRng::new(9);
        let strat = (0usize..3, 1i64..50).prop_map(|(a, b)| a as i64 + b);
        for _ in 0..100 {
            let x = strat.generate(&mut rng);
            assert!((1..53).contains(&x));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let strat = collection::vec(0usize..100, 1..10);
        let a = strat.generate(&mut TestRng::new(11));
        let b = strat.generate(&mut TestRng::new(11));
        assert_eq!(a, b);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_declares_runnable_tests(x in 0i64..10, v in collection::vec(0usize..4, 1..3)) {
            prop_assert!((0..10).contains(&x));
            prop_assert_eq!(!v.is_empty(), true);
        }
    }
}
