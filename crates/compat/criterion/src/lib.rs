//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no access to crates.io, so this crate implements
//! the small API surface the benchmark harness uses — [`Criterion`],
//! [`BenchmarkGroup::bench_function`], [`Bencher::iter`] — with real wall-clock
//! measurement.  Each benchmark is warmed up, then sampled `sample_size`
//! times; the mean and median per-iteration times are printed and appended to
//! `target/criterion-lite/results.csv` so CI can archive them.
//!
//! `--quick` on the command line (or `CRITERION_QUICK=1` in the environment)
//! shrinks warm-up and measurement windows for smoke runs.

use std::hint::black_box as std_black_box;
use std::io::Write;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, re-exported for benchmark bodies.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Top-level benchmark driver: configuration plus collected results.
pub struct Criterion {
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
    results: Vec<BenchResult>,
}

#[derive(Debug, Clone)]
struct BenchResult {
    id: String,
    mean_ns: f64,
    median_ns: f64,
    samples: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        let quick = std::env::args().any(|a| a == "--quick")
            || std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1");
        let (warm, measure) = if quick {
            (Duration::from_millis(50), Duration::from_millis(150))
        } else {
            (Duration::from_secs(3), Duration::from_secs(5))
        };
        Criterion {
            sample_size: if quick { 10 } else { 100 },
            warm_up_time: warm,
            measurement_time: measure,
            results: Vec::new(),
        }
    }
}

/// A queued benchmark: its full id plus the boxed routine.
type QueuedBench<'a> = (String, Box<dyn FnMut(&mut Bencher) + 'a>);

impl Criterion {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Sets the warm-up window.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Sets the measurement window.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Plot generation is not supported; accepted for API compatibility.
    pub fn without_plots(self) -> Self {
        self
    }

    /// Measures one top-level (ungrouped) benchmark function.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        self.run_one(id.into(), &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Prints the collected results and writes the CSV summary.
    pub fn final_summary(self) {
        if self.results.is_empty() {
            return;
        }
        let dir = target_dir().join("criterion-lite");
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join("results.csv");
            let fresh = !path.exists();
            if let Ok(mut file) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(&path)
            {
                if fresh {
                    let _ = writeln!(file, "benchmark,mean_ns,median_ns,samples");
                }
                for r in &self.results {
                    let _ = writeln!(
                        file,
                        "{},{:.1},{:.1},{}",
                        r.id, r.mean_ns, r.median_ns, r.samples
                    );
                }
            }
        }
        println!("\nsummary ({} benchmarks):", self.results.len());
        for r in &self.results {
            println!("  {:<55} {}", r.id, format_ns(r.median_ns));
        }
    }

    /// Warm-up pass: estimates iterations per sample for `routine`.
    fn calibrate(&self, routine: &mut dyn FnMut(&mut Bencher)) -> u64 {
        let mut bencher = Bencher {
            mode: Mode::Calibrate {
                deadline: Instant::now() + self.warm_up_time,
            },
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        let per_iter = bencher.elapsed.as_secs_f64() / bencher.iterations.max(1) as f64;
        let per_sample = self.measurement_time.as_secs_f64() / self.sample_size as f64;
        (per_sample / per_iter.max(1e-9)).ceil().max(1.0) as u64
    }

    /// Times one fixed-iteration sample of `routine`, in ns per iteration.
    fn sample(routine: &mut dyn FnMut(&mut Bencher), iterations: u64) -> f64 {
        let mut bencher = Bencher {
            mode: Mode::Fixed { iterations },
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        bencher.elapsed.as_nanos() as f64 / bencher.iterations.max(1) as f64
    }

    fn record(&mut self, id: String, mut samples_ns: Vec<f64>) {
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let mean_ns = samples_ns.iter().sum::<f64>() / samples_ns.len() as f64;
        let median_ns = samples_ns[samples_ns.len() / 2];
        println!(
            "{:<55} time: [{} {} {}]",
            id,
            format_ns(samples_ns[0]),
            format_ns(median_ns),
            format_ns(*samples_ns.last().unwrap())
        );
        self.results.push(BenchResult {
            id,
            mean_ns,
            median_ns,
            samples: samples_ns.len(),
        });
    }

    fn run_one(&mut self, id: String, mut routine: impl FnMut(&mut Bencher)) {
        let iters_per_sample = self.calibrate(&mut routine);
        let mut samples_ns = Vec::with_capacity(self.sample_size);
        for _ in 0..self.sample_size {
            samples_ns.push(Self::sample(&mut routine, iters_per_sample));
        }
        self.record(id, samples_ns);
    }

    /// Runs a deferred group of benchmarks with round-robin sampling: sample
    /// k of every benchmark is taken before sample k+1 of any.  A transient
    /// machine-load burst then inflates the same-numbered sample of each
    /// benchmark roughly equally instead of landing wholesale on whichever
    /// benchmark happened to be measuring, so *ratios* between the group's
    /// entries stay meaningful on noisy hosts.
    fn run_interleaved(&mut self, fns: &mut [QueuedBench<'_>]) {
        let iters: Vec<u64> = fns
            .iter_mut()
            .map(|(_, routine)| self.calibrate(routine.as_mut()))
            .collect();
        let mut samples: Vec<Vec<f64>> = fns
            .iter()
            .map(|_| Vec::with_capacity(self.sample_size))
            .collect();
        for _ in 0..self.sample_size {
            for (k, (_, routine)) in fns.iter_mut().enumerate() {
                samples[k].push(Self::sample(routine.as_mut(), iters[k]));
            }
        }
        for ((id, _), samples_ns) in fns.iter().zip(samples) {
            self.record(id.clone(), samples_ns);
        }
    }
}

/// The workspace `target` directory.  Bench binaries run with the package
/// directory as cwd, so relative `target` would land inside the package;
/// prefer `CARGO_TARGET_DIR`, then the nearest existing `target` directory
/// walking up from cwd.
fn target_dir() -> std::path::PathBuf {
    if let Ok(dir) = std::env::var("CARGO_TARGET_DIR") {
        return std::path::PathBuf::from(dir);
    }
    let mut dir = std::env::current_dir().unwrap_or_else(|_| std::path::PathBuf::from("."));
    loop {
        let candidate = dir.join("target");
        if candidate.is_dir() {
            return candidate;
        }
        if !dir.pop() {
            return std::path::PathBuf::from("target");
        }
    }
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// A named group of benchmarks sharing the parent configuration.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl<'c> BenchmarkGroup<'c> {
    /// Measures one benchmark function.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        self.criterion.run_one(id, &mut f);
        self
    }

    /// Switches the group to round-robin sampling: its benchmarks are queued
    /// and then run interleaved — sample k of every entry before sample k+1
    /// of any — so transient machine load perturbs them evenly and
    /// within-group *ratios* stay meaningful on noisy hosts.  Measurement
    /// happens when the returned group closes, so benchmark closures must
    /// outlive it.
    pub fn interleaved(self) -> InterleavedGroup<'c> {
        InterleavedGroup {
            criterion: self.criterion,
            name: self.name,
            queue: Vec::new(),
        }
    }

    /// Closes the group (results are kept on the parent `Criterion`).
    pub fn finish(self) {}
}

/// A benchmark group measured with round-robin sampling; see
/// [`BenchmarkGroup::interleaved`].
pub struct InterleavedGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
    queue: Vec<QueuedBench<'c>>,
}

impl<'c> InterleavedGroup<'c> {
    /// Queues one benchmark function; it runs when the group closes.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        f: impl FnMut(&mut Bencher) + 'c,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into());
        self.queue.push((id, Box::new(f)));
        self
    }

    /// Closes the group, running the queued benchmarks interleaved.
    pub fn finish(self) {}
}

impl Drop for InterleavedGroup<'_> {
    fn drop(&mut self) {
        let mut fns = std::mem::take(&mut self.queue);
        if !fns.is_empty() {
            self.criterion.run_interleaved(&mut fns);
        }
    }
}

enum Mode {
    /// Keep timing single iterations until the deadline passes.
    Calibrate { deadline: Instant },
    /// Time exactly this many iterations.
    Fixed { iterations: u64 },
}

/// Passed to benchmark closures; `iter` times the routine.
pub struct Bencher {
    mode: Mode,
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times repeated executions of `routine` according to the current mode.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        match self.mode {
            Mode::Calibrate { deadline } => loop {
                let start = Instant::now();
                std_black_box(routine());
                self.elapsed += start.elapsed();
                self.iterations += 1;
                if Instant::now() >= deadline {
                    break;
                }
            },
            Mode::Fixed { iterations } => {
                let start = Instant::now();
                for _ in 0..iterations {
                    std_black_box(routine());
                }
                self.elapsed += start.elapsed();
                self.iterations += iterations;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_run_and_collect_results() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(15))
            .without_plots();
        let mut group = c.benchmark_group("demo");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.finish();
        assert_eq!(c.results.len(), 1);
        assert!(c.results[0].mean_ns > 0.0);
        assert_eq!(c.results[0].id, "demo/sum");
    }

    #[test]
    fn format_ns_scales_units() {
        assert!(format_ns(12.0).ends_with("ns"));
        assert!(format_ns(12_000.0).ends_with("µs"));
        assert!(format_ns(12_000_000.0).ends_with("ms"));
        assert!(format_ns(2e9).ends_with('s'));
    }
}
