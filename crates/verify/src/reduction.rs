//! Shared machinery for the ∃\*∀\*FO reductions of §3.2–§4.2.
//!
//! Every decision procedure views a hypothetical run of length `n` through a
//! replicated signature: the input relation `R` becomes `R@1, …, R@n` (one
//! copy per step), the database relations keep their names (their
//! interpretation is fixed), and occurrences of the cumulative state relation
//! `past-R` at step `i` unfold into the disjunction `R@1 ∨ … ∨ R@(i-1)`.
//! Output relations have no symbols of their own: an output atom is replaced
//! by the (existentially quantified) body of its defining rules — exactly the
//! formula `φ(x1, …, xk)` constructed in the proof of Theorem 3.1.

use crate::VerifyError;
use rtx_core::SpocusTransducer;
use rtx_datalog::{BodyLiteral, Rule};
use rtx_logic::{Formula, Term};
use rtx_relational::{Instance, InstanceSequence, RelationName, Schema};
use std::collections::BTreeMap;

/// The name of the replicated copy of input relation `name` at step `step`
/// (1-based): `name@step`.
pub fn step_relation(name: &RelationName, step: usize) -> RelationName {
    RelationName::new(format!("{}@{}", name.as_str(), step))
}

/// Translates a body literal of an output (or error) rule, as evaluated at
/// step `step`, into a formula over the replicated signature.
///
/// * database atoms are kept verbatim (their interpretation is fixed);
/// * input atoms `R(ū)` become `R@step(ū)`;
/// * state atoms `past-R(ū)` become `R@1(ū) ∨ … ∨ R@(step-1)(ū)` (false for
///   the first step, where the state is empty);
/// * inequalities become negated equalities.
pub fn literal_formula(
    transducer: &SpocusTransducer,
    literal: &BodyLiteral,
    step: usize,
) -> Result<Formula, VerifyError> {
    let schema = transducer.schema();
    match literal {
        BodyLiteral::NotEqual(a, b) => Ok(Formula::neq(a.clone(), b.clone())),
        BodyLiteral::Positive(atom) | BodyLiteral::Negative(atom) => {
            let positive = matches!(literal, BodyLiteral::Positive(_));
            let base = atom_formula(transducer, &atom.relation, &atom.args, step)?;
            let _ = schema;
            Ok(if positive { base } else { Formula::not(base) })
        }
    }
}

/// The formula for a (positive) atom `relation(args)` evaluated at step
/// `step` of a run, over the replicated signature.
pub fn atom_formula(
    transducer: &SpocusTransducer,
    relation: &RelationName,
    args: &[Term],
    step: usize,
) -> Result<Formula, VerifyError> {
    let schema = transducer.schema();
    if schema.db().contains(relation.clone()) {
        return Ok(Formula::atom(relation.clone(), args.to_vec()));
    }
    if schema.input().contains(relation.clone()) {
        return Ok(Formula::atom(step_relation(relation, step), args.to_vec()));
    }
    if schema.state().contains(relation.clone()) {
        let base = relation
            .strip_past()
            .ok_or_else(|| VerifyError::Precondition {
                detail: format!("state relation `{relation}` is not of the form past-R"),
            })?;
        let disjuncts: Vec<Formula> = (1..step)
            .map(|j| Formula::atom(step_relation(&base, j), args.to_vec()))
            .collect();
        return Ok(Formula::or(disjuncts));
    }
    if schema.output().contains(relation.clone()) {
        return output_atom_formula(transducer, relation, args, step);
    }
    Err(VerifyError::Precondition {
        detail: format!("relation `{relation}` is not part of the transducer schema"),
    })
}

/// The formula `φ_{R,step}(args)` stating that the output relation `R`
/// contains the tuple `args` at step `step`: the disjunction, over the rules
/// defining `R`, of the existentially quantified rule bodies with the head
/// unified against `args` (proof of Theorem 3.1).
pub fn output_atom_formula(
    transducer: &SpocusTransducer,
    relation: &RelationName,
    args: &[Term],
    step: usize,
) -> Result<Formula, VerifyError> {
    let rules = transducer.rules_for(relation);
    let mut disjuncts = Vec::with_capacity(rules.len());
    for (rule_index, rule) in rules.iter().enumerate() {
        disjuncts.push(rule_body_formula(transducer, rule, rule_index, args, step)?);
    }
    Ok(Formula::or(disjuncts))
}

/// The body of one rule, with its head unified against `args`, its remaining
/// variables freshly renamed and existentially quantified, evaluated at
/// `step`.
fn rule_body_formula(
    transducer: &SpocusTransducer,
    rule: &Rule,
    rule_index: usize,
    args: &[Term],
    step: usize,
) -> Result<Formula, VerifyError> {
    if rule.head.args.len() != args.len() {
        return Err(VerifyError::Precondition {
            detail: format!(
                "output atom for `{}` has {} arguments but the rule head has {}",
                rule.head.relation,
                args.len(),
                rule.head.args.len()
            ),
        });
    }
    // Head unification: head variables are *substituted* by the provided
    // argument terms (keeping the existential block as small as possible —
    // the grounding cost of the decision procedures is exponential in the
    // number of existential variables); repeated head variables and constant
    // head arguments become equality conjuncts.
    let mut renaming: BTreeMap<String, Term> = BTreeMap::new();
    let mut conjuncts: Vec<Formula> = Vec::new();
    for (head_arg, provided) in rule.head.args.iter().zip(args) {
        match head_arg {
            Term::Var(v) => match renaming.get(v) {
                Some(existing) => conjuncts.push(Formula::eq(existing.clone(), provided.clone())),
                None => {
                    renaming.insert(v.clone(), provided.clone());
                }
            },
            Term::Const(_) => conjuncts.push(Formula::eq(head_arg.clone(), provided.clone())),
        }
    }
    // Body-only variables are renamed apart so distinct rules (and repeated
    // use of the same rule at different steps) cannot capture each other's
    // quantifiers, and are existentially quantified.
    let mut fresh_vars: Vec<String> = Vec::new();
    for var in rule.variables() {
        if renaming.contains_key(&var) {
            continue;
        }
        let fresh = format!("{var}#r{rule_index}s{step}");
        fresh_vars.push(fresh.clone());
        renaming.insert(var, Term::var(fresh));
    }
    let rename = |t: &Term| -> Term {
        match t {
            Term::Var(v) => renaming.get(v).cloned().unwrap_or_else(|| t.clone()),
            Term::Const(_) => t.clone(),
        }
    };

    // Body literals.
    for literal in &rule.body {
        let renamed = rename_literal(literal, &rename);
        conjuncts.push(literal_formula(transducer, &renamed, step)?);
    }
    Ok(Formula::exists(fresh_vars, Formula::and(conjuncts)))
}

fn rename_literal<F: Fn(&Term) -> Term>(literal: &BodyLiteral, rename: &F) -> BodyLiteral {
    match literal {
        BodyLiteral::NotEqual(a, b) => BodyLiteral::NotEqual(rename(a), rename(b)),
        BodyLiteral::Positive(atom) => BodyLiteral::Positive(rtx_datalog::Atom {
            relation: atom.relation.clone(),
            args: atom.args.iter().map(rename).collect(),
        }),
        BodyLiteral::Negative(atom) => BodyLiteral::Negative(rtx_datalog::Atom {
            relation: atom.relation.clone(),
            args: atom.args.iter().map(rename).collect(),
        }),
    }
}

/// Reads a witness input sequence of length `steps` out of a satisfying
/// structure over the replicated signature: step `i` collects the tuples of
/// every `R@i`.
pub fn witness_inputs(
    transducer: &SpocusTransducer,
    model: &rtx_logic::FiniteStructure,
    steps: usize,
) -> Result<InstanceSequence, VerifyError> {
    let input_schema: &Schema = transducer.schema().input();
    let mut instances = Vec::with_capacity(steps);
    for step in 1..=steps {
        let mut instance = Instance::empty(input_schema);
        for (name, arity) in input_schema.iter() {
            let replicated = step_relation(name, step);
            for tuple in model.relation_tuples(replicated) {
                if tuple.len() == arity {
                    instance.insert(name.clone(), rtx_relational::Tuple::new(tuple))?;
                }
            }
        }
        instances.push(instance);
    }
    InstanceSequence::new(input_schema.clone(), instances).map_err(VerifyError::from)
}

/// Registers the transducer's database relations as fixed (closed-world)
/// interpretations of a [`rtx_logic::BsProblem`], and its active domain as
/// constants.
pub fn fix_database(problem: &mut rtx_logic::BsProblem, db: &Instance) {
    for (name, relation) in db.iter() {
        problem.fix_relation(
            name.clone(),
            relation.arity(),
            relation.iter().map(|t| t.values().to_vec()),
        );
    }
    problem.add_constants(rtx_relational::active_domain(db));
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_core::models;
    use rtx_logic::{solve_bs, BsOutcome, BsProblem};
    use rtx_relational::Value;

    #[test]
    fn step_relation_names_are_distinct_per_step() {
        let r = RelationName::new("order");
        assert_eq!(step_relation(&r, 1).as_str(), "order@1");
        assert_ne!(step_relation(&r, 1), step_relation(&r, 2));
    }

    #[test]
    fn state_atom_at_first_step_is_false() {
        let t = models::short();
        let f = atom_formula(&t, &RelationName::new("past-order"), &[Term::var("x")], 1).unwrap();
        assert_eq!(f, Formula::False);
    }

    #[test]
    fn state_atom_unfolds_into_earlier_steps() {
        let t = models::short();
        let f = atom_formula(&t, &RelationName::new("past-order"), &[Term::var("x")], 3).unwrap();
        assert_eq!(
            f,
            Formula::or(vec![
                Formula::atom("order@1", [Term::var("x")]),
                Formula::atom("order@2", [Term::var("x")]),
            ])
        );
    }

    #[test]
    fn db_atoms_keep_their_name() {
        let t = models::short();
        let f = atom_formula(
            &t,
            &RelationName::new("price"),
            &[Term::var("x"), Term::var("y")],
            2,
        )
        .unwrap();
        assert_eq!(f, Formula::atom("price", [Term::var("x"), Term::var("y")]));
    }

    #[test]
    fn unknown_relations_are_rejected() {
        let t = models::short();
        assert!(matches!(
            atom_formula(&t, &RelationName::new("warehouse"), &[], 1),
            Err(VerifyError::Precondition { .. })
        ));
    }

    #[test]
    fn output_formula_is_satisfiable_exactly_when_the_rule_can_fire() {
        let t = models::short();
        let db = models::figure1_database();

        // deliver(time) at step 2 requires an order at step 1 and a payment at
        // step 2 with the correct price.
        let formula = output_atom_formula(
            &t,
            &RelationName::new("deliver"),
            &[Term::constant(Value::str("time"))],
            2,
        )
        .unwrap();
        let mut problem = BsProblem::new(formula.clone());
        fix_database(&mut problem, &db);
        match solve_bs(&problem).unwrap() {
            BsOutcome::Satisfiable(model) => {
                // the witness must pay the listed price at step 2
                let pays = model.relation_tuples("pay@2");
                assert!(pays.contains(&vec![Value::str("time"), Value::int(855)]));
                // and order time at step 1
                let orders = model.relation_tuples("order@1");
                assert!(orders.contains(&vec![Value::str("time")]));
            }
            BsOutcome::Unsatisfiable => panic!("deliver(time) should be reachable at step 2"),
        }

        // With an empty catalog the same formula is unsatisfiable.
        let empty_db = Instance::empty(&models::catalog_schema());
        let mut problem = BsProblem::new(formula);
        fix_database(&mut problem, &empty_db);
        assert!(matches!(
            solve_bs(&problem).unwrap(),
            BsOutcome::Unsatisfiable
        ));
    }

    #[test]
    fn deliver_is_unreachable_at_the_first_step() {
        // past-order is empty at step 1, so deliver cannot fire.
        let t = models::short();
        let db = models::figure1_database();
        let formula = output_atom_formula(
            &t,
            &RelationName::new("deliver"),
            &[Term::constant(Value::str("time"))],
            1,
        )
        .unwrap();
        let mut problem = BsProblem::new(formula);
        fix_database(&mut problem, &db);
        assert!(matches!(
            solve_bs(&problem).unwrap(),
            BsOutcome::Unsatisfiable
        ));
    }

    #[test]
    fn witness_extraction_reads_step_relations() {
        let t = models::short();
        let mut model = rtx_logic::FiniteStructure::new(vec![]);
        model.add_fact("order@1", vec![Value::str("time")]);
        model.add_fact("pay@2", vec![Value::str("time"), Value::int(855)]);
        model.add_fact("price", vec![Value::str("time"), Value::int(855)]); // ignored: not an input copy
        let inputs = witness_inputs(&t, &model, 2).unwrap();
        assert_eq!(inputs.len(), 2);
        assert!(inputs
            .get(0)
            .unwrap()
            .holds("order", &rtx_relational::Tuple::from_iter(["time"])));
        assert!(inputs.get(1).unwrap().holds(
            "pay",
            &rtx_relational::Tuple::new(vec![Value::str("time"), Value::int(855)])
        ));
        assert!(inputs.get(1).unwrap().relation("order").unwrap().is_empty());
    }
}
