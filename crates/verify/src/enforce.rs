//! Enforcement of `T_sdi` input policies via error rules (Theorem 4.1).
//!
//! A `T_sdi` sentence is a conjunction of constraints
//! `∀x̄ (φ(state, db, in) → ψ(state, db, in))` where `φ` is a conjunction of
//! literals with every variable occurring in a positive literal and `ψ` is a
//! positive quantifier-free formula.  Theorem 4.1 shows that for every such
//! sentence there is a Spocus transducer whose *error-free* runs are exactly
//! the input sequences satisfying the sentence at every step; the
//! construction is purely syntactic — put `ψ` in conjunctive normal form and
//! emit one error rule per clause:
//!
//! ```text
//! error :- φ-literals, NOT L1, …, NOT Lm.
//! ```
//!
//! This module implements the constraint type, the compilation, and the
//! direct (semantic) satisfaction check used to validate the equivalence.

use crate::VerifyError;
use rtx_core::{CoreError, Run, SpocusBuilder, SpocusTransducer};
use rtx_datalog::{Atom, BodyLiteral, Rule};
use rtx_logic::{Formula, Term};
use rtx_relational::Instance;
use std::collections::BTreeMap;

/// One `T_sdi` constraint `∀x̄ (antecedent → consequent)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SdiConstraint {
    /// The antecedent: a conjunction of body literals over state, database
    /// and input relations.  Every variable of the constraint must occur in a
    /// positive antecedent literal.
    pub antecedent: Vec<BodyLiteral>,
    /// The consequent: a positive quantifier-free formula (atoms combined
    /// with ∧/∨) over state, database and input relations whose variables are
    /// among the antecedent's.
    pub consequent: Formula,
}

impl SdiConstraint {
    /// Creates a constraint, validating the `T_sdi` shape.
    pub fn new(antecedent: Vec<BodyLiteral>, consequent: Formula) -> Result<Self, VerifyError> {
        let constraint = SdiConstraint {
            antecedent,
            consequent,
        };
        constraint.validate()?;
        Ok(constraint)
    }

    fn validate(&self) -> Result<(), VerifyError> {
        // consequent must be positive and quantifier-free
        check_positive(&self.consequent)?;
        // all variables (antecedent and consequent) must occur positively in
        // the antecedent
        let mut positive_vars = std::collections::BTreeSet::new();
        for lit in &self.antecedent {
            if let BodyLiteral::Positive(atom) = lit {
                positive_vars.extend(atom.variables());
            }
        }
        let mut all_vars = std::collections::BTreeSet::new();
        for lit in &self.antecedent {
            all_vars.extend(lit.variables());
        }
        all_vars.extend(self.consequent.free_variables());
        for var in all_vars {
            if !positive_vars.contains(&var) {
                return Err(VerifyError::UnsupportedProperty {
                    detail: format!(
                        "variable `{var}` does not occur in a positive antecedent literal"
                    ),
                });
            }
        }
        Ok(())
    }

    /// The constraint as a first-order sentence
    /// `∀x̄ (antecedent → consequent)`.
    pub fn to_formula(&self) -> Formula {
        let mut vars = std::collections::BTreeSet::new();
        for lit in &self.antecedent {
            vars.extend(lit.variables());
        }
        vars.extend(self.consequent.free_variables());
        let antecedent = Formula::and(
            self.antecedent
                .iter()
                .map(|lit| match lit {
                    BodyLiteral::Positive(a) => Formula::atom(a.relation.clone(), a.args.clone()),
                    BodyLiteral::Negative(a) => {
                        Formula::not(Formula::atom(a.relation.clone(), a.args.clone()))
                    }
                    BodyLiteral::NotEqual(a, b) => Formula::neq(a.clone(), b.clone()),
                })
                .collect(),
        );
        Formula::forall(
            vars.into_iter().collect::<Vec<_>>(),
            Formula::implies(antecedent, self.consequent.clone()),
        )
    }

    /// Compiles the constraint into error rules (Theorem 4.1): one rule per
    /// clause of the consequent's conjunctive normal form.
    pub fn compile_to_error_rules(&self) -> Result<Vec<Rule>, VerifyError> {
        self.compile_rules(&Atom::new("error", Vec::<Term>::new()))
    }

    /// [`Self::compile_to_error_rules`] with a custom head
    /// `head(x̄)`, where `x̄` is [`Self::witness_variables`]: each derived
    /// head fact is a *witness* of a violating antecedent match, so an online
    /// monitor can name the offending tuple, not only the fact that some
    /// violation exists.  Passing an empty variable list (a propositional
    /// constraint) degenerates to the paper's 0-ary construction.
    pub fn compile_to_error_rules_named(&self, head: &str) -> Result<Vec<Rule>, VerifyError> {
        let args: Vec<Term> = self
            .witness_variables()
            .into_iter()
            .map(Term::var)
            .collect();
        self.compile_rules(&Atom::new(head, args))
    }

    /// The ordered distinct variables occurring in positive antecedent
    /// literals — exactly the variables a violation witness binds.
    pub fn witness_variables(&self) -> Vec<String> {
        let mut seen = std::collections::BTreeSet::new();
        let mut ordered = Vec::new();
        for lit in &self.antecedent {
            if let BodyLiteral::Positive(atom) = lit {
                for var in atom.variables() {
                    if seen.insert(var.clone()) {
                        ordered.push(var);
                    }
                }
            }
        }
        ordered
    }

    fn compile_rules(&self, head: &Atom) -> Result<Vec<Rule>, VerifyError> {
        let clauses = positive_cnf(&self.consequent)?;
        let mut rules = Vec::new();
        if clauses.is_empty() {
            // The consequent is valid (true): no error rule needed.
            return Ok(rules);
        }
        for clause in clauses {
            let mut body = self.antecedent.clone();
            if clause.is_empty() {
                // The consequent is unsatisfiable (false): the antecedent
                // itself is an error.
                rules.push(Rule::new(head.clone(), body));
                continue;
            }
            for atom in clause {
                body.push(BodyLiteral::Negative(atom));
            }
            rules.push(Rule::new(head.clone(), body));
        }
        Ok(rules)
    }

    /// Semantic check: does the constraint hold for the given (previous)
    /// state, database and current input?  Quantifiers range over the active
    /// domain of the three instances plus the constraint's constants (which
    /// is sufficient because every variable occurs in a positive antecedent
    /// atom over those instances).
    pub fn satisfied_at(
        &self,
        state: &Instance,
        db: &Instance,
        input: &Instance,
    ) -> Result<bool, VerifyError> {
        let combined = state.union(db)?.union(input)?;
        let mut domain: Vec<rtx_relational::Value> = rtx_relational::active_domain(&combined)
            .into_iter()
            .collect();
        let formula = self.to_formula();
        for c in formula.constants() {
            if !domain.contains(&c) {
                domain.push(c);
            }
        }
        let structure = rtx_logic::FiniteStructure::from_instance(domain, &combined);
        formula
            .eval(&structure, &BTreeMap::new())
            .map_err(VerifyError::from)
    }

    /// Does the constraint hold at every step of a run (evaluated against the
    /// state *before* the step, the database and the step's input)?
    pub fn satisfied_on_run(&self, run: &Run, db: &Instance) -> Result<bool, VerifyError> {
        let schema = run.schema();
        let empty_state = Instance::empty(schema.state());
        for (index, input) in run.inputs().iter().enumerate() {
            let state_before = if index == 0 {
                &empty_state
            } else {
                run.states().get(index - 1).expect("aligned sequences")
            };
            if !self.satisfied_at(state_before, db, input)? {
                return Ok(false);
            }
        }
        Ok(true)
    }
}

/// Extends a Spocus transducer with an `error` output relation (if missing)
/// and the error rules compiled from the given constraints, so that its
/// error-free runs are exactly the input sequences satisfying every
/// constraint at every step.
pub fn add_enforcement(
    transducer: &SpocusTransducer,
    constraints: &[SdiConstraint],
) -> Result<SpocusTransducer, VerifyError> {
    let schema = transducer.schema();
    let mut builder = SpocusBuilder::new(format!("{}+policy", transducer.name()));
    for (name, arity) in schema.input().iter() {
        builder = builder.input(name.as_str(), arity);
    }
    for (name, arity) in schema.db().iter() {
        builder = builder.database(name.as_str(), arity);
    }
    for (name, arity) in schema.output().iter() {
        builder = builder.output(name.as_str(), arity);
    }
    if !schema.output().contains("error") {
        builder = builder.output("error", 0);
    }
    builder = builder.log(schema.log().iter().map(|r| r.as_str().to_string()));
    for rule in transducer.output_program().rules() {
        builder = builder.output_rule_ast(rule.clone());
    }
    for constraint in constraints {
        for rule in constraint.compile_to_error_rules()? {
            builder = builder.output_rule_ast(rule);
        }
    }
    builder.build().map_err(|e: CoreError| VerifyError::Core(e))
}

fn check_positive(formula: &Formula) -> Result<(), VerifyError> {
    match formula {
        Formula::True | Formula::False | Formula::Atom { .. } => Ok(()),
        Formula::And(fs) | Formula::Or(fs) => {
            for f in fs {
                check_positive(f)?;
            }
            Ok(())
        }
        other => Err(VerifyError::UnsupportedProperty {
            detail: format!(
                "T_sdi consequents are positive quantifier-free formulas over atoms; `{other}` is not"
            ),
        }),
    }
}

/// Converts a positive formula into CNF over atoms.  Returns a list of
/// clauses (each a list of atoms); an empty list means "true", a clause that
/// is empty means "false".
fn positive_cnf(formula: &Formula) -> Result<Vec<Vec<Atom>>, VerifyError> {
    match formula {
        Formula::True => Ok(vec![]),
        Formula::False => Ok(vec![vec![]]),
        Formula::Atom { relation, args } => Ok(vec![vec![Atom {
            relation: relation.clone(),
            args: args.clone(),
        }]]),
        Formula::And(fs) => {
            let mut out = Vec::new();
            for f in fs {
                out.extend(positive_cnf(f)?);
            }
            Ok(out)
        }
        Formula::Or(fs) => {
            // cross product of the disjuncts' clause sets
            let mut acc: Vec<Vec<Atom>> = vec![vec![]];
            for f in fs {
                let clauses = positive_cnf(f)?;
                if clauses.is_empty() {
                    // this disjunct is true, so the whole disjunction is true
                    return Ok(vec![]);
                }
                let mut next = Vec::new();
                for prefix in &acc {
                    for clause in &clauses {
                        let mut merged = prefix.clone();
                        merged.extend(clause.iter().cloned());
                        next.push(merged);
                    }
                }
                acc = next;
            }
            Ok(acc)
        }
        other => Err(VerifyError::UnsupportedProperty {
            detail: format!("not a positive quantifier-free formula: {other}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_core::{models, ControlDiscipline, RelationalTransducer};
    use rtx_relational::{InstanceSequence, Tuple, Value};

    /// §4.1, example 2: "if the amount y is paid for item x then x must have
    /// previously been ordered and y must be the correct price".
    fn payment_policy() -> SdiConstraint {
        SdiConstraint::new(
            vec![BodyLiteral::Positive(Atom::new(
                "pay",
                [Term::var("x"), Term::var("y")],
            ))],
            Formula::and(vec![
                Formula::atom("price", [Term::var("x"), Term::var("y")]),
                Formula::atom("past-order", [Term::var("x")]),
            ]),
        )
        .unwrap()
    }

    /// §4.1, example 1: after an unpaid order, the next input must pay it or
    /// cancel it — expressed here with the disjunctive consequent.
    fn pay_or_cancel_policy() -> SdiConstraint {
        SdiConstraint::new(
            vec![
                BodyLiteral::Positive(Atom::new("past-order", [Term::var("x")])),
                BodyLiteral::Positive(Atom::new("price", [Term::var("x"), Term::var("y")])),
                BodyLiteral::Negative(Atom::new("past-pay", [Term::var("x"), Term::var("y")])),
            ],
            Formula::or(vec![
                Formula::atom("pay", [Term::var("x"), Term::var("y")]),
                Formula::atom("cancel", [Term::var("x")]),
            ]),
        )
        .unwrap()
    }

    #[test]
    fn compilation_produces_one_rule_per_cnf_clause() {
        let rules = payment_policy().compile_to_error_rules().unwrap();
        assert_eq!(rules.len(), 2);
        for rule in &rules {
            assert_eq!(rule.head.relation.as_str(), "error");
            assert!(rule.body.len() >= 2);
            assert!(rtx_datalog::safety::check_rule_safety(rule).is_ok());
        }

        let rules = pay_or_cancel_policy().compile_to_error_rules().unwrap();
        assert_eq!(rules.len(), 1);
        // the single clause has both pay and cancel negated
        assert_eq!(
            rules[0]
                .body
                .iter()
                .filter(|l| l.is_negative_atom())
                .count(),
            3 // NOT past-pay from the antecedent + NOT pay + NOT cancel
        );
    }

    #[test]
    fn named_compilation_carries_the_witness() {
        let policy = payment_policy();
        assert_eq!(policy.witness_variables(), vec!["x", "y"]);
        let rules = policy.compile_to_error_rules_named("viol-pay").unwrap();
        assert_eq!(rules.len(), 2);
        for rule in &rules {
            assert_eq!(rule.head.relation.as_str(), "viol-pay");
            assert_eq!(rule.head.args, vec![Term::var("x"), Term::var("y")]);
            assert!(rtx_datalog::safety::check_rule_safety(rule).is_ok());
        }
        // The bodies are identical to the 0-ary construction.
        let plain = policy.compile_to_error_rules().unwrap();
        for (named, plain) in rules.iter().zip(plain.iter()) {
            assert_eq!(named.body, plain.body);
        }
    }

    #[test]
    fn degenerate_consequents() {
        let always = SdiConstraint::new(
            vec![BodyLiteral::Positive(Atom::new("pay", [Term::var("x")]))],
            Formula::True,
        )
        .unwrap();
        assert!(always.compile_to_error_rules().unwrap().is_empty());

        let never = SdiConstraint::new(
            vec![BodyLiteral::Positive(Atom::new("pay", [Term::var("x")]))],
            Formula::False,
        )
        .unwrap();
        let rules = never.compile_to_error_rules().unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].body.len(), 1);
    }

    #[test]
    fn malformed_constraints_are_rejected() {
        // consequent with negation
        assert!(SdiConstraint::new(
            vec![BodyLiteral::Positive(Atom::new("pay", [Term::var("x")]))],
            Formula::not(Formula::atom("order", [Term::var("x")])),
        )
        .is_err());
        // consequent variable not bound by a positive antecedent literal
        assert!(SdiConstraint::new(
            vec![BodyLiteral::Positive(Atom::new("pay", [Term::var("x")]))],
            Formula::atom("price", [Term::var("x"), Term::var("y")]),
        )
        .is_err());
        // antecedent-only negative variable
        assert!(SdiConstraint::new(
            vec![BodyLiteral::Negative(Atom::new("pay", [Term::var("x")]))],
            Formula::True,
        )
        .is_err());
    }

    #[test]
    fn enforcement_equivalence_on_concrete_runs() {
        // Extend `short` with the payment policy and check: a run is
        // error-free iff every step satisfies the constraint (Theorem 4.1).
        let t = models::short();
        let policy = payment_policy();
        let enforced = add_enforcement(&t, std::slice::from_ref(&policy)).unwrap();
        let db = models::figure1_database();
        let input_schema = models::short_input_schema();

        let step = |orders: &[&str], pays: &[(&str, i64)]| {
            let mut inst = Instance::empty(&input_schema);
            for o in orders {
                inst.insert("order", Tuple::from_iter([*o])).unwrap();
            }
            for (p, amt) in pays {
                inst.insert("pay", Tuple::new(vec![Value::str(*p), Value::int(*amt)]))
                    .unwrap();
            }
            inst
        };

        let scenarios: Vec<Vec<Instance>> = vec![
            // polite: order, then pay the listed price
            vec![step(&["time"], &[]), step(&[], &[("time", 855)])],
            // fraud: pay without ordering
            vec![step(&[], &[("time", 855)])],
            // wrong price
            vec![step(&["time"], &[]), step(&[], &[("time", 1)])],
            // pay in the same step as the order (past-order not yet set)
            vec![step(&["time"], &[("time", 855)])],
            // empty run
            vec![],
        ];

        for steps in scenarios {
            let inputs = InstanceSequence::new(input_schema.clone(), steps).unwrap();
            let run = enforced.run(&db, &inputs).unwrap();
            let error_free = ControlDiscipline::ErrorFree.accepts(&run);
            // evaluate the policy on the run of the *original* transducer
            // (same inputs, same states)
            let original_run = t.run(&db, &inputs).unwrap();
            let satisfied = policy.satisfied_on_run(&original_run, &db).unwrap();
            assert_eq!(error_free, satisfied, "inputs: {inputs}");
        }
    }

    #[test]
    fn enforced_transducer_keeps_the_original_behaviour() {
        let t = models::short();
        let enforced = add_enforcement(&t, &[payment_policy()]).unwrap();
        let db = models::figure1_database();
        let run = t.run(&db, &models::figure1_inputs()).unwrap();
        let enforced_run = enforced.run(&db, &models::figure1_inputs()).unwrap();
        // logs agree (error is not logged)
        assert_eq!(run.log(), enforced_run.log());
        assert_eq!(enforced.name(), "short+policy");
    }

    #[test]
    fn constraint_formula_roundtrip() {
        let policy = payment_policy();
        let formula = policy.to_formula();
        assert!(formula.is_sentence());
        // the formula mentions pay, price and past-order
        let rels = formula.relations().unwrap();
        assert!(rels.contains_key(&rtx_relational::RelationName::new("pay")));
        assert!(rels.contains_key(&rtx_relational::RelationName::new("price")));
        assert!(rels.contains_key(&rtx_relational::RelationName::new("past-order")));
    }

    #[test]
    fn satisfied_at_examples() {
        let policy = payment_policy();
        let db = models::figure1_database();
        let input_schema = models::short_input_schema();
        let state_schema = models::short().schema().state().clone();

        // paying the listed price for a previously ordered product: OK
        let mut state = Instance::empty(&state_schema);
        state
            .insert("past-order", Tuple::from_iter(["time"]))
            .unwrap();
        let mut input = Instance::empty(&input_schema);
        input
            .insert("pay", Tuple::new(vec![Value::str("time"), Value::int(855)]))
            .unwrap();
        assert!(policy.satisfied_at(&state, &db, &input).unwrap());

        // paying without a prior order: violation
        let empty_state = Instance::empty(&state_schema);
        assert!(!policy.satisfied_at(&empty_state, &db, &input).unwrap());

        // no payment at all: vacuously satisfied
        let empty_input = Instance::empty(&input_schema);
        assert!(policy
            .satisfied_at(&empty_state, &db, &empty_input)
            .unwrap());
    }
}
