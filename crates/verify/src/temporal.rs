//! Temporal properties of runs (Theorem 3.3).
//!
//! The class `T_past-input` consists of sentences `∀x̄ φ(x̄)` where `φ` is a
//! Boolean combination of literals over the output, database and state
//! relations.  A run satisfies the sentence if it holds at every step, for
//! the step's output, the database and the state *before* the step (so a
//! `past-R` atom reads "R was input at some earlier step").  The canonical
//! example from §2.1:
//!
//! > deliver(x) cannot be output unless pay(x, y) has been previously input,
//! > where price(x, y) is in the database:
//! > `∀x∀y (deliver(x) ∧ price(x,y) → past-pay(x,y))`.

use crate::reduction::{fix_database, output_atom_formula, step_relation, witness_inputs};
use crate::VerifyError;
use rtx_core::{Run, SpocusTransducer};
use rtx_logic::{solve_bs, BsOutcome, BsProblem, Formula, Term};
use rtx_relational::{Instance, InstanceSequence, RelationName};
use std::collections::BTreeMap;

/// The verdict of a temporal-property check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemporalVerdict {
    /// Every run of the transducer satisfies the property at every step.
    Holds,
    /// Some run violates the property; `counterexample_inputs` is a two-step
    /// input sequence whose second step exhibits the violation.
    Violated {
        /// A two-step input sequence witnessing the violation.
        counterexample_inputs: InstanceSequence,
    },
}

impl TemporalVerdict {
    /// True if the property holds on all runs.
    pub fn holds(&self) -> bool {
        matches!(self, TemporalVerdict::Holds)
    }
}

/// Decides whether every run of `transducer` over `db` satisfies the
/// `T_past-input` sentence `property` at every step (Theorem 3.3).
///
/// `property` must be of the form `∀x̄ φ` (or a closed Boolean combination)
/// where the atoms of `φ` are over output, database and state relations.
pub fn holds_in_all_runs(
    transducer: &SpocusTransducer,
    db: &Instance,
    property: &Formula,
) -> Result<TemporalVerdict, VerifyError> {
    let schema = transducer.schema();
    // Validate the vocabulary: only output, db and state relations.
    for (relation, _arity) in property.relations().map_err(VerifyError::from)? {
        let ok = schema.output().contains(relation.clone())
            || schema.db().contains(relation.clone())
            || schema.state().contains(relation.clone());
        if !ok {
            return Err(VerifyError::UnsupportedProperty {
                detail: format!(
                    "temporal properties in T_past-input only mention output, database and state relations; `{relation}` is not one"
                ),
            });
        }
    }
    if !property.is_sentence() {
        return Err(VerifyError::UnsupportedProperty {
            detail: "the property must be a sentence (universally quantify its variables)".into(),
        });
    }

    // A violation exists iff ¬property is satisfiable at some step of some
    // run.  By the two-step collapse (Theorem 3.2 technique): the state at
    // the violating step is an arbitrary instance (the collapsed earlier
    // inputs, possibly empty), so it suffices to check step 2 of a two-step
    // run.  ¬(∀x̄ φ) = ∃x̄ ¬φ, which stays in ∃*∀* once output atoms are
    // replaced by their (existentially quantified) defining formulas under
    // positive polarity and their negations under negative polarity.
    let negated = Formula::not(property.clone()).nnf();
    let translated = translate(transducer, &negated, 2)?;

    let mut problem = BsProblem::new(translated);
    fix_database(&mut problem, db);

    match solve_bs(&problem)? {
        BsOutcome::Satisfiable(model) => Ok(TemporalVerdict::Violated {
            counterexample_inputs: witness_inputs(transducer, &model, 2)?,
        }),
        BsOutcome::Unsatisfiable => Ok(TemporalVerdict::Holds),
    }
}

/// Translates a property formula (in NNF) into the replicated-signature
/// vocabulary at the given step: output atoms become their defining formulas,
/// state atoms become disjunctions over earlier steps, database atoms are
/// kept.
fn translate(
    transducer: &SpocusTransducer,
    formula: &Formula,
    step: usize,
) -> Result<Formula, VerifyError> {
    Ok(match formula {
        Formula::True | Formula::False | Formula::Eq(..) => formula.clone(),
        Formula::Atom { relation, args } => translate_atom(transducer, relation, args, step)?,
        Formula::Not(inner) => {
            let translated = translate(transducer, inner, step)?;
            Formula::not(translated)
        }
        Formula::And(fs) => Formula::and(
            fs.iter()
                .map(|f| translate(transducer, f, step))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Formula::Or(fs) => Formula::or(
            fs.iter()
                .map(|f| translate(transducer, f, step))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Formula::Implies(a, b) => Formula::implies(
            translate(transducer, a, step)?,
            translate(transducer, b, step)?,
        ),
        Formula::Exists(vars, body) => {
            Formula::exists(vars.clone(), translate(transducer, body, step)?)
        }
        Formula::Forall(vars, body) => {
            Formula::forall(vars.clone(), translate(transducer, body, step)?)
        }
    })
}

fn translate_atom(
    transducer: &SpocusTransducer,
    relation: &RelationName,
    args: &[Term],
    step: usize,
) -> Result<Formula, VerifyError> {
    let schema = transducer.schema();
    if schema.db().contains(relation.clone()) {
        return Ok(Formula::atom(relation.clone(), args.to_vec()));
    }
    if schema.state().contains(relation.clone()) {
        let base = relation
            .strip_past()
            .ok_or_else(|| VerifyError::Precondition {
                detail: format!("state relation `{relation}` is not of the form past-R"),
            })?;
        return Ok(Formula::or(
            (1..step)
                .map(|j| Formula::atom(step_relation(&base, j), args.to_vec()))
                .collect(),
        ));
    }
    if schema.output().contains(relation.clone()) {
        return output_atom_formula(transducer, relation, args, step);
    }
    Err(VerifyError::UnsupportedProperty {
        detail: format!("relation `{relation}` may not appear in a T_past-input sentence"),
    })
}

/// Checks a `T_past-input` sentence against a *concrete* run: the property is
/// evaluated at every step over the step's output, the database and the state
/// before the step.  Used to cross-check counterexamples returned by
/// [`holds_in_all_runs`].
pub fn run_satisfies(property: &Formula, run: &Run, db: &Instance) -> Result<bool, VerifyError> {
    let schema = run.schema();
    let empty_state = Instance::empty(schema.state());
    for (index, output) in run.outputs().iter().enumerate() {
        let state_before = if index == 0 {
            &empty_state
        } else {
            run.states().get(index - 1).expect("aligned sequences")
        };
        if !step_satisfies(property, output, state_before, db)? {
            return Ok(false);
        }
    }
    Ok(true)
}

/// The per-step form of [`run_satisfies`]: does the `T_past-input` sentence
/// hold at one step, given the step's output, the state *before* the step,
/// and the database?  An online monitor calls this once per step as the run
/// advances instead of re-scanning the whole run; `run_satisfies(p, run, db)`
/// is exactly the conjunction of `step_satisfies` over the run's steps.
pub fn step_satisfies(
    property: &Formula,
    output: &Instance,
    state_before: &Instance,
    db: &Instance,
) -> Result<bool, VerifyError> {
    let combined = output.union(state_before)?.union(db)?;
    let mut domain: Vec<rtx_relational::Value> = rtx_relational::active_domain(&combined)
        .into_iter()
        .collect();
    for c in property.constants() {
        if !domain.contains(&c) {
            domain.push(c);
        }
    }
    let structure = rtx_logic::FiniteStructure::from_instance(domain, &combined);
    property
        .eval(&structure, &BTreeMap::new())
        .map_err(VerifyError::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_core::models;
    use rtx_core::{RelationalTransducer, SpocusBuilder};

    /// "No product is delivered unless it has been paid at its listed price."
    fn no_delivery_before_payment() -> Formula {
        Formula::forall(
            ["x", "y"],
            Formula::implies(
                Formula::and(vec![
                    Formula::atom("deliver", [Term::var("x")]),
                    Formula::atom("price", [Term::var("x"), Term::var("y")]),
                ]),
                Formula::atom("past-pay", [Term::var("x"), Term::var("y")]),
            ),
        )
    }

    #[test]
    fn short_never_delivers_before_payment_is_violated_by_same_step_payment() {
        // In `short`, delivery happens in the *same* step as the payment, so
        // the strict "previously paid" property is violated (past-pay does not
        // yet contain the current payment) — exactly the subtlety §2.1 points
        // out when it phrases the property with "sometime in the past".
        let t = models::short();
        let db = models::figure1_database();
        let verdict = holds_in_all_runs(&t, &db, &no_delivery_before_payment()).unwrap();
        match verdict {
            TemporalVerdict::Violated {
                counterexample_inputs,
            } => {
                // the counterexample is a genuine run violating the property
                let run = t.run(&db, &counterexample_inputs).unwrap();
                assert!(!run_satisfies(&no_delivery_before_payment(), &run, &db).unwrap());
            }
            TemporalVerdict::Holds => panic!("expected a violation"),
        }
    }

    #[test]
    fn delivery_implies_payment_now_or_earlier_holds_for_short() {
        // The faithful rendering of the §2.1 property for `short`: a delivery
        // of x at the listed price y implies pay(x, y) was input earlier *or
        // in the same step*.  The same-step payment is visible to the rule
        // (it appears in its body), so this property holds on all runs.
        //
        // Since `pay` is an input (not allowed in T_past-input directly), we
        // verify the equivalent statement on an extension of `short` that
        // echoes the current payment to an output relation `paid-now`.
        let echo = SpocusBuilder::new("short-echo")
            .input("order", 1)
            .input("pay", 2)
            .database("price", 2)
            .database("available", 1)
            .output("sendbill", 2)
            .output("deliver", 1)
            .output("paid-now", 2)
            .log(["sendbill", "pay", "deliver"])
            .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
            .output_rule("deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y)")
            .output_rule("paid-now(X,Y) :- pay(X,Y)")
            .build()
            .unwrap();
        let property = Formula::forall(
            ["x", "y"],
            Formula::implies(
                Formula::and(vec![
                    Formula::atom("deliver", [Term::var("x")]),
                    Formula::atom("price", [Term::var("x"), Term::var("y")]),
                ]),
                Formula::or(vec![
                    Formula::atom("past-pay", [Term::var("x"), Term::var("y")]),
                    Formula::atom("paid-now", [Term::var("x"), Term::var("y")]),
                ]),
            ),
        );
        let db = models::figure1_database();
        assert!(holds_in_all_runs(&echo, &db, &property).unwrap().holds());
    }

    #[test]
    fn a_mutant_that_delivers_unpaid_products_is_caught() {
        // Remove the payment check from the delivery rule: now a delivery can
        // happen with no matching payment at all.
        let mutant = SpocusBuilder::new("short-mutant")
            .input("order", 1)
            .input("pay", 2)
            .database("price", 2)
            .database("available", 1)
            .output("sendbill", 2)
            .output("deliver", 1)
            .output("paid-now", 2)
            .log(["sendbill", "pay", "deliver"])
            .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
            .output_rule("deliver(X) :- past-order(X), price(X,Y)")
            .output_rule("paid-now(X,Y) :- pay(X,Y)")
            .build()
            .unwrap();
        let property = Formula::forall(
            ["x", "y"],
            Formula::implies(
                Formula::and(vec![
                    Formula::atom("deliver", [Term::var("x")]),
                    Formula::atom("price", [Term::var("x"), Term::var("y")]),
                ]),
                Formula::or(vec![
                    Formula::atom("past-pay", [Term::var("x"), Term::var("y")]),
                    Formula::atom("paid-now", [Term::var("x"), Term::var("y")]),
                ]),
            ),
        );
        let db = models::figure1_database();
        assert!(!holds_in_all_runs(&mutant, &db, &property).unwrap().holds());
    }

    #[test]
    fn trivially_true_and_false_properties() {
        let t = models::short();
        let db = models::figure1_database();
        assert!(holds_in_all_runs(&t, &db, &Formula::True).unwrap().holds());
        assert!(!holds_in_all_runs(&t, &db, &Formula::False).unwrap().holds());
    }

    #[test]
    fn properties_over_foreign_relations_are_rejected() {
        let t = models::short();
        let db = models::figure1_database();
        let bad = Formula::forall(["x"], Formula::atom("warehouse", [Term::var("x")]));
        assert!(matches!(
            holds_in_all_runs(&t, &db, &bad),
            Err(VerifyError::UnsupportedProperty { .. })
        ));
        // input relations are also not part of T_past-input
        let bad = Formula::forall(
            ["x"],
            Formula::not(Formula::atom("order", [Term::var("x")])),
        );
        assert!(matches!(
            holds_in_all_runs(&t, &db, &bad),
            Err(VerifyError::UnsupportedProperty { .. })
        ));
    }

    #[test]
    fn open_formulas_are_rejected() {
        let t = models::short();
        let db = models::figure1_database();
        let open = Formula::atom("deliver", [Term::var("x")]);
        assert!(matches!(
            holds_in_all_runs(&t, &db, &open),
            Err(VerifyError::UnsupportedProperty { .. })
        ));
    }

    #[test]
    fn run_satisfaction_matches_direct_inspection() {
        let t = models::short();
        let db = models::figure1_database();
        let run = t.run(&db, &models::figure1_inputs()).unwrap();
        // "no product is ever billed at a price other than its listed price"
        let property = Formula::forall(
            ["x", "y"],
            Formula::implies(
                Formula::atom("sendbill", [Term::var("x"), Term::var("y")]),
                Formula::atom("price", [Term::var("x"), Term::var("y")]),
            ),
        );
        assert!(run_satisfies(&property, &run, &db).unwrap());
    }
}
