//! Customization containment (Theorem 3.5 and Corollary 3.6).
//!
//! `T1 ⊒ T2` ("T1 contains T2") means every valid log of `T2` is also a valid
//! log of `T1`.  This is the soundness criterion for *customization*: a
//! customer may extend the supplier's model `T1` (new inputs, new warning
//! outputs, extra constraints) into `T2` as long as the logs `T2` can produce
//! are still logs `T1` could have produced.  Containment is undecidable in
//! general (Theorem 3.4) but decidable when `in1 ⊆ in2`, the two transducers
//! share their log schema, and the log is full for `T1` (`in1 ⊆ log`) —
//! exactly the customization scenario.

use crate::reduction::{fix_database, output_atom_formula, witness_inputs};
use crate::VerifyError;
use rtx_core::SpocusTransducer;
use rtx_datalog::graph::DependencyGraph;
use rtx_logic::{solve_bs, BsOutcome, BsProblem, Formula, Term};
use rtx_relational::{Instance, InstanceSequence, RelationName};
use std::collections::BTreeSet;

/// The verdict of a containment check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ContainmentVerdict {
    /// Every valid log of the customized transducer is a valid log of the
    /// original.
    Contained,
    /// Some input sequence of the customized transducer produces a log the
    /// original cannot produce on the same (restricted) inputs.
    NotContained {
        /// A two-step input sequence (over the customized transducer's input
        /// schema) on which the two logs differ.
        counterexample_inputs: InstanceSequence,
    },
}

impl ContainmentVerdict {
    /// True if containment holds.
    pub fn is_contained(&self) -> bool {
        matches!(self, ContainmentVerdict::Contained)
    }
}

/// Decides whether the customization `customized` preserves the logs of
/// `original` (Theorem 3.5): every valid log of `customized` is a valid log
/// of `original`.
///
/// The procedure decides *pointwise log agreement*: for every input sequence
/// over the customization's inputs, the customization's log equals the
/// original's log on the same inputs (restricted to the original's input
/// schema).  Pointwise agreement always implies log containment; Theorem 3.5
/// shows it is also complete for containment when the log is full for the
/// original (`in1 ⊆ log`).  By the two-step collapse, only runs of length two
/// need to be examined.
///
/// Preconditions (checked):
/// * `original.in ⊆ customized.in` (the customization may only add inputs);
/// * the two transducers declare the same set of log relations, with the same
///   arities;
/// * the shared database schema is the same.
pub fn customization_preserves_logs(
    original: &SpocusTransducer,
    customized: &SpocusTransducer,
    db: &Instance,
) -> Result<ContainmentVerdict, VerifyError> {
    let s1 = original.schema();
    let s2 = customized.schema();
    if !s1.input().is_subschema_of(s2.input()) {
        return Err(VerifyError::Precondition {
            detail: "the original's input schema must be contained in the customization's".into(),
        });
    }
    if s1.log() != s2.log() {
        return Err(VerifyError::Precondition {
            detail: "the two transducers must declare the same log relations".into(),
        });
    }
    if s1.db() != s2.db() {
        return Err(VerifyError::Precondition {
            detail: "the two transducers must share their database schema".into(),
        });
    }

    // Counterexample search over two-step runs of the customized transducer:
    // some logged relation differs, at some step, between the two logs.
    // Logged relations that are inputs of both transducers trivially agree
    // (both log the same input); a logged relation that is an input of the
    // customization but an output of the original (or vice versa) is compared
    // input-copy against defining formula.
    let mut differences: Vec<Formula> = Vec::new();
    for relation in s1.log() {
        let arity = s1
            .log_schema()
            .arity_of(relation.clone())
            .or_else(|| s2.log_schema().arity_of(relation.clone()))
            .ok_or_else(|| VerifyError::Precondition {
                detail: format!("log relation `{relation}` missing from both schemas"),
            })?;
        let vars: Vec<String> = (0..arity).map(|i| format!("x{i}")).collect();
        let terms: Vec<Term> = vars.iter().map(Term::var).collect();
        for step in 1..=2usize {
            let in_original = log_membership(original, relation, &terms, step)?;
            let in_customized = log_membership(customized, relation, &terms, step)?;
            if in_original == in_customized {
                continue;
            }
            // XOR: one holds and the other does not.
            let xor = Formula::or(vec![
                Formula::and(vec![
                    in_customized.clone(),
                    Formula::not(in_original.clone()),
                ]),
                Formula::and(vec![in_original, Formula::not(in_customized)]),
            ]);
            differences.push(Formula::exists(vars.clone(), xor));
        }
    }
    let sentence = Formula::or(differences);

    let mut problem = BsProblem::new(sentence);
    fix_database(&mut problem, db);

    match solve_bs(&problem)? {
        BsOutcome::Satisfiable(model) => Ok(ContainmentVerdict::NotContained {
            counterexample_inputs: witness_inputs(customized, &model, 2)?,
        }),
        BsOutcome::Unsatisfiable => Ok(ContainmentVerdict::Contained),
    }
}

/// "The tuple `args` appears in `relation`'s slice of the log of `transducer`
/// at step `step`", over the replicated two-step input signature.
fn log_membership(
    transducer: &SpocusTransducer,
    relation: &RelationName,
    args: &[Term],
    step: usize,
) -> Result<Formula, VerifyError> {
    let schema = transducer.schema();
    let mut parts = Vec::new();
    if schema.input().contains(relation.clone()) {
        parts.push(Formula::atom(
            crate::reduction::step_relation(relation, step),
            args.to_vec(),
        ));
    }
    if schema.output().contains(relation.clone()) {
        parts.push(output_atom_formula(transducer, relation, args, step)?);
    }
    if parts.is_empty() {
        // The relation is logged but this transducer never produces it: its
        // slice of the log is always empty.
        return Ok(Formula::False);
    }
    Ok(Formula::or(parts))
}

/// The syntactic sufficient condition for sound customization discussed after
/// Theorem 3.5: the customization keeps every original rule, adds only new
/// rules for non-logged outputs, and no logged relation depends (in the
/// customization's dependency graph) on a newly added input relation.
pub fn syntactically_safe_customization(
    original: &SpocusTransducer,
    customized: &SpocusTransducer,
) -> bool {
    let s1 = original.schema();
    let s2 = customized.schema();
    if !s1.input().is_subschema_of(s2.input()) || s1.log() != s2.log() {
        return false;
    }
    // every original rule is still present
    let original_rules: BTreeSet<String> = original
        .output_program()
        .rules()
        .iter()
        .map(|r| r.to_string())
        .collect();
    let customized_rules: BTreeSet<String> = customized
        .output_program()
        .rules()
        .iter()
        .map(|r| r.to_string())
        .collect();
    if !original_rules.is_subset(&customized_rules) {
        return false;
    }
    // no new rule defines a logged output relation
    for rule in customized.output_program().rules() {
        let is_new = !original_rules.contains(&rule.to_string());
        if is_new && s1.log().contains(&rule.head.relation) {
            return false;
        }
    }
    // no logged relation depends on a newly added input
    let graph = DependencyGraph::of(customized.output_program());
    let new_inputs: Vec<RelationName> = s2
        .input()
        .names()
        .filter(|n| !s1.input().contains((*n).clone()))
        .cloned()
        .collect();
    for logged in s1.log() {
        for new_input in &new_inputs {
            if graph.depends_on(logged, new_input) || graph.depends_on(logged, &new_input.past()) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_core::{models, SpocusBuilder};

    #[test]
    fn friendly_is_a_sound_customization_of_short() {
        // §2.1: short and friendly have exactly the same valid logs, so each
        // contains the other; in particular short ⊒ friendly, which is the
        // direction customization needs.
        let short = models::short();
        let friendly = models::friendly();
        let db = models::figure1_database();
        assert!(customization_preserves_logs(&short, &friendly, &db)
            .unwrap()
            .is_contained());
        assert!(syntactically_safe_customization(&short, &friendly));
    }

    #[test]
    fn a_customization_that_tampers_with_deliveries_is_rejected() {
        // The customization delivers any ordered product immediately, without
        // payment — its logs contain deliveries short would never produce.
        let short = models::short();
        let rogue = SpocusBuilder::new("rogue")
            .input("order", 1)
            .input("pay", 2)
            .input("pending-bills", 0)
            .database("price", 2)
            .database("available", 1)
            .output("sendbill", 2)
            .output("deliver", 1)
            .log(["sendbill", "pay", "deliver"])
            .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
            .output_rule("deliver(X) :- order(X), price(X,Y)")
            .build()
            .unwrap();
        let db = models::figure1_database();
        match customization_preserves_logs(&short, &rogue, &db).unwrap() {
            ContainmentVerdict::NotContained {
                counterexample_inputs,
            } => {
                assert_eq!(counterexample_inputs.len(), 2);
            }
            ContainmentVerdict::Contained => panic!("the rogue customization must be rejected"),
        }
        assert!(!syntactically_safe_customization(&short, &rogue));
    }

    #[test]
    fn restricting_purchases_is_an_acceptable_customization() {
        // §2.1: a customer may restrict the model (e.g. refuse to bill
        // products that are not available).  The restricted logs are a subset
        // of short's logs, so containment holds.
        let short = models::short();
        let restricted = SpocusBuilder::new("restricted")
            .input("order", 1)
            .input("pay", 2)
            .database("price", 2)
            .database("available", 1)
            .output("sendbill", 2)
            .output("deliver", 1)
            .log(["sendbill", "pay", "deliver"])
            .output_rule("sendbill(X,Y) :- order(X), price(X,Y), available(X), NOT past-pay(X,Y)")
            .output_rule("deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y)")
            .build()
            .unwrap();
        let db = models::figure1_database();
        // Not contained in the other direction conceptually, but here we ask:
        // is every log of `restricted` a log of `short`?  The sendbill slice
        // differs on the same inputs (short bills unavailable products,
        // restricted does not), so two-step log equality fails.
        let verdict = customization_preserves_logs(&short, &restricted, &db).unwrap();
        // A log of `restricted` on inputs ordering an unavailable product
        // lacks the bill short would emit — but that very log *is* producible
        // by short on a different input sequence (one that never orders the
        // product).  The theorem's procedure compares logs on the *same*
        // inputs, which is sound (it may only over-approximate rejection):
        // here it rejects.
        assert!(!verdict.is_contained());
        assert!(!syntactically_safe_customization(&short, &restricted));
    }

    #[test]
    fn preconditions_are_checked() {
        let short = models::short();
        let friendly = models::friendly();
        let db = models::figure1_database();
        // swapped arguments: friendly's inputs are not contained in short's
        assert!(matches!(
            customization_preserves_logs(&friendly, &short, &db),
            Err(VerifyError::Precondition { .. })
        ));

        // different log relations
        let other_log = SpocusBuilder::new("other-log")
            .input("order", 1)
            .input("pay", 2)
            .database("price", 2)
            .database("available", 1)
            .output("sendbill", 2)
            .output("deliver", 1)
            .log(["sendbill", "deliver"])
            .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
            .output_rule("deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y)")
            .build()
            .unwrap();
        assert!(matches!(
            customization_preserves_logs(&short, &other_log, &db),
            Err(VerifyError::Precondition { .. })
        ));
    }

    #[test]
    fn identical_transducers_contain_each_other() {
        let short = models::short();
        let db = models::figure1_database();
        assert!(customization_preserves_logs(&short, &short, &db)
            .unwrap()
            .is_contained());
        assert!(syntactically_safe_customization(&short, &short));
    }
}
