//! Verification over error-free runs (Theorems 4.4 and 4.6).
//!
//! Once inputs are controlled through error rules (§4), the natural questions
//! become relative to *error-free* runs: do they all satisfy a `T_sdi`
//! policy (Theorem 4.4)?  Are the error-free runs of one transducer all
//! error-free for another (Theorem 4.6)?  Both are undecidable in general
//! (Theorems 4.3 and 4.5) but decidable when the error rules contain **no
//! negative state literal** — negation over the cumulative state is what the
//! Turing-machine encodings of §4.2 exploit.
//!
//! The decision procedures implement the small-run argument of the proofs:
//! if a violation exists, one exists within a run of length `k + 1`, where
//! `k` counts the positive state literals of the constraint (resp. of the
//! error rule of the containing transducer) — each such literal needs at most
//! one earlier step to have supplied its witness input.

use crate::enforce::SdiConstraint;
use crate::reduction::{fix_database, literal_formula, witness_inputs};
use crate::VerifyError;
use rtx_core::SpocusTransducer;
use rtx_datalog::{BodyLiteral, Rule};
use rtx_logic::{solve_bs, BsOutcome, BsProblem, Formula};
use rtx_relational::{Instance, InstanceSequence, RelationName};

/// Verdict of an error-free-run verification.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ErrorFreeVerdict {
    /// Every error-free run satisfies the property.
    Holds,
    /// Some error-free run violates the property.
    Violated {
        /// An input sequence whose run is error-free yet violates the
        /// property at its last step.
        counterexample_inputs: InstanceSequence,
    },
}

impl ErrorFreeVerdict {
    /// True if the property holds on every error-free run.
    pub fn holds(&self) -> bool {
        matches!(self, ErrorFreeVerdict::Holds)
    }
}

/// The error rules of a transducer (rules whose head is the 0-ary `error`).
pub fn error_rules(transducer: &SpocusTransducer) -> Vec<&Rule> {
    transducer.rules_for(&RelationName::new("error"))
}

/// Checks the Theorem 4.4 / 4.6 precondition: no error rule of the transducer
/// contains a negative state literal.
pub fn check_no_negative_state_in_error_rules(
    transducer: &SpocusTransducer,
) -> Result<(), VerifyError> {
    for rule in error_rules(transducer) {
        for lit in &rule.body {
            if let BodyLiteral::Negative(atom) = lit {
                if transducer.schema().state().contains(atom.relation.clone()) {
                    return Err(VerifyError::Precondition {
                        detail: format!(
                            "error rule `{rule}` negates the state relation `{}`; Theorems 4.4/4.6 require error rules without negative state literals",
                            atom.relation
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Decides whether every error-free run of `transducer` over `db` satisfies
/// the `T_sdi` constraint at every step (Theorem 4.4).
pub fn error_free_runs_satisfy(
    transducer: &SpocusTransducer,
    db: &Instance,
    constraint: &SdiConstraint,
) -> Result<ErrorFreeVerdict, VerifyError> {
    check_no_negative_state_in_error_rules(transducer)?;

    // k = number of positive state literals in the antecedent.
    let k = constraint
        .antecedent
        .iter()
        .filter(|lit| match lit {
            BodyLiteral::Positive(atom) => {
                transducer.schema().state().contains(atom.relation.clone())
            }
            _ => false,
        })
        .count();
    let steps = k + 1;

    // Violation of the constraint at the last step.
    let violation = violation_formula(transducer, constraint, steps)?;
    // No error generated at any step.
    let error_free = error_free_formula(transducer, steps)?;

    let sentence = Formula::and(vec![violation, error_free]);
    let mut problem = BsProblem::new(sentence);
    fix_database(&mut problem, db);

    match solve_bs(&problem)? {
        BsOutcome::Satisfiable(model) => Ok(ErrorFreeVerdict::Violated {
            counterexample_inputs: witness_inputs(transducer, &model, steps)?,
        }),
        BsOutcome::Unsatisfiable => Ok(ErrorFreeVerdict::Holds),
    }
}

/// Decides whether every error-free run of `left` is also error-free for
/// `right` (Theorem 4.6).  The two transducers must share their input schema
/// and satisfy the no-negative-state-literal condition on error rules.
pub fn error_free_containment(
    left: &SpocusTransducer,
    right: &SpocusTransducer,
    db: &Instance,
) -> Result<ErrorFreeVerdict, VerifyError> {
    if left.schema().input() != right.schema().input() {
        return Err(VerifyError::Precondition {
            detail: "error-free containment requires the same input schema".into(),
        });
    }
    check_no_negative_state_in_error_rules(left)?;
    check_no_negative_state_in_error_rules(right)?;

    // A counterexample is a run, error-free for `left` throughout and for
    // `right` up to its last step, whose last step fires one of `right`'s
    // error rules.  For each error rule of `right`, the small-run bound is
    // the number of its positive state literals plus one.
    for rule in error_rules(right) {
        let k = rule
            .body
            .iter()
            .filter(|lit| match lit {
                BodyLiteral::Positive(atom) => {
                    right.schema().state().contains(atom.relation.clone())
                }
                _ => false,
            })
            .count();
        let steps = k + 1;

        let fires = rule_fires_formula(right, rule, steps)?;
        let left_error_free = error_free_formula(left, steps)?;
        let right_error_free_prefix = error_free_formula(right, steps - 1)?;

        let sentence = Formula::and(vec![fires, left_error_free, right_error_free_prefix]);
        let mut problem = BsProblem::new(sentence);
        fix_database(&mut problem, db);

        if let BsOutcome::Satisfiable(model) = solve_bs(&problem)? {
            return Ok(ErrorFreeVerdict::Violated {
                counterexample_inputs: witness_inputs(left, &model, steps)?,
            });
        }
    }
    Ok(ErrorFreeVerdict::Holds)
}

/// `∃x̄ (antecedent ∧ ¬consequent)` evaluated at step `step` over the
/// replicated signature.
fn violation_formula(
    transducer: &SpocusTransducer,
    constraint: &SdiConstraint,
    step: usize,
) -> Result<Formula, VerifyError> {
    let mut vars = std::collections::BTreeSet::new();
    for lit in &constraint.antecedent {
        vars.extend(lit.variables());
    }
    vars.extend(constraint.consequent.free_variables());

    let mut conjuncts = Vec::new();
    for lit in &constraint.antecedent {
        conjuncts.push(literal_formula(transducer, lit, step)?);
    }
    conjuncts.push(Formula::not(translate_positive(
        transducer,
        &constraint.consequent,
        step,
    )?));
    Ok(Formula::exists(
        vars.into_iter().collect::<Vec<_>>(),
        Formula::and(conjuncts),
    ))
}

/// Translates a positive formula over state/db/in atoms at a given step.
fn translate_positive(
    transducer: &SpocusTransducer,
    formula: &Formula,
    step: usize,
) -> Result<Formula, VerifyError> {
    Ok(match formula {
        Formula::True | Formula::False => formula.clone(),
        Formula::Atom { relation, args } => {
            crate::reduction::atom_formula(transducer, relation, args, step)?
        }
        Formula::And(fs) => Formula::and(
            fs.iter()
                .map(|f| translate_positive(transducer, f, step))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        Formula::Or(fs) => Formula::or(
            fs.iter()
                .map(|f| translate_positive(transducer, f, step))
                .collect::<Result<Vec<_>, _>>()?,
        ),
        other => {
            return Err(VerifyError::UnsupportedProperty {
                detail: format!("not a positive quantifier-free formula: {other}"),
            })
        }
    })
}

/// "`error` is not generated at any of the first `steps` steps": for every
/// error rule and step, the universally quantified negation of the rule body.
fn error_free_formula(transducer: &SpocusTransducer, steps: usize) -> Result<Formula, VerifyError> {
    let mut conjuncts = Vec::new();
    for rule in error_rules(transducer) {
        for step in 1..=steps {
            let vars: Vec<String> = rule.variables().into_iter().collect();
            let mut body = Vec::new();
            for lit in &rule.body {
                body.push(literal_formula(transducer, lit, step)?);
            }
            conjuncts.push(Formula::forall(vars, Formula::not(Formula::and(body))));
        }
    }
    Ok(Formula::and(conjuncts))
}

/// `∃ȳ body` of an error rule at step `step`.
fn rule_fires_formula(
    transducer: &SpocusTransducer,
    rule: &Rule,
    step: usize,
) -> Result<Formula, VerifyError> {
    let vars: Vec<String> = rule.variables().into_iter().collect();
    let mut body = Vec::new();
    for lit in &rule.body {
        body.push(literal_formula(transducer, lit, step)?);
    }
    Ok(Formula::exists(vars, Formula::and(body)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::enforce::add_enforcement;
    use rtx_core::models;
    use rtx_datalog::Atom;
    use rtx_logic::Term;

    /// "payments must be for previously ordered products at the listed price"
    fn payment_policy() -> SdiConstraint {
        SdiConstraint::new(
            vec![BodyLiteral::Positive(Atom::new(
                "pay",
                [Term::var("x"), Term::var("y")],
            ))],
            Formula::and(vec![
                Formula::atom("price", [Term::var("x"), Term::var("y")]),
                Formula::atom("past-order", [Term::var("x")]),
            ]),
        )
        .unwrap()
    }

    /// "orders must be for available products"
    fn availability_policy() -> SdiConstraint {
        SdiConstraint::new(
            vec![BodyLiteral::Positive(Atom::new("order", [Term::var("x")]))],
            Formula::atom("available", [Term::var("x")]),
        )
        .unwrap()
    }

    #[test]
    fn unconstrained_transducer_admits_violating_runs() {
        // `short` has no error rules, so every run is error-free; the payment
        // policy is certainly violated by some run (pay without ordering).
        let t = models::short();
        let db = models::figure1_database();
        match error_free_runs_satisfy(&t, &db, &payment_policy()).unwrap() {
            ErrorFreeVerdict::Violated {
                counterexample_inputs,
            } => {
                // the counterexample really is an error-free run violating the
                // policy
                let run =
                    rtx_core::RelationalTransducer::run(&t, &db, &counterexample_inputs).unwrap();
                assert!(run.is_error_free());
                assert!(!payment_policy().satisfied_on_run(&run, &db).unwrap());
            }
            ErrorFreeVerdict::Holds => panic!("expected a violation"),
        }
    }

    /// "payments must be at the listed price" — its error rule only negates a
    /// database relation, so it stays within the decidable case.
    fn price_policy() -> SdiConstraint {
        SdiConstraint::new(
            vec![BodyLiteral::Positive(Atom::new(
                "pay",
                [Term::var("x"), Term::var("y")],
            ))],
            Formula::atom("price", [Term::var("x"), Term::var("y")]),
        )
        .unwrap()
    }

    #[test]
    fn enforced_policy_holds_on_error_free_runs() {
        // After compiling the availability policy into error rules
        // (Theorem 4.1), every error-free run satisfies it, and Theorem 4.4
        // verifies this automatically.
        let t = models::short();
        let enforced = add_enforcement(&t, &[availability_policy()]).unwrap();
        let db = models::figure1_database();
        assert!(
            error_free_runs_satisfy(&enforced, &db, &availability_policy())
                .unwrap()
                .holds()
        );
    }

    #[test]
    fn enforcing_one_policy_does_not_enforce_another() {
        let t = models::short();
        let enforced = add_enforcement(&t, &[availability_policy()]).unwrap();
        let db = models::figure1_database();
        // the price policy is not enforced: paying a wrong amount is still
        // possible in an error-free run
        match error_free_runs_satisfy(&enforced, &db, &price_policy()).unwrap() {
            ErrorFreeVerdict::Violated {
                counterexample_inputs,
            } => {
                let run =
                    rtx_core::RelationalTransducer::run(&enforced, &db, &counterexample_inputs)
                        .unwrap();
                assert!(run.is_error_free());
                assert!(!price_policy().satisfied_on_run(&run, &db).unwrap());
            }
            ErrorFreeVerdict::Holds => panic!("expected a violation"),
        }
    }

    #[test]
    fn negative_state_literals_in_error_rules_are_rejected() {
        // The payment policy's consequent mentions past-order, so its compiled
        // error rule negates a state relation — exactly the shape Theorem 4.3
        // shows undecidable, and exactly what the precondition check rejects.
        let t = models::short();
        let enforced = add_enforcement(&t, &[payment_policy()]).unwrap();
        let db = models::figure1_database();
        let has_negative_state = error_rules(&enforced).iter().any(|r| {
            r.body.iter().any(|l| match l {
                BodyLiteral::Negative(a) => enforced.schema().state().contains(a.relation.clone()),
                _ => false,
            })
        });
        assert!(has_negative_state);
        assert!(check_no_negative_state_in_error_rules(&enforced).is_err());
        assert!(matches!(
            error_free_runs_satisfy(&enforced, &db, &availability_policy()),
            Err(VerifyError::Precondition { .. })
        ));
    }

    #[test]
    fn error_free_containment_between_policies() {
        let t = models::short();
        let db = models::figure1_database();
        let strict = add_enforcement(&t, &[availability_policy()]).unwrap();
        let lax = models::short(); // no error rules at all

        // every error-free run of `strict` is error-free for `lax` (lax never
        // errors)
        assert!(error_free_containment(&strict, &lax, &db).unwrap().holds());
        // the converse fails: lax admits runs ordering lemonde, which `strict`
        // rejects
        match error_free_containment(&lax, &strict, &db).unwrap() {
            ErrorFreeVerdict::Violated {
                counterexample_inputs,
            } => {
                let run_left =
                    rtx_core::RelationalTransducer::run(&lax, &db, &counterexample_inputs).unwrap();
                let run_right =
                    rtx_core::RelationalTransducer::run(&strict, &db, &counterexample_inputs)
                        .unwrap();
                assert!(run_left.is_error_free());
                assert!(!run_right.is_error_free());
            }
            ErrorFreeVerdict::Holds => panic!("expected a counterexample"),
        }
    }

    #[test]
    fn containment_requires_matching_input_schemas() {
        let db = models::figure1_database();
        assert!(matches!(
            error_free_containment(&models::short(), &models::friendly(), &db),
            Err(VerifyError::Precondition { .. })
        ));
    }

    #[test]
    fn identical_transducers_are_error_free_equivalent() {
        let t = add_enforcement(&models::short(), &[availability_policy()]).unwrap();
        let db = models::figure1_database();
        assert!(error_free_containment(&t, &t, &db).unwrap().holds());
    }
}
