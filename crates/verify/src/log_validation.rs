//! Log validation (Theorem 3.1).
//!
//! Given a Spocus transducer `T`, a database `D` and a log sequence `L`,
//! decide whether some input sequence `I` produces exactly `L` — the fraud
//! detection scenario of §2.1, where a supplier lets a customer run the
//! supplier's business model locally and later audits the (partial) log the
//! customer hands back.

use crate::reduction::{atom_formula, fix_database, step_relation, witness_inputs};
use crate::VerifyError;
use rtx_core::{RelationalTransducer, SpocusTransducer};
use rtx_logic::{solve_bs, BsOutcome, BsProblem, Formula, Term};
use rtx_relational::{active_domain, Instance, InstanceSequence, RelationName, Value};

/// The outcome of a log-validation check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogValidity {
    /// The log is producible; `witness_inputs` is one input sequence that
    /// produces it.
    Valid {
        /// An input sequence whose run generates the audited log.
        witness_inputs: InstanceSequence,
    },
    /// No input sequence produces the log.
    Invalid,
}

impl LogValidity {
    /// True if the log was found valid.
    pub fn is_valid(&self) -> bool {
        matches!(self, LogValidity::Valid { .. })
    }
}

/// Decides whether `log` is a valid log of `transducer` over `db`
/// (Theorem 3.1).
///
/// The log sequence must be over (a sub-schema of) the transducer's log
/// schema; relations of the log schema missing from the sequence's schema are
/// treated as empty at every step.
pub fn validate_log(
    transducer: &SpocusTransducer,
    db: &Instance,
    log: &InstanceSequence,
) -> Result<LogValidity, VerifyError> {
    let log_schema = transducer.schema().log_schema();
    if !log.schema().is_subschema_of(&log_schema) {
        return Err(VerifyError::Precondition {
            detail: format!(
                "the audited log has schema {} which is not contained in the transducer log schema {}",
                log.schema(),
                log_schema
            ),
        });
    }
    let mut cursor = LogAuditCursor::new();
    for logged in log.iter() {
        cursor.push_step(transducer, logged)?;
    }
    cursor.validate(transducer, db)
}

/// A resumable Theorem 3.1 audit: the per-step membership conjuncts of
/// [`validate_log`] accumulated incrementally as the log arrives.
///
/// [`LogAuditCursor::push_step`] does only the *new* step's share of the
/// symbolic work — building the "(a) every logged tuple is produced / (b)
/// nothing beyond the logged tuples is produced" conjuncts for that step —
/// so feeding a length-N log costs N single-step pushes, not N re-scans of
/// a growing prefix.  [`LogAuditCursor::validate`] then decides, at any
/// point, whether the log pushed so far is producible.  An online monitor
/// keeps one cursor per session and calls `validate` on demand (or on
/// violation suspicion) instead of per step.
///
/// Every call must pass the *same* transducer the cursor has seen before;
/// the cursor only stores the derived formulas.
#[derive(Debug, Clone, Default)]
pub struct LogAuditCursor {
    steps: usize,
    conjuncts: Vec<Formula>,
    constants: Vec<Value>,
}

impl LogAuditCursor {
    /// An empty cursor: zero steps pushed, `validate` accepts trivially.
    pub fn new() -> Self {
        LogAuditCursor::default()
    }

    /// Number of log steps pushed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Appends one audited log step, building its membership conjuncts.
    ///
    /// The instance must be over (a sub-schema of) the transducer's log
    /// schema; relations of the log schema missing from the instance's
    /// schema are treated as empty at this step.
    pub fn push_step(
        &mut self,
        transducer: &SpocusTransducer,
        logged: &Instance,
    ) -> Result<(), VerifyError> {
        let schema = transducer.schema();
        let log_schema = schema.log_schema();
        if !logged.schema().is_subschema_of(&log_schema) {
            return Err(VerifyError::Precondition {
                detail: format!(
                    "the audited log has schema {} which is not contained in the transducer log schema {}",
                    logged.schema(),
                    log_schema
                ),
            });
        }

        let step = self.steps + 1;
        for logged_relation in schema.log() {
            let arity = log_schema
                .arity_of(logged_relation.clone())
                .expect("log relation is in the log schema");
            let tuples: Vec<Vec<Value>> = logged
                .relation(logged_relation.clone())
                .map(|r| r.iter().map(|t| t.values().to_vec()).collect())
                .unwrap_or_default();

            // The formula for "the tuple x̄ appears in this relation's slice of
            // the run at this step".
            let vars: Vec<String> = (0..arity).map(|i| format!("x{i}")).collect();
            let var_terms: Vec<Term> = vars.iter().map(Term::var).collect();
            let membership = if schema.input().contains(logged_relation.clone()) {
                Formula::atom(step_relation(logged_relation, step), var_terms.clone())
            } else {
                atom_formula(transducer, logged_relation, &var_terms, step)?
            };

            // (a) every logged tuple is produced
            for tuple in &tuples {
                let ground: Vec<Term> = tuple.iter().cloned().map(Term::constant).collect();
                let grounded = if schema.input().contains(logged_relation.clone()) {
                    Formula::atom(step_relation(logged_relation, step), ground)
                } else {
                    atom_formula(transducer, logged_relation, &ground, step)?
                };
                self.conjuncts.push(grounded);
            }

            // (b) nothing beyond the logged tuples is produced
            let allowed = Formula::or(
                tuples
                    .iter()
                    .map(|tuple| {
                        Formula::and(
                            tuple
                                .iter()
                                .enumerate()
                                .map(|(i, v)| {
                                    Formula::eq(Term::var(vars[i].clone()), Term::constant(*v))
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            );
            self.conjuncts.push(Formula::forall(
                vars.clone(),
                Formula::implies(membership, allowed),
            ));
        }
        for value in active_domain(logged) {
            if !self.constants.contains(&value) {
                self.constants.push(value);
            }
        }
        self.steps = step;
        Ok(())
    }

    /// Decides whether the log pushed so far is a valid log of `transducer`
    /// over `db` (Theorem 3.1 on the accumulated conjuncts).
    pub fn validate(
        &self,
        transducer: &SpocusTransducer,
        db: &Instance,
    ) -> Result<LogValidity, VerifyError> {
        let sentence = Formula::and(self.conjuncts.clone());
        let mut problem = BsProblem::new(sentence);
        fix_database(&mut problem, db);
        problem.add_constants(self.constants.iter().cloned());

        match solve_bs(&problem)? {
            BsOutcome::Satisfiable(model) => Ok(LogValidity::Valid {
                witness_inputs: witness_inputs(transducer, &model, self.steps)?,
            }),
            BsOutcome::Unsatisfiable => Ok(LogValidity::Invalid),
        }
    }
}

/// Runs the transducer on `inputs` and checks that the produced log matches
/// `log` relation by relation (relations absent from the audited log's schema
/// must be empty).  Used to cross-check the witnesses returned by
/// [`validate_log`].
pub fn log_matches(
    transducer: &SpocusTransducer,
    db: &Instance,
    inputs: &InstanceSequence,
    log: &InstanceSequence,
) -> Result<bool, VerifyError> {
    let run = transducer.run(db, inputs)?;
    if run.log().len() != log.len() {
        return Ok(false);
    }
    for (produced, expected) in run.log().iter().zip(log.iter()) {
        for name in transducer.schema().log() {
            let produced_rel = produced.relation(name.clone());
            let expected_rel = expected.relation(name.clone());
            let produced_tuples: Vec<_> = produced_rel
                .map(|r| r.iter().cloned().collect())
                .unwrap_or_default();
            let expected_tuples: Vec<_> = expected_rel
                .map(|r| r.iter().cloned().collect())
                .unwrap_or_default();
            if produced_tuples != expected_tuples {
                return Ok(false);
            }
        }
    }
    Ok(true)
}

/// Convenience: the log relation names of a transducer, for building audited
/// log sequences.
pub fn log_relation_names(transducer: &SpocusTransducer) -> Vec<RelationName> {
    transducer.schema().log().iter().cloned().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_core::models;
    use rtx_relational::{Schema, Tuple, Value};

    fn log_step(
        schema: &Schema,
        sendbills: &[(&str, i64)],
        pays: &[(&str, i64)],
        delivers: &[&str],
    ) -> Instance {
        let mut inst = Instance::empty(schema);
        for (p, amt) in sendbills {
            inst.insert(
                "sendbill",
                Tuple::new(vec![Value::str(*p), Value::int(*amt)]),
            )
            .unwrap();
        }
        for (p, amt) in pays {
            inst.insert("pay", Tuple::new(vec![Value::str(*p), Value::int(*amt)]))
                .unwrap();
        }
        for p in delivers {
            inst.insert("deliver", Tuple::from_iter([*p])).unwrap();
        }
        inst
    }

    fn short_log_schema() -> Schema {
        models::short().schema().log_schema()
    }

    #[test]
    fn the_log_of_a_real_run_is_valid_and_the_witness_reproduces_it() {
        let t = models::short();
        let db = models::figure1_database();
        let run = t.run(&db, &models::figure1_inputs()).unwrap();
        let log = run.log().clone();

        match validate_log(&t, &db, &log).unwrap() {
            LogValidity::Valid { witness_inputs } => {
                assert_eq!(witness_inputs.len(), log.len());
                assert!(log_matches(&t, &db, &witness_inputs, &log).unwrap());
            }
            LogValidity::Invalid => panic!("the log of an actual run must be valid"),
        }
    }

    #[test]
    fn cursor_resumes_and_agrees_with_offline_validation() {
        let t = models::short();
        let db = models::figure1_database();
        let run = t.run(&db, &models::figure1_inputs()).unwrap();
        let log = run.log().clone();

        let mut cursor = LogAuditCursor::new();
        assert_eq!(cursor.steps(), 0);
        for (index, logged) in log.iter().enumerate() {
            cursor.push_step(&t, logged).unwrap();
            assert_eq!(cursor.steps(), index + 1);
            // Every prefix of a real run's log is itself a valid log, and the
            // resumable cursor must agree with the offline validator on it.
            let prefix = InstanceSequence::new(
                log.schema().clone(),
                log.iter().take(index + 1).cloned().collect(),
            )
            .unwrap();
            assert_eq!(
                cursor.validate(&t, &db).unwrap().is_valid(),
                validate_log(&t, &db, &prefix).unwrap().is_valid()
            );
        }

        // Pushing a fraudulent step (a delivery with no payment) flips the
        // verdict without rebuilding the earlier steps' conjuncts.
        let schema = short_log_schema();
        cursor
            .push_step(&t, &log_step(&schema, &[], &[], &["time"]))
            .unwrap();
        assert_eq!(cursor.validate(&t, &db).unwrap(), LogValidity::Invalid);
    }

    #[test]
    fn cursor_rejects_foreign_log_schemas() {
        let t = models::short();
        let other = Schema::from_pairs([("refund", 1)]).unwrap();
        let mut cursor = LogAuditCursor::new();
        assert!(matches!(
            cursor.push_step(&t, &Instance::empty(&other)),
            Err(VerifyError::Precondition { .. })
        ));
        assert_eq!(cursor.steps(), 0);
    }

    #[test]
    fn delivery_without_payment_is_flagged_as_fraud() {
        // A log in which `deliver(time)` appears at step 1 with no payment can
        // not be produced by `short`: delivery requires a current payment at
        // the listed price.
        let t = models::short();
        let db = models::figure1_database();
        let schema = short_log_schema();
        let log =
            InstanceSequence::new(schema.clone(), vec![log_step(&schema, &[], &[], &["time"])])
                .unwrap();
        assert_eq!(validate_log(&t, &db, &log).unwrap(), LogValidity::Invalid);
    }

    #[test]
    fn delivery_with_matching_payment_is_valid_even_with_partial_log() {
        // Step 1: (unlogged) order(time); step 2: pay + deliver appear in the
        // log.  The validator must invent the unlogged order input.
        let t = models::short();
        let db = models::figure1_database();
        let schema = short_log_schema();
        let log = InstanceSequence::new(
            schema.clone(),
            vec![
                log_step(&schema, &[("time", 855)], &[], &[]),
                log_step(&schema, &[], &[("time", 855)], &["time"]),
            ],
        )
        .unwrap();
        match validate_log(&t, &db, &log).unwrap() {
            LogValidity::Valid { witness_inputs } => {
                // the witness must have ordered `time` at step 1
                assert!(witness_inputs
                    .get(0)
                    .unwrap()
                    .holds("order", &Tuple::from_iter(["time"])));
                assert!(log_matches(&t, &db, &witness_inputs, &log).unwrap());
            }
            LogValidity::Invalid => panic!("expected a valid log"),
        }
    }

    #[test]
    fn billing_for_an_unlisted_product_is_invalid() {
        let t = models::short();
        let db = models::figure1_database();
        let schema = short_log_schema();
        // There is no price for "economist", so no run can bill it.
        let log = InstanceSequence::new(
            schema.clone(),
            vec![log_step(&schema, &[("economist", 100)], &[], &[])],
        )
        .unwrap();
        assert_eq!(validate_log(&t, &db, &log).unwrap(), LogValidity::Invalid);
    }

    #[test]
    fn billing_with_the_wrong_price_is_invalid() {
        let t = models::short();
        let db = models::figure1_database();
        let schema = short_log_schema();
        let log = InstanceSequence::new(
            schema.clone(),
            vec![log_step(&schema, &[("time", 99)], &[], &[])],
        )
        .unwrap();
        assert_eq!(validate_log(&t, &db, &log).unwrap(), LogValidity::Invalid);
    }

    #[test]
    fn missing_bill_for_an_order_is_detected() {
        // If pay(time) is logged at step 1, the same step's sendbill is
        // whatever the rules say; but a log claiming a delivery at step 1
        // without pay in the same step is invalid.
        let t = models::short();
        let db = models::figure1_database();
        let schema = short_log_schema();
        let log = InstanceSequence::new(
            schema.clone(),
            vec![
                log_step(&schema, &[("time", 855)], &[], &[]),
                log_step(&schema, &[], &[], &["time"]),
            ],
        )
        .unwrap();
        assert_eq!(validate_log(&t, &db, &log).unwrap(), LogValidity::Invalid);
    }

    #[test]
    fn empty_log_is_valid() {
        let t = models::short();
        let db = models::figure1_database();
        let log = InstanceSequence::empty(short_log_schema());
        assert!(validate_log(&t, &db, &log).unwrap().is_valid());
    }

    #[test]
    fn all_empty_steps_are_valid() {
        // An input sequence of empty instances produces empty logs.
        let t = models::short();
        let db = models::figure1_database();
        let schema = short_log_schema();
        let log = InstanceSequence::new(
            schema.clone(),
            vec![Instance::empty(&schema), Instance::empty(&schema)],
        )
        .unwrap();
        assert!(validate_log(&t, &db, &log).unwrap().is_valid());
    }

    #[test]
    fn foreign_log_schema_is_rejected() {
        let t = models::short();
        let db = models::figure1_database();
        let other = Schema::from_pairs([("refund", 1)]).unwrap();
        let log = InstanceSequence::empty(other);
        assert!(matches!(
            validate_log(&t, &db, &log),
            Err(VerifyError::Precondition { .. })
        ));
    }
}
