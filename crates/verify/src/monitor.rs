//! Online session monitoring: the decision procedures of §3–§4 as a
//! per-step runtime service.
//!
//! [`SessionMonitor`] implements
//! [`rtx_core::SessionObserver`]: attach one to a
//! [`Session`](rtx_core::Session) (under
//! [`MonitorPolicy::Observe`](rtx_core::MonitorPolicy::Observe) or
//! [`Enforce`](rtx_core::MonitorPolicy::Enforce)) and every step is checked
//! *as the run advances* instead of in a post-mortem:
//!
//! * **Input control (admission, Theorem 4.1)** — each registered
//!   [`SdiConstraint`] is compiled through
//!   [`SdiConstraint::compile_to_error_rules_named`] into a witness-carrying
//!   gate program, evaluated over the offered input and the monitor's state
//!   mirror *before* the step.  A non-empty gate derivation is a
//!   [`Violation`] naming the constraint and the offending input tuple;
//!   under `Enforce` the session rejects the input with
//!   [`CoreError::StepRejected`].
//! * **Incremental log validation (Theorem 3.1, operational form)** — the
//!   monitor shadow-evaluates the *spec* transducer's output program,
//!   restricted to logged relations, with a delta-aware
//!   [`StepEvaluator`]: per step it joins only against the state delta, so a
//!   length-N run costs N bounded steps, not an O(N²) re-scan.  Any
//!   divergence between the observed log slice and the spec's is a
//!   [`Violation`] with the offending relation and tuple.  The monitor also
//!   feeds a symbolic [`LogAuditCursor`]; [`SessionMonitor::audit`] runs the
//!   full Theorem 3.1 satisfiability check on demand.
//! * **Temporal properties (Theorem 3.3, per-step form)** — registered
//!   `T_past-input` sentences are checked with [`step_satisfies`] against
//!   each step's output and pre-step state.
//! * **Forbidden goals** — registered [`Goal`]s are matched against each
//!   step's output ([`Goal::satisfied_in`]); a match is a violation (e.g.
//!   "the run reached `oversold`").
//!
//! The monitor never perturbs the run: observation is read-only, and a
//! monitored run is bit-identical to an unmonitored one (property-tested in
//! the integration suite).

use crate::enforce::SdiConstraint;
use crate::log_validation::{LogAuditCursor, LogValidity};
use crate::reachability::Goal;
use crate::temporal::step_satisfies;
use crate::VerifyError;
use rtx_core::{CoreError, SessionObserver, SpocusTransducer, Violation, ViolationKind};
use rtx_datalog::{
    Atom, BodyLiteral, ChangeClass, CompiledProgram, Parallelism, Program, ResidentDb,
    ResidentView, Rule, StepEvaluator,
};
use rtx_logic::{Formula, Term};
use rtx_relational::{Instance, RelationName, Tuple};
use std::collections::BTreeSet;
use std::sync::Arc;

/// Maps a verifier-layer error onto the observer contract's error type.
fn core_err(e: VerifyError) -> CoreError {
    CoreError::Runtime {
        detail: format!("monitor: {e}"),
    }
}

/// One registered admission constraint, compiled into its witness-carrying
/// gate head.
#[derive(Debug, Clone)]
struct GateHead {
    /// The synthetic head relation the constraint's error rules derive.
    head: RelationName,
    /// The user-facing constraint name, reported on violations.
    name: String,
    /// The witness variables, in head-argument order.
    vars: Vec<String>,
    /// The antecedent atom instantiated to name the offending tuple
    /// (preferring an input-vocabulary atom).
    witness: Option<Atom>,
}

/// The compiled admission gate: every constraint's error rules in one
/// program, plus its prepared view of the shared catalog.
#[derive(Debug, Clone)]
struct Gate {
    program: CompiledProgram,
    heads: Vec<GateHead>,
    view: ResidentView,
}

/// An online monitor for one session — see the [module docs](self).
///
/// Construction is builder-style: [`SessionMonitor::new`] wires the spec and
/// the shared catalog, then [`with_constraint`](Self::with_constraint),
/// [`with_property`](Self::with_property) and
/// [`forbid_goal`](Self::forbid_goal) register checks.  Box it into
/// [`Session::attach_observer`](rtx_core::Session::attach_observer).
#[derive(Debug)]
pub struct SessionMonitor {
    spec: Arc<SpocusTransducer>,
    db: Arc<ResidentDb>,
    parallelism: Parallelism,
    /// Shadow evaluation of the spec's logged outputs.
    shadow_program: CompiledProgram,
    shadow: StepEvaluator,
    shadow_view: ResidentView,
    /// Admission gate (None until a constraint is registered).
    constraints: Vec<(String, SdiConstraint)>,
    gate: Option<Gate>,
    properties: Vec<(String, Formula)>,
    goals: Vec<(String, Goal)>,
    cursor: LogAuditCursor,
    /// Logged slices of observed steps not yet folded into the symbolic
    /// cursor.  Each entry is the step's input ∪ output restricted to the log
    /// schema — a handful of tuples.  Building the Theorem 3.1 membership
    /// formulas from them is pure symbol pushing, but the most
    /// allocation-heavy part of a step, so it is deferred off the per-step
    /// hot path and paid only when the cursor is actually consulted
    /// ([`SessionMonitor::audit`]).
    pending_log: Vec<Instance>,
    /// Cached catalog snapshot for FO property evaluation, keyed by the
    /// database version stamp.
    db_snapshot: Option<(u64, Instance)>,
    /// State mirror: the spec state before the next step, its predecessor,
    /// and the delta between them (same cumulation as the session itself).
    state: Instance,
    old_state: Instance,
    delta: Instance,
    steps: usize,
    /// Join derivations performed by the monitor's own evaluations so far —
    /// the work counter that pins the O(step) claim in tests.
    work: u64,
}

impl SessionMonitor {
    /// Creates a monitor validating sessions against `spec` over the shared
    /// catalog `db`.  The monitored session may run `spec` itself
    /// (self-validation) or a customization of it — the log comparison only
    /// covers the spec's logged output relations.
    pub fn new(spec: Arc<SpocusTransducer>, db: Arc<ResidentDb>) -> Result<Self, VerifyError> {
        let schema = spec.schema();
        let log = schema.log().clone();
        let shadow_rules: Vec<Rule> = spec
            .output_program()
            .rules()
            .iter()
            .filter(|rule| log.contains(&rule.head.relation))
            .cloned()
            .collect();
        // Seed the join order on the input relations: a step's input is
        // bounded by the step, not the run, so the shadow's volatile passes
        // drive their joins from it instead of scanning the grown state.
        let input_seeds: BTreeSet<RelationName> =
            schema.input().iter().map(|(n, _)| n.clone()).collect();
        let shadow_program =
            CompiledProgram::compile_seeded(&Program::new(shadow_rules), &input_seeds)
                .map_err(VerifyError::from)?;
        let input = schema.input().clone();
        let state = schema.state().clone();
        let classify = move |name: &RelationName| {
            if input.contains(name.clone()) {
                ChangeClass::Volatile
            } else if state.contains(name.clone()) {
                ChangeClass::GrowOnly
            } else {
                ChangeClass::Static
            }
        };
        let shadow = StepEvaluator::new(&shadow_program, classify).map_err(VerifyError::from)?;
        let shadow_view = db.view_for(&shadow_program);
        let empty_state = Instance::empty(schema.state());
        Ok(SessionMonitor {
            spec,
            db,
            parallelism: Parallelism::default(),
            shadow_program,
            shadow,
            shadow_view,
            constraints: Vec::new(),
            gate: None,
            properties: Vec::new(),
            goals: Vec::new(),
            cursor: LogAuditCursor::new(),
            pending_log: Vec::new(),
            db_snapshot: None,
            state: empty_state.clone(),
            old_state: empty_state.clone(),
            delta: empty_state,
            steps: 0,
            work: 0,
        })
    }

    /// Sets the [`Parallelism`] policy the monitor's evaluations run under.
    pub fn with_parallelism(mut self, parallelism: Parallelism) -> Self {
        self.parallelism = parallelism;
        self.shadow.set_parallelism(parallelism);
        self
    }

    /// Registers a named `T_sdi` admission constraint (Theorem 4.1): inputs
    /// matching its antecedent with no consequent escape raise a
    /// [`ViolationKind::Constraint`] violation at admission, *before* the
    /// run advances.  Fails if the constraint mentions a relation outside
    /// the spec's input ∪ state ∪ db vocabulary.
    pub fn with_constraint(
        mut self,
        name: impl Into<String>,
        constraint: SdiConstraint,
    ) -> Result<Self, VerifyError> {
        let name = name.into();
        self.check_constraint_vocabulary(&name, &constraint)?;
        self.constraints.push((name, constraint));
        self.rebuild_gate()?;
        Ok(self)
    }

    /// A fresh monitor for another session of the same spec.  The compiled
    /// shadow program, admission gate, properties and goals — everything
    /// construction paid for — are shared with `self`; all per-session run
    /// state (cursor, state mirror, step and work counters) starts empty.
    /// This is the cheap way to guard a fleet: build one fully configured
    /// prototype, then `fork` it once per session.
    pub fn fork(&self) -> SessionMonitor {
        let empty_state = Instance::empty(self.spec.schema().state());
        let mut shadow = self.shadow.clone();
        shadow.reset();
        SessionMonitor {
            spec: Arc::clone(&self.spec),
            db: Arc::clone(&self.db),
            parallelism: self.parallelism,
            shadow_program: self.shadow_program.clone(),
            shadow,
            shadow_view: self.shadow_view.clone(),
            constraints: self.constraints.clone(),
            gate: self.gate.clone(),
            properties: self.properties.clone(),
            goals: self.goals.clone(),
            cursor: LogAuditCursor::new(),
            pending_log: Vec::new(),
            db_snapshot: None,
            state: empty_state.clone(),
            old_state: empty_state.clone(),
            delta: empty_state,
            steps: 0,
            work: 0,
        }
    }

    /// Registers a named `T_past-input` temporal property (Theorem 3.3),
    /// checked per step with [`step_satisfies`].
    pub fn with_property(mut self, name: impl Into<String>, property: Formula) -> Self {
        self.properties.push((name.into(), property));
        self
    }

    /// Registers a named forbidden goal: a step whose output satisfies the
    /// goal raises a [`ViolationKind::Goal`] violation.
    pub fn forbid_goal(mut self, name: impl Into<String>, goal: Goal) -> Self {
        self.goals.push((name.into(), goal));
        self
    }

    /// Number of steps observed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Join derivations performed by the monitor's own evaluations so far.
    /// Incremental validation means the per-step increment is bounded by the
    /// step's own input/delta, independent of how long the run already is.
    pub fn work(&self) -> u64 {
        self.work
    }

    /// The symbolic Theorem 3.1 cursor over the log observed so far, after
    /// folding any steps whose formulas were deferred off the hot path.
    pub fn cursor(&mut self) -> Result<&LogAuditCursor, VerifyError> {
        self.flush_cursor()?;
        Ok(&self.cursor)
    }

    /// Runs the full Theorem 3.1 satisfiability audit over the log observed
    /// so far: is it producible by the *spec* at all?  `db` is the catalog
    /// instance to audit against (typically
    /// [`ResidentDb::snapshot`]).  This is the deep, on-demand check; the
    /// per-step shadow comparison is the cheap incremental one.
    pub fn audit(&mut self, db: &Instance) -> Result<LogValidity, VerifyError> {
        self.flush_cursor()?;
        self.cursor.validate(&self.spec, db)
    }

    /// Folds every pending logged step into the symbolic cursor.  Each step
    /// is symbolised exactly once, so a run audited after every step still
    /// pays O(step) formula building per step, never O(run²).
    fn flush_cursor(&mut self) -> Result<(), VerifyError> {
        for logged in std::mem::take(&mut self.pending_log) {
            self.cursor.push_step(&self.spec, &logged)?;
        }
        Ok(())
    }

    fn check_constraint_vocabulary(
        &self,
        name: &str,
        constraint: &SdiConstraint,
    ) -> Result<(), VerifyError> {
        let schema = self.spec.schema();
        let known = |relation: &RelationName| {
            schema.input().contains(relation.clone())
                || schema.state().contains(relation.clone())
                || schema.db().contains(relation.clone())
        };
        let mut mentioned: BTreeSet<RelationName> = BTreeSet::new();
        for lit in &constraint.antecedent {
            match lit {
                BodyLiteral::Positive(a) | BodyLiteral::Negative(a) => {
                    mentioned.insert(a.relation.clone());
                }
                BodyLiteral::NotEqual(..) => {}
            }
        }
        for (relation, _arity) in constraint.consequent.relations()? {
            mentioned.insert(relation);
        }
        for relation in mentioned {
            if !known(&relation) {
                return Err(VerifyError::UnsupportedProperty {
                    detail: format!(
                        "constraint `{name}` mentions `{relation}`, which is not an input, state or database relation of spec `{}`",
                        self.spec.name()
                    ),
                });
            }
        }
        Ok(())
    }

    fn rebuild_gate(&mut self) -> Result<(), VerifyError> {
        let input_schema = self.spec.schema().input().clone();
        let mut rules = Vec::new();
        let mut heads = Vec::new();
        for (index, (name, constraint)) in self.constraints.iter().enumerate() {
            // '@' keeps the synthetic head out of the user-definable name
            // space (the rule parser only accepts word characters and '-').
            let head = format!("viol@{index}");
            rules.extend(constraint.compile_to_error_rules_named(&head)?);
            let witness = constraint
                .antecedent
                .iter()
                .filter_map(|lit| match lit {
                    BodyLiteral::Positive(atom) => Some(atom),
                    _ => None,
                })
                .find(|atom| input_schema.contains(atom.relation.clone()))
                .or_else(|| {
                    constraint.antecedent.iter().find_map(|lit| match lit {
                        BodyLiteral::Positive(atom) => Some(atom),
                        _ => None,
                    })
                })
                .cloned();
            heads.push(GateHead {
                head: RelationName::new(head),
                name: name.clone(),
                vars: constraint.witness_variables(),
                witness,
            });
        }
        let program = CompiledProgram::compile(&Program::new(rules)).map_err(VerifyError::from)?;
        let view = self.db.view_for(&program);
        self.gate = Some(Gate {
            program,
            heads,
            view,
        });
        Ok(())
    }

    /// The catalog snapshot for FO evaluation, re-taken only when the
    /// catalog's version stamp moved.
    fn snapshot(&mut self) -> &Instance {
        let version = self.db.version();
        if self.db_snapshot.as_ref().map(|(v, _)| *v) != Some(version) {
            self.db_snapshot = Some((version, self.db.snapshot()));
        }
        &self.db_snapshot.as_ref().expect("just filled").1
    }

    /// Cumulates the state mirror after an admitted step, exactly as the
    /// session's own stepper does (`past-R := past-R ∪ R`).
    fn cumulate(&mut self, input: &Instance) -> Result<(), CoreError> {
        let mut next = self.state.clone();
        let mut delta = Instance::empty(self.spec.schema().state());
        for (name, rel) in input.iter() {
            let past = name.past();
            if rel.is_empty() || next.get(&past).is_none() {
                continue;
            }
            let prev = self.state.get(&past).expect("state mirrors next");
            if prev.is_empty() {
                delta.absorb_relation(past.clone(), rel)?;
            } else {
                for tuple in rel.iter() {
                    if !prev.contains(tuple) {
                        delta.insert(past.clone(), tuple.clone())?;
                    }
                }
            }
            next.absorb_relation(past, rel)?;
        }
        self.old_state = std::mem::replace(&mut self.state, next);
        self.delta = delta;
        Ok(())
    }
}

/// Instantiates `atom` under the witness binding `vars ↦ row`, producing the
/// concrete offending tuple to report.  `None` if the atom uses a variable
/// outside the witness (cannot happen for `T_sdi` antecedents, where every
/// variable occurs positively).
fn instantiate_witness(atom: &Atom, vars: &[String], row: &Tuple) -> Option<(RelationName, Tuple)> {
    let mut values = Vec::with_capacity(atom.args.len());
    for arg in &atom.args {
        match arg {
            Term::Var(v) => {
                let pos = vars.iter().position(|w| w == v)?;
                values.push(*row.values().get(pos)?);
            }
            Term::Const(c) => values.push(*c),
        }
    }
    Some((atom.relation.clone(), Tuple::new(values)))
}

impl SessionObserver for SessionMonitor {
    fn admit(&mut self, step: usize, input: &Instance) -> Result<Vec<Violation>, CoreError> {
        let Some(gate) = self.gate.as_mut() else {
            return Ok(Vec::new());
        };
        if !self.db.view_is_current(&gate.view) {
            gate.view = self.db.view_for(&gate.program);
        }
        let (derived, stats) = gate
            .program
            .evaluate_with_view_par(&[input, &self.state], Some(&gate.view), self.parallelism)
            .map_err(CoreError::Datalog)?;
        self.work += stats.tuples_derived;
        let mut violations = Vec::new();
        for head in &gate.heads {
            let Some(rows) = derived.get(&head.head) else {
                continue;
            };
            for row in rows.iter() {
                let (relation, tuple) = head
                    .witness
                    .as_ref()
                    .and_then(|atom| instantiate_witness(atom, &head.vars, row))
                    .map(|(r, t)| (Some(r), Some(t)))
                    .unwrap_or((None, None));
                violations.push(Violation {
                    step,
                    kind: ViolationKind::Constraint,
                    source: head.name.clone(),
                    relation,
                    tuple,
                    detail: "input matches the constraint antecedent with no consequent escape"
                        .into(),
                });
            }
        }
        Ok(violations)
    }

    fn observe(
        &mut self,
        step: usize,
        input: &Instance,
        output: &Instance,
    ) -> Result<Vec<Violation>, CoreError> {
        let mut violations = Vec::new();

        // Incremental shadow validation of the logged output relations: the
        // spec's own per-step derivation, delta-joined against the state
        // mirror, compared tuple-for-tuple with the observed output.
        if !self.db.view_is_current(&self.shadow_view) {
            let stale = self.db.stale_relations(&self.shadow_view);
            self.shadow_view = self.db.view_for(&self.shadow_program);
            self.shadow.invalidate_relations(&stale);
        }
        let (expected, stats) = self.shadow.step(
            &self.shadow_program,
            input,
            &self.state,
            &self.old_state,
            &self.delta,
            &self.shadow_view,
        )?;
        self.work += stats.tuples_derived;
        for (relation, _arity) in self.shadow_program.out_schema().iter() {
            let expected_rel = expected.get(relation);
            let observed_rel = output.get(relation);
            // Fast path: identical tuple sets — the overwhelmingly common
            // case on honest runs — settled by one set comparison instead of
            // per-tuple membership probes in both directions.
            let agree = match (expected_rel, observed_rel) {
                (None, None) => true,
                (Some(e), None) => e.is_empty(),
                (None, Some(o)) => o.is_empty(),
                (Some(e), Some(o)) => e == o,
            };
            if agree {
                continue;
            }
            for tuple in observed_rel.map(|r| r.iter()).into_iter().flatten() {
                if !expected_rel.is_some_and(|r| r.contains(tuple)) {
                    violations.push(Violation {
                        step,
                        kind: ViolationKind::Log,
                        source: relation.as_str().to_string(),
                        relation: Some(relation.clone()),
                        tuple: Some(tuple.clone()),
                        detail: "logged output tuple is not derivable from the spec at this step"
                            .into(),
                    });
                }
            }
            for tuple in expected_rel.map(|r| r.iter()).into_iter().flatten() {
                if !observed_rel.is_some_and(|r| r.contains(tuple)) {
                    violations.push(Violation {
                        step,
                        kind: ViolationKind::Log,
                        source: relation.as_str().to_string(),
                        relation: Some(relation.clone()),
                        tuple: Some(tuple.clone()),
                        detail: "spec-mandated output tuple is missing from the log".into(),
                    });
                }
            }
        }

        // Buffer the step's logged slice for the symbolic Theorem 3.1
        // cursor.  Formula building happens on demand (`audit`/`cursor`);
        // here only the few logged tuples are copied.
        let log_names = self.spec.schema().log();
        let logged = input
            .restrict_to_set(log_names)
            .union(&output.restrict_to_set(log_names))
            .map_err(|e| core_err(VerifyError::from(e)))?;
        self.pending_log.push(logged);

        // Per-step temporal properties (Theorem 3.3) over output, pre-step
        // state and the catalog snapshot.
        if !self.properties.is_empty() {
            let state = self.state.clone();
            let db = self.snapshot().clone();
            for (name, property) in &self.properties {
                if !step_satisfies(property, output, &state, &db).map_err(core_err)? {
                    violations.push(Violation {
                        step,
                        kind: ViolationKind::Temporal,
                        source: name.clone(),
                        relation: None,
                        tuple: None,
                        detail: "temporal property does not hold at this step".into(),
                    });
                }
            }
        }

        // Forbidden goals over the step's output.
        for (name, goal) in &self.goals {
            if goal.satisfied_in(output) {
                violations.push(Violation {
                    step,
                    kind: ViolationKind::Goal,
                    source: name.clone(),
                    relation: None,
                    tuple: None,
                    detail: "forbidden goal is satisfied by the step's output".into(),
                });
            }
        }

        self.cumulate(input)?;
        self.steps += 1;
        Ok(violations)
    }
}
