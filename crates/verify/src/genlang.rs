//! Generated languages of propositional transducers (§3.1).
//!
//! For a propositional Spocus transducer `T`, `Gen(T)` — the set of output
//! words produced by runs that emit at most one proposition per step — is a
//! prefix-closed regular language accepted by an automaton whose only cycles
//! are self loops.  This module constructs that automaton from the
//! transducer's (finite, inflationary) cumulative-state transition system and
//! checks the characterisation.

use crate::VerifyError;
use rtx_automata::{Dfa, Nfa};
use rtx_core::PropositionalTransducer;
use std::collections::BTreeSet;

/// Builds a DFA accepting `Gen(T)` for a propositional Spocus transducer.
///
/// States of the underlying NFA are the reachable cumulative states of the
/// transducer; silent steps (inputs that produce no output) are ε-closed
/// away; every state is accepting because `Gen(T)` is prefix-closed by
/// construction.
pub fn gen_language_dfa(transducer: &PropositionalTransducer) -> Result<Dfa, VerifyError> {
    let (states, labelled, silent) = transducer.transition_system()?;
    let n = states.len();

    // ε-closure over silent transitions.
    let mut closure: Vec<BTreeSet<usize>> = (0..n).map(|i| BTreeSet::from([i])).collect();
    loop {
        let mut changed = false;
        for reachable in closure.iter_mut() {
            let mut additions = BTreeSet::new();
            for &j in reachable.iter() {
                for &k in &silent[j] {
                    if !reachable.contains(&k) {
                        additions.insert(k);
                    }
                }
            }
            if !additions.is_empty() {
                reachable.extend(additions);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }

    // NFA: a labelled transition u --o--> v contributes edges from every state
    // whose closure contains u, into the closure of v.
    let mut nfa = Nfa::new(
        n.max(1),
        closure[0].iter().copied().collect(),
        (0..n).collect(),
    );
    for u in 0..n {
        for &cu in &closure[u] {
            for (symbol, targets) in &labelled[cu] {
                for &v in targets {
                    for &cv in &closure[v] {
                        nfa.add_transition(u, symbol.clone(), cv);
                    }
                    nfa.add_transition(u, symbol.clone(), v);
                }
            }
        }
    }
    Ok(nfa.determinize())
}

/// Checks the paper's characterisation on a concrete propositional
/// transducer: the generated language is prefix-closed and its DFA has only
/// self-loop cycles, and the DFA agrees with direct enumeration of `Gen(T)`
/// up to `max_len` steps.
pub fn check_characterisation(
    transducer: &PropositionalTransducer,
    max_len: usize,
) -> Result<bool, VerifyError> {
    let dfa = gen_language_dfa(transducer)?;
    if !dfa.is_prefix_closed() || !dfa.has_only_self_loop_cycles() {
        return Ok(false);
    }
    let enumerated = transducer.generate_words(max_len)?;
    // every enumerated word is accepted
    for word in &enumerated {
        if !dfa.accepts(word) {
            return Ok(false);
        }
    }
    // every accepted word of length ≤ max_len is enumerated
    for word in dfa.words_up_to(max_len) {
        if !enumerated.contains(&word) {
            return Ok(false);
        }
    }
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_core::models;

    #[test]
    fn abstar_c_language_matches_the_paper() {
        let t = models::abstar_c();
        let dfa = gen_language_dfa(&t).unwrap();
        let w = |parts: &[&str]| parts.iter().map(|s| s.to_string()).collect::<Vec<_>>();
        assert!(dfa.accepts(&w(&[])));
        assert!(dfa.accepts(&w(&["a"])));
        assert!(dfa.accepts(&w(&["a", "b", "b", "c"])));
        assert!(!dfa.accepts(&w(&["b"])));
        assert!(!dfa.accepts(&w(&["a", "c", "b"])));
        assert!(!dfa.accepts(&w(&["a", "a"])));
        assert!(dfa.is_prefix_closed());
        assert!(dfa.has_only_self_loop_cycles());
    }

    #[test]
    fn characterisation_holds_for_the_running_example() {
        let t = models::abstar_c();
        assert!(check_characterisation(&t, 4).unwrap());
    }
}
