//! Goal reachability (Theorem 3.2).
//!
//! A *goal* is a sentence `∃x̄ (A1 ∧ … ∧ Ak)` where each `Ai` is a positive or
//! negative literal over an output relation.  Goal reachability asks whether
//! some run of the transducer satisfies the goal in its last output — the
//! "sanity check" of §2.1 that a business model can actually deliver
//! something.
//!
//! The key structural fact (proof of Theorem 3.2) is the **two-step
//! collapse**: because outputs depend only on the current input, the database
//! and the cumulated state, the last output of any run equals the last output
//! of a two-step run whose first input is the union of all earlier inputs.
//! The reduction therefore only replicates the input schema twice.

use crate::reduction::{fix_database, output_atom_formula, witness_inputs};
use crate::VerifyError;
use rtx_core::{RelationalTransducer, SpocusTransducer};
use rtx_datalog::Atom;
use rtx_logic::{solve_bs, BsOutcome, BsProblem, Formula};
use rtx_relational::{Instance, InstanceSequence, Value};
use std::collections::BTreeSet;

/// One literal of a goal: a (possibly negated) atom over an output relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoalLiteral {
    /// True for a positive literal.
    pub positive: bool,
    /// The output atom (its variables are implicitly existentially
    /// quantified across the whole goal).
    pub atom: Atom,
}

impl GoalLiteral {
    /// A positive goal literal.
    pub fn pos(atom: Atom) -> Self {
        GoalLiteral {
            positive: true,
            atom,
        }
    }

    /// A negative goal literal.
    pub fn neg(atom: Atom) -> Self {
        GoalLiteral {
            positive: false,
            atom,
        }
    }
}

/// A goal `∃x̄ (A1 ∧ … ∧ Ak)` over the output relations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Goal {
    literals: Vec<GoalLiteral>,
}

impl Goal {
    /// Creates a goal from literals.
    pub fn new(literals: Vec<GoalLiteral>) -> Self {
        Goal { literals }
    }

    /// Convenience: a goal consisting of a single positive atom.
    pub fn atom(atom: Atom) -> Self {
        Goal::new(vec![GoalLiteral::pos(atom)])
    }

    /// The literals of the goal.
    pub fn literals(&self) -> &[GoalLiteral] {
        &self.literals
    }

    /// The goal's (implicitly existential) variables.
    pub fn variables(&self) -> BTreeSet<String> {
        self.literals
            .iter()
            .flat_map(|l| l.atom.variables())
            .collect()
    }

    /// Evaluates the goal against a concrete output instance (used to
    /// cross-check witnesses and by the brute-force reference search).
    pub fn satisfied_in(&self, output: &Instance) -> bool {
        // Enumerate assignments of the goal variables over the active domain
        // of the output plus the constants appearing in the goal.
        let mut domain: Vec<Value> = rtx_relational::active_domain(output).into_iter().collect();
        for lit in &self.literals {
            for term in &lit.atom.args {
                if let rtx_logic::Term::Const(v) = term {
                    if !domain.contains(v) {
                        domain.push(*v);
                    }
                }
            }
        }
        let vars: Vec<String> = self.variables().into_iter().collect();
        if vars.is_empty() {
            return self.check_assignment(output, &vars, &[]);
        }
        if domain.is_empty() {
            return false;
        }
        let mut indexes = vec![0usize; vars.len()];
        loop {
            let assignment: Vec<Value> = indexes.iter().map(|&i| domain[i]).collect();
            if self.check_assignment(output, &vars, &assignment) {
                return true;
            }
            // advance the odometer
            let mut pos = 0;
            loop {
                if pos == indexes.len() {
                    return false;
                }
                indexes[pos] += 1;
                if indexes[pos] < domain.len() {
                    break;
                }
                indexes[pos] = 0;
                pos += 1;
            }
        }
    }

    fn check_assignment(&self, output: &Instance, vars: &[String], values: &[Value]) -> bool {
        for lit in &self.literals {
            let tuple: Vec<Value> = lit
                .atom
                .args
                .iter()
                .map(|t| match t {
                    rtx_logic::Term::Const(v) => *v,
                    rtx_logic::Term::Var(name) => {
                        let index = vars.iter().position(|v| v == name).expect("goal variable");
                        values[index]
                    }
                })
                .collect();
            let holds = output.holds(
                lit.atom.relation.clone(),
                &rtx_relational::Tuple::new(tuple),
            );
            if holds != lit.positive {
                return false;
            }
        }
        true
    }
}

/// A witness for a reachable goal: a two-step input sequence whose run's last
/// output satisfies the goal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GoalWitness {
    /// The witness input sequence (length 2).
    pub inputs: InstanceSequence,
}

/// Decides goal reachability (Theorem 3.2): is there a run of `transducer` on
/// `db` whose last output satisfies `goal`?
pub fn is_goal_reachable(
    transducer: &SpocusTransducer,
    db: &Instance,
    goal: &Goal,
) -> Result<Option<GoalWitness>, VerifyError> {
    let schema = transducer.schema();
    for literal in goal.literals() {
        if !schema.output().contains(literal.atom.relation.clone()) {
            return Err(VerifyError::UnsupportedProperty {
                detail: format!(
                    "goal literal over `{}` is not an output relation",
                    literal.atom.relation
                ),
            });
        }
    }

    // Two-step collapse: express the goal against the outputs of step 2.
    let mut conjuncts = Vec::new();
    for literal in goal.literals() {
        let formula =
            output_atom_formula(transducer, &literal.atom.relation, &literal.atom.args, 2)?;
        conjuncts.push(if literal.positive {
            formula
        } else {
            Formula::not(formula)
        });
    }
    let sentence = Formula::exists(
        goal.variables().into_iter().collect::<Vec<_>>(),
        Formula::and(conjuncts),
    );

    let mut problem = BsProblem::new(sentence);
    fix_database(&mut problem, db);

    match solve_bs(&problem)? {
        BsOutcome::Satisfiable(model) => {
            let inputs = witness_inputs(transducer, &model, 2)?;
            Ok(Some(GoalWitness { inputs }))
        }
        BsOutcome::Unsatisfiable => Ok(None),
    }
}

/// Brute-force reference implementation: searches over all input sequences of
/// length at most `max_steps` whose tuples are drawn from `domain`, and
/// reports whether some run's last output satisfies the goal.
///
/// Exponential; used by the tests to validate the two-step collapse on small
/// instances.
pub fn is_goal_reachable_bruteforce(
    transducer: &SpocusTransducer,
    db: &Instance,
    goal: &Goal,
    domain: &[Value],
    max_steps: usize,
) -> Result<bool, VerifyError> {
    let schema = transducer.schema().input().clone();
    // All tuples over the domain for each input relation.
    let mut all_facts: Vec<(rtx_relational::RelationName, rtx_relational::Tuple)> = Vec::new();
    for (name, arity) in schema.iter() {
        let mut tuples: Vec<Vec<Value>> = vec![vec![]];
        for _ in 0..arity {
            let mut next = Vec::new();
            for t in &tuples {
                for v in domain {
                    let mut e = t.clone();
                    e.push(*v);
                    next.push(e);
                }
            }
            tuples = next;
        }
        for t in tuples {
            all_facts.push((name.clone(), rtx_relational::Tuple::new(t)));
        }
    }
    let fact_count = all_facts.len();
    if fact_count > 12 {
        return Err(VerifyError::UnsupportedProperty {
            detail: format!("brute force limited to 12 candidate facts, got {fact_count}"),
        });
    }

    // Enumerate input sequences: each step is a subset of all_facts.
    let step_choices: Vec<u32> = (0..(1u32 << fact_count)).collect();
    let mut stack: Vec<Vec<u32>> = vec![vec![]];
    while let Some(prefix) = stack.pop() {
        if !prefix.is_empty() {
            let instances: Vec<Instance> = prefix
                .iter()
                .map(|&bits| {
                    let mut inst = Instance::empty(&schema);
                    for (i, (name, tuple)) in all_facts.iter().enumerate() {
                        if bits & (1 << i) != 0 {
                            inst.insert(name.clone(), tuple.clone()).expect("schema ok");
                        }
                    }
                    inst
                })
                .collect();
            let inputs = InstanceSequence::new(schema.clone(), instances)?;
            let run = transducer.run(db, &inputs)?;
            if let Some(last) = run.outputs().last() {
                if goal.satisfied_in(last) {
                    return Ok(true);
                }
            }
        }
        if prefix.len() < max_steps {
            for &bits in &step_choices {
                let mut next = prefix.clone();
                next.push(bits);
                stack.push(next);
            }
        }
    }
    Ok(false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_core::models;
    use rtx_core::RelationalTransducer;
    use rtx_logic::Term;

    fn deliver_goal(product: &str) -> Goal {
        Goal::atom(Atom::new("deliver", [Term::constant(Value::str(product))]))
    }

    #[test]
    fn deliver_is_reachable_for_listed_products() {
        let t = models::short();
        let db = models::figure1_database();
        let witness = is_goal_reachable(&t, &db, &deliver_goal("time"))
            .unwrap()
            .expect("deliver(time) must be reachable");
        // The witness really does deliver time at its last step.
        let run = t.run(&db, &witness.inputs).unwrap();
        assert!(deliver_goal("time").satisfied_in(run.outputs().last().unwrap()));
    }

    #[test]
    fn deliver_is_unreachable_for_unlisted_products() {
        // §2.1: deliver(x) is achievable exactly when ∃y price(x, y).
        let t = models::short();
        let db = models::figure1_database();
        assert!(is_goal_reachable(&t, &db, &deliver_goal("economist"))
            .unwrap()
            .is_none());
    }

    #[test]
    fn generic_delivery_goal_uses_variables() {
        let t = models::short();
        let db = models::figure1_database();
        let goal = Goal::new(vec![
            GoalLiteral::pos(Atom::new("deliver", [Term::var("x")])),
            GoalLiteral::pos(Atom::new("sendbill", [Term::var("y"), Term::var("z")])),
        ]);
        let witness = is_goal_reachable(&t, &db, &goal).unwrap();
        assert!(witness.is_some());
    }

    #[test]
    fn negative_literals_are_supported() {
        // Reach a state where time is delivered but newsweek is not billed.
        let t = models::short();
        let db = models::figure1_database();
        let goal = Goal::new(vec![
            GoalLiteral::pos(Atom::new("deliver", [Term::constant(Value::str("time"))])),
            GoalLiteral::neg(Atom::new(
                "sendbill",
                [
                    Term::constant(Value::str("newsweek")),
                    Term::constant(Value::int(845)),
                ],
            )),
        ]);
        assert!(is_goal_reachable(&t, &db, &goal).unwrap().is_some());
    }

    #[test]
    fn contradictory_goals_are_unreachable() {
        let t = models::short();
        let db = models::figure1_database();
        let goal = Goal::new(vec![
            GoalLiteral::pos(Atom::new("deliver", [Term::constant(Value::str("time"))])),
            GoalLiteral::neg(Atom::new("deliver", [Term::constant(Value::str("time"))])),
        ]);
        assert!(is_goal_reachable(&t, &db, &goal).unwrap().is_none());
    }

    #[test]
    fn goals_must_be_over_output_relations() {
        let t = models::short();
        let db = models::figure1_database();
        let goal = Goal::atom(Atom::new("order", [Term::var("x")]));
        assert!(matches!(
            is_goal_reachable(&t, &db, &goal),
            Err(VerifyError::UnsupportedProperty { .. })
        ));
    }

    #[test]
    fn two_step_collapse_agrees_with_brute_force() {
        // A tiny catalog keeps the brute force tractable.
        let t = models::short();
        let mut db = Instance::empty(&models::catalog_schema());
        db.insert(
            "price",
            rtx_relational::Tuple::new(vec![Value::str("time"), Value::int(855)]),
        )
        .unwrap();
        let domain = vec![Value::str("time"), Value::int(855)];

        for goal in [
            deliver_goal("time"),
            Goal::atom(Atom::new(
                "sendbill",
                [
                    Term::constant(Value::str("time")),
                    Term::constant(Value::int(855)),
                ],
            )),
            deliver_goal("economist"),
        ] {
            let symbolic = is_goal_reachable(&t, &db, &goal).unwrap().is_some();
            // Two brute-force steps suffice here because the goals only need
            // an order followed by a payment; longer horizons multiply the
            // search space by 64 per extra step.
            let brute = is_goal_reachable_bruteforce(&t, &db, &goal, &domain, 2).unwrap();
            assert_eq!(symbolic, brute, "goal {goal:?}");
        }
    }

    #[test]
    fn goal_satisfaction_check_on_concrete_outputs() {
        let t = models::short();
        let db = models::figure1_database();
        let run = t.run(&db, &models::figure1_inputs()).unwrap();
        let step2 = run.outputs().get(1).unwrap();
        assert!(deliver_goal("time").satisfied_in(step2));
        assert!(!deliver_goal("newsweek").satisfied_in(step2));
        // propositional goal over an empty relation
        let goal = Goal::new(vec![GoalLiteral::neg(Atom::new(
            "deliver",
            [Term::constant(Value::str("newsweek"))],
        ))]);
        assert!(goal.satisfied_in(step2));
    }
}
