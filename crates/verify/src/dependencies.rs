//! Functional and inclusion dependencies, and the reduction gadgets of
//! Proposition 3.1 and Theorem 3.4.
//!
//! The paper's undecidability results reduce the implication problem for
//! functional dependencies (FDs) and inclusion dependencies (IncDs) — which
//! is undecidable [CV85, Mit83] — to log validity for Spocus transducers
//! *extended with projections in state rules* (Proposition 3.1) and to
//! containment of genuine Spocus transducers (Theorem 3.4).  These are
//! negative results, so there is nothing to decide here; instead this module
//! provides executable *witnesses* of the reductions:
//!
//! * FD/IncD satisfaction checks on concrete relations;
//! * the Proposition 3.1 gadget: an extended (non-Spocus) transducer whose
//!   log `(∅, {violG})` is reachable exactly when the given instance
//!   satisfies `F` but violates `G`.

use crate::VerifyError;
use rtx_core::{CoreError, RelationalTransducer, TransducerSchema};
use rtx_relational::{Instance, InstanceSequence, Relation, RelationName, Schema, Tuple};

/// A functional dependency `X → j` over the columns of a relation (0-based
/// column indexes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionalDependency {
    /// Determinant columns.
    pub lhs: Vec<usize>,
    /// Determined column.
    pub rhs: usize,
}

impl FunctionalDependency {
    /// True if the relation satisfies the dependency.
    pub fn satisfied_by(&self, relation: &Relation) -> bool {
        for u in relation.iter() {
            for v in relation.iter() {
                let agree_lhs = self
                    .lhs
                    .iter()
                    .all(|&i| u.get(i).is_some() && u.get(i) == v.get(i));
                if agree_lhs && u.get(self.rhs) != v.get(self.rhs) {
                    return false;
                }
            }
        }
        true
    }
}

/// An inclusion dependency `R[i1…im] ⊆ R[j1…jm]` over a single relation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InclusionDependency {
    /// Source columns.
    pub lhs: Vec<usize>,
    /// Target columns.
    pub rhs: Vec<usize>,
}

impl InclusionDependency {
    /// True if the relation satisfies the dependency.
    pub fn satisfied_by(&self, relation: &Relation) -> bool {
        let targets: Vec<Tuple> = relation
            .iter()
            .filter_map(|t| t.project(&self.rhs))
            .collect();
        relation.iter().all(|t| match t.project(&self.lhs) {
            Some(p) => targets.contains(&p),
            None => false,
        })
    }
}

/// A set of FDs and IncDs over one relation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DependencySet {
    /// The functional dependencies.
    pub fds: Vec<FunctionalDependency>,
    /// The inclusion dependencies.
    pub inds: Vec<InclusionDependency>,
}

impl DependencySet {
    /// True if the relation satisfies every dependency of the set.
    pub fn satisfied_by(&self, relation: &Relation) -> bool {
        self.fds.iter().all(|fd| fd.satisfied_by(relation))
            && self.inds.iter().all(|ind| ind.satisfied_by(relation))
    }
}

/// The Proposition 3.1 gadget: a relational transducer with *projection*
/// state rules (hence not Spocus) whose outputs `violF` / `violG` report, one
/// step after the input of an instance of `R`, whether that instance violates
/// the dependency sets `F` and `G`.
///
/// The log consists of `violF` and `violG` only, so the log `(∅, {violG})` is
/// valid exactly when some instance satisfies `F` and violates `G` — i.e.
/// exactly when `F ⊭ G`.  Since FD+IncD implication is undecidable, so is log
/// validity for this extended transducer class.
#[derive(Debug, Clone)]
pub struct DependencyGadget {
    schema: TransducerSchema,
    arity: usize,
    f: DependencySet,
    g: DependencySet,
}

impl DependencyGadget {
    /// Builds the gadget for a relation of the given arity and dependency
    /// sets `F` and `G`.
    pub fn new(arity: usize, f: DependencySet, g: DependencySet) -> Result<Self, VerifyError> {
        let input = Schema::from_pairs([("R", arity)]).map_err(CoreError::from)?;
        // state: past-R plus one projection relation per distinct IncD target
        let mut state_pairs: Vec<(String, usize)> = vec![("past-R".into(), arity)];
        for ind in f.inds.iter().chain(g.inds.iter()) {
            let name = projection_name(&ind.rhs);
            if !state_pairs.iter().any(|(n, _)| n == &name) {
                state_pairs.push((name, ind.rhs.len()));
            }
        }
        let state = Schema::from_pairs(state_pairs).map_err(CoreError::from)?;
        let output = Schema::from_pairs([("violF", 0), ("violG", 0)]).map_err(CoreError::from)?;
        let schema = TransducerSchema::new(
            input,
            state,
            output,
            Schema::empty(),
            [RelationName::new("violF"), RelationName::new("violG")],
        )?;
        Ok(DependencyGadget {
            schema,
            arity,
            f,
            g,
        })
    }

    /// Runs the gadget on the two-step input sequence `(I, ∅)` for a concrete
    /// instance `I` of `R` and returns the resulting log.
    pub fn audit(&self, instance: &Relation) -> Result<InstanceSequence, VerifyError> {
        let mut step1 = Instance::empty(self.schema.input());
        for t in instance.iter() {
            step1.insert("R", t.clone()).map_err(CoreError::from)?;
        }
        let step2 = Instance::empty(self.schema.input());
        let inputs = InstanceSequence::new(self.schema.input().clone(), vec![step1, step2])
            .map_err(CoreError::from)?;
        let run = self.run(&Instance::empty(&Schema::empty()), &inputs)?;
        Ok(run.log().clone())
    }

    /// True if the log produced by [`DependencyGadget::audit`] on `instance`
    /// is the Proposition 3.1 witness `(∅, {violG})`: the instance satisfies
    /// `F` and violates `G`.
    pub fn witnesses_non_implication(&self, instance: &Relation) -> Result<bool, VerifyError> {
        let log = self.audit(instance)?;
        if log.len() != 2 {
            return Ok(false);
        }
        let first = log.get(0).expect("length checked");
        let second = log.get(1).expect("length checked");
        Ok(first.is_empty()
            && second.relation("violG").is_some_and(Relation::holds)
            && !second.relation("violF").is_some_and(Relation::holds))
    }
}

fn projection_name(columns: &[usize]) -> String {
    let suffix: Vec<String> = columns.iter().map(|c| c.to_string()).collect();
    format!("past-Rproj{}", suffix.join("-"))
}

impl RelationalTransducer for DependencyGadget {
    fn schema(&self) -> &TransducerSchema {
        &self.schema
    }

    /// Cumulative state *with projections*: `past-R` cumulates `R` and each
    /// `past-Rproj…` cumulates the corresponding projection of `R` — the
    /// single non-Spocus ingredient of the reduction.
    fn state_step(
        &self,
        input: &Instance,
        previous_state: &Instance,
        _db: &Instance,
    ) -> Result<Instance, CoreError> {
        let mut next = previous_state.clone();
        if let Some(r) = input.relation("R") {
            for tuple in r.iter() {
                next.insert("past-R", tuple.clone())?;
                for ind in self.f.inds.iter().chain(self.g.inds.iter()) {
                    let name = projection_name(&ind.rhs);
                    if let Some(projected) = tuple.project(&ind.rhs) {
                        next.insert(name.as_str(), projected)?;
                    }
                }
            }
        }
        Ok(next)
    }

    /// Outputs `violF` / `violG` when the accumulated `past-R` violates the
    /// respective dependency set (checked against the stored projections for
    /// inclusion dependencies, as in the paper's construction).
    fn output_step(
        &self,
        _input: &Instance,
        previous_state: &Instance,
        _db: &Instance,
    ) -> Result<Instance, CoreError> {
        let mut output = Instance::empty(self.schema.output());
        let stored = previous_state
            .relation("past-R")
            .cloned()
            .unwrap_or_else(|| Relation::empty(self.arity));
        for (set, flag) in [(&self.f, "violF"), (&self.g, "violG")] {
            let mut violated = set.fds.iter().any(|fd| !fd.satisfied_by(&stored));
            for ind in &set.inds {
                // check against the stored projection relation, mirroring the
                // rule violX :- past-R(x̄), ¬past-Rproj(x̄[lhs])
                let projections = previous_state
                    .relation(projection_name(&ind.rhs).as_str())
                    .cloned()
                    .unwrap_or_else(|| Relation::empty(ind.rhs.len()));
                for tuple in stored.iter() {
                    match tuple.project(&ind.lhs) {
                        Some(p) if projections.contains(&p) => {}
                        _ => {
                            violated = true;
                            break;
                        }
                    }
                }
            }
            if violated {
                output.insert(flag, Tuple::unit())?;
            }
        }
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rtx_relational::Value;

    fn relation(rows: &[(&str, &str)]) -> Relation {
        Relation::from_tuples(
            2,
            rows.iter()
                .map(|(a, b)| Tuple::new(vec![Value::str(*a), Value::str(*b)])),
        )
        .unwrap()
    }

    fn paper_example() -> (DependencySet, DependencySet) {
        // F = { 1 → 2 } (column 0 determines column 1),
        // G = { R[1] ⊆ R[2] } (column 0 values included in column 1 values).
        let f = DependencySet {
            fds: vec![FunctionalDependency {
                lhs: vec![0],
                rhs: 1,
            }],
            inds: vec![],
        };
        let g = DependencySet {
            fds: vec![],
            inds: vec![InclusionDependency {
                lhs: vec![0],
                rhs: vec![1],
            }],
        };
        (f, g)
    }

    #[test]
    fn fd_satisfaction() {
        let fd = FunctionalDependency {
            lhs: vec![0],
            rhs: 1,
        };
        assert!(fd.satisfied_by(&relation(&[("a", "1"), ("b", "2")])));
        assert!(!fd.satisfied_by(&relation(&[("a", "1"), ("a", "2")])));
        assert!(fd.satisfied_by(&Relation::empty(2)));
    }

    #[test]
    fn ind_satisfaction() {
        let ind = InclusionDependency {
            lhs: vec![0],
            rhs: vec![1],
        };
        // every first-column value appears in the second column
        assert!(ind.satisfied_by(&relation(&[("a", "a")])));
        assert!(ind.satisfied_by(&relation(&[("a", "b"), ("b", "a")])));
        assert!(!ind.satisfied_by(&relation(&[("a", "b")])));
        assert!(ind.satisfied_by(&Relation::empty(2)));
    }

    #[test]
    fn proposition_31_gadget_detects_non_implication() {
        // In the paper's example F ⊭ G: the instance {(a, 1), (b, 2)}
        // satisfies the FD but violates the inclusion dependency.
        let (f, g) = paper_example();
        let gadget = DependencyGadget::new(2, f, g).unwrap();
        let witness = relation(&[("a", "1"), ("b", "2")]);
        assert!(gadget.witnesses_non_implication(&witness).unwrap());
        // the audit log is exactly (∅, {violG})
        let log = gadget.audit(&witness).unwrap();
        assert!(log.get(0).unwrap().is_empty());
        assert!(log.get(1).unwrap().relation("violG").unwrap().holds());
        assert!(!log.get(1).unwrap().relation("violF").unwrap().holds());
    }

    #[test]
    fn instances_satisfying_both_sets_do_not_witness() {
        let (f, g) = paper_example();
        let gadget = DependencyGadget::new(2, f, g).unwrap();
        // satisfies both F and G
        assert!(!gadget
            .witnesses_non_implication(&relation(&[("a", "a")]))
            .unwrap());
        // violates F as well as G: not the (∅, {violG}) witness either
        assert!(!gadget
            .witnesses_non_implication(&relation(&[("a", "1"), ("a", "2")]))
            .unwrap());
        // the empty instance satisfies everything
        assert!(!gadget
            .witnesses_non_implication(&Relation::empty(2))
            .unwrap());
    }

    #[test]
    fn dependency_sets_combine() {
        let (f, g) = paper_example();
        let mut combined = f.clone();
        combined.inds.extend(g.inds.clone());
        assert!(combined.satisfied_by(&relation(&[("a", "a")])));
        assert!(!combined.satisfied_by(&relation(&[("a", "1"), ("b", "2")])));
    }
}
