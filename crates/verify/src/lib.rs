//! # rtx-verify
//!
//! The decision procedures of *Relational Transducers for Electronic
//! Commerce*, implemented exactly as the paper proves them decidable: by
//! reduction to finite satisfiability of Bernays–Schönfinkel (∃\*∀\*FO)
//! sentences over a schema in which the unknown input sequence is replicated
//! step by step (`R@1, R@2, …`), solved by `rtx-logic`/`rtx-sat`.
//!
//! | Paper result | Module | Entry point |
//! |---|---|---|
//! | Theorem 3.1 — log validation | [`log_validation`] | [`validate_log`] |
//! | Theorem 3.2 — goal reachability (2-step collapse) | [`reachability`] | [`is_goal_reachable`] |
//! | Theorem 3.3 — `T_past-input` temporal properties | [`temporal`] | [`holds_in_all_runs`] |
//! | Theorem 3.5 / Corollary 3.6 — customization containment | [`containment`] | [`customization_preserves_logs`] |
//! | Theorem 4.1 — enforcing `T_sdi` policies via error rules | [`enforce`] | [`SdiConstraint::compile_to_error_rules`] |
//! | Theorem 4.4 — `T_sdi` over error-free runs | [`error_free`] | [`error_free_runs_satisfy`] |
//! | Theorem 4.6 — error-free-run containment | [`error_free`] | [`error_free_containment`] |
//! | §3.1 — `Gen(T)` of propositional transducers | [`genlang`] | [`gen_language_dfa`] |
//! | Proposition 3.1 / Theorem 3.4 — FD/IncD reductions (undecidability witnesses) | [`dependencies`] | [`dependencies::DependencyGadget`] |
//! | Online monitoring of the above (runtime guardrails) | [`monitor`] | [`SessionMonitor`] |
//!
//! Every satisfiability-based procedure can also return a *witness* (an input
//! sequence, a counterexample run prefix), and the test suite cross-checks
//! witnesses by running the transducer concretely — tying the symbolic
//! reductions back to the operational semantics of `rtx-core`.
//!
//! ## Online monitoring
//!
//! The offline procedures above answer questions about *completed* runs or
//! *all* runs.  [`SessionMonitor`] moves the same checks onto the hot path
//! of a live session, as the observer behind the `rtx-core` runtime
//! guardrails.  The lifecycle:
//!
//! 1. **Attach** — build a monitor from the spec transducer and the shared
//!    catalog, optionally registering `T_sdi` admission constraints
//!    ([`SessionMonitor::with_constraint`]), per-step temporal properties
//!    ([`SessionMonitor::with_property`]) and forbidden goals
//!    ([`SessionMonitor::forbid_goal`]); then attach it to a session under a
//!    monitor policy (`Observe` or `Enforce`).  Fleets build one configured
//!    prototype and [`SessionMonitor::fork`] it per session, so compilation
//!    is paid once.
//! 2. **Per-step validation** — before each step the compiled admission
//!    gate (Theorem 4.1 error rules) screens the input; after the step the
//!    monitor re-derives the *logged* output relations with an incremental
//!    shadow evaluator and compares tuple-for-tuple, so a length-`N` run
//!    costs `N` delta-bounded checks, never `O(N²)` re-derivation.  A
//!    symbolic Theorem 3.1 cursor accumulates the log for on-demand deep
//!    audits ([`SessionMonitor::audit`]).
//! 3. **Violation or rejection** — every failed check becomes a typed
//!    violation naming the offending step, relation and tuple.  Under
//!    `Observe` the session records it and continues; under `Enforce` an
//!    inadmissible input is refused with a typed rejection naming the
//!    violated constraint, before the run advances.
//! 4. **Quarantine** — a monitor (or any observer) that panics never takes
//!    the runtime down: the session is quarantined, its name is released,
//!    sibling sessions keep stepping, and the runtime health snapshot
//!    reports the casualty alongside the violation and rejection tallies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod containment;
pub mod dependencies;
pub mod enforce;
pub mod error_free;
pub mod genlang;
pub mod log_validation;
pub mod monitor;
pub mod reachability;
pub mod reduction;
pub mod temporal;

mod error;

pub use containment::{
    customization_preserves_logs, syntactically_safe_customization, ContainmentVerdict,
};
pub use enforce::SdiConstraint;
pub use error::VerifyError;
pub use error_free::{error_free_containment, error_free_runs_satisfy, ErrorFreeVerdict};
pub use genlang::gen_language_dfa;
pub use log_validation::{validate_log, LogAuditCursor, LogValidity};
pub use monitor::SessionMonitor;
pub use reachability::{is_goal_reachable, Goal, GoalLiteral};
pub use temporal::{holds_in_all_runs, run_satisfies, step_satisfies, TemporalVerdict};
