//! Errors produced by the verification procedures.

use std::fmt;

/// Errors from the verification crate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A precondition of the theorem being applied is violated (e.g. the
    /// customized transducer does not extend the original's input schema, or
    /// an error rule contains a negative state literal where Theorem 4.4
    /// forbids one).
    Precondition {
        /// Explanation of the violated precondition.
        detail: String,
    },
    /// A property or goal has a shape the corresponding theorem does not
    /// cover (e.g. a non-positive consequent in a `T_sdi` sentence).
    UnsupportedProperty {
        /// Explanation of the problem.
        detail: String,
    },
    /// An error from the transducer core.
    Core(rtx_core::CoreError),
    /// An error from the logic layer (grounding/satisfiability).
    Logic(rtx_logic::LogicError),
    /// An error from the relational layer.
    Relational(rtx_relational::RelationalError),
    /// An error from the datalog layer.
    Datalog(rtx_datalog::DatalogError),
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::Precondition { detail } => write!(f, "precondition violated: {detail}"),
            VerifyError::UnsupportedProperty { detail } => {
                write!(f, "unsupported property: {detail}")
            }
            VerifyError::Core(e) => write!(f, "core error: {e}"),
            VerifyError::Logic(e) => write!(f, "logic error: {e}"),
            VerifyError::Relational(e) => write!(f, "relational error: {e}"),
            VerifyError::Datalog(e) => write!(f, "datalog error: {e}"),
        }
    }
}

impl std::error::Error for VerifyError {}

impl From<rtx_core::CoreError> for VerifyError {
    fn from(e: rtx_core::CoreError) -> Self {
        VerifyError::Core(e)
    }
}

impl From<rtx_logic::LogicError> for VerifyError {
    fn from(e: rtx_logic::LogicError) -> Self {
        VerifyError::Logic(e)
    }
}

impl From<rtx_relational::RelationalError> for VerifyError {
    fn from(e: rtx_relational::RelationalError) -> Self {
        VerifyError::Relational(e)
    }
}

impl From<rtx_datalog::DatalogError> for VerifyError {
    fn from(e: rtx_datalog::DatalogError) -> Self {
        VerifyError::Datalog(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        assert!(VerifyError::Precondition { detail: "x".into() }
            .to_string()
            .contains("precondition"));
        assert!(VerifyError::UnsupportedProperty { detail: "y".into() }
            .to_string()
            .contains('y'));
        let e: VerifyError = rtx_logic::LogicError::NotBernaysSchonfinkel.into();
        assert!(matches!(e, VerifyError::Logic(_)));
        let e: VerifyError =
            rtx_relational::RelationalError::UnknownRelation { name: "r".into() }.into();
        assert!(matches!(e, VerifyError::Relational(_)));
        let e: VerifyError = rtx_core::CoreError::Parse { detail: "p".into() }.into();
        assert!(matches!(e, VerifyError::Core(_)));
        let e: VerifyError = rtx_datalog::DatalogError::NegatedIdb {
            relation: "d".into(),
        }
        .into();
        assert!(matches!(e, VerifyError::Datalog(_)));
    }
}
