//! # rtx-bench
//!
//! Criterion benchmark harness for the reproduction.  Each bench target
//! regenerates one experiment of `EXPERIMENTS.md` / `DESIGN.md`:
//!
//! * `fig_runs` — the Figure 1 (`short`) and Figure 2 (`friendly`) runs;
//! * `thm31_log_validation` — log validation vs. log length and schema size;
//! * `thm32_goal_reachability` — goal reachability;
//! * `thm33_temporal` — temporal-property verification;
//! * `thm35_containment` — customization containment;
//! * `thm41_enforcement` — `T_sdi` policy compilation and enforced runs;
//! * `thm44_error_free` — verification over error-free runs;
//! * `gen_language` — `Gen(T)` enumeration and DFA construction;
//! * `datalog_eval` — naive vs. semi-naive datalog evaluation (ablation);
//! * `multi_session` — resident vs. per-run database preparation across many
//!   concurrent sessions over one shared catalog;
//! * `parallel_strata` — data-parallel stratum evaluation vs. thread count;
//! * `mutation` — delete-rederive maintenance of a 1-tuple retraction
//!   against a 100k-product catalog vs. full re-evaluation;
//! * `durability` — WAL append throughput per fsync policy (real files),
//!   snapshot writes, and cold recovery vs. journal length;
//! * `bs_sat` — grounded Bernays–Schönfinkel satisfiability scaling.
//!
//! The library itself only hosts shared helpers.

/// Standard, short Criterion configuration so that the full suite runs in a
/// few minutes: small sample counts and measurement windows.
pub fn criterion_config() -> criterion::Criterion {
    criterion::Criterion::default()
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(300))
        .measurement_time(std::time::Duration::from_millis(800))
        .without_plots()
}
