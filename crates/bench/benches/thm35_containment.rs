//! THM35: customization containment (Theorem 3.5 / Corollary 3.6) — the
//! short/friendly audit and a rejected rogue customization.

use criterion::Criterion;
use rtx::core::models;
use rtx::prelude::*;

fn benches(c: &mut Criterion) {
    let short = models::short();
    let friendly = models::friendly();
    let db = models::figure1_database();

    c.bench_function("thm35_accept_friendly", |b| {
        b.iter(|| {
            assert!(customization_preserves_logs(&short, &friendly, &db)
                .unwrap()
                .is_contained())
        });
    });

    let rogue = SpocusBuilder::new("rogue")
        .input("order", 1)
        .input("pay", 2)
        .database("price", 2)
        .database("available", 1)
        .output("sendbill", 2)
        .output("deliver", 1)
        .log(["sendbill", "pay", "deliver"])
        .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
        .output_rule("deliver(X) :- order(X), price(X,Y)")
        .build()
        .unwrap();
    c.bench_function("thm35_reject_rogue", |b| {
        b.iter(|| {
            assert!(!customization_preserves_logs(&short, &rogue, &db)
                .unwrap()
                .is_contained())
        });
    });

    c.bench_function("thm35_syntactic_check", |b| {
        b.iter(|| {
            assert!(rtx::verify::syntactically_safe_customization(
                &short, &friendly
            ))
        });
    });
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
