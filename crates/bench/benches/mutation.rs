//! PERF-RET: first-class retraction cost.  A 1-tuple retraction against a
//! 100k-product catalog maintained by the delete-rederive engine must cost
//! on the order of the affected closure (a handful of derived tuples), not
//! a re-evaluation of the whole quarter-million-tuple fixpoint — the
//! `full-reeval` baseline in this group is what every catalog mutation used
//! to cost under the grow-only assumption.

use criterion::{black_box, Criterion};
use rtx::datalog::{CompiledProgram, DredEngine, MutationBatch};
use rtx::prelude::*;

const PRODUCTS: usize = 100_000;

/// The maintained program: a counting (non-recursive) chain over the
/// catalog plus a recursive bundle-reachability stratum, so one retraction
/// exercises both maintenance paths.
const PROGRAM: &str = "\
listed(X) :- price(X,Y).\n\
sellable(X) :- listed(X), available(X).\n\
bundled(X,Y) :- bundle(X,Y).\n\
bundled(X,Z) :- bundled(X,Y), bundle(Y,Z).\n\
promo(X) :- bundled(X,Y), sellable(Y).";

/// A [`rtx::workloads::catalog`] extended with `bundle` chains of four
/// consecutive products, keeping the recursive closure sparse (six
/// `bundled` pairs per chain) while the catalog itself is large.
fn bundle_db(products: usize, seed: u64) -> Instance {
    let base = rtx::workloads::catalog(products, seed);
    let schema =
        Schema::from_pairs([("price", 2), ("available", 1), ("bundle", 2)]).expect("distinct");
    let mut db = Instance::empty(&schema);
    for (name, rel) in base.iter() {
        db.absorb_relation(name.clone(), rel).expect("same schema");
    }
    for i in 0..products.saturating_sub(1) {
        if i % 4 != 3 {
            db.insert(
                "bundle",
                Tuple::from_iter([format!("p{i}"), format!("p{}", i + 1)]),
            )
            .expect("bundle/2");
        }
    }
    db
}

fn benches(c: &mut Criterion) {
    let program = parse_program(PROGRAM).unwrap();
    let db = bundle_db(PRODUCTS, 11);
    let old_price = rtx::workloads::price_of(&db, "p0").expect("p0 is listed");
    let listed = Tuple::new(vec![Value::str("p0"), Value::int(old_price)]);
    let relisted = Tuple::new(vec![Value::str("p0"), Value::int(1_000_000)]);

    let mut engine = DredEngine::new(&program, db.clone()).unwrap();
    let mut group = c.benchmark_group("retraction");

    // Delist + relist one product: two single-tuple maintenance passes, each
    // touching only p0's derived closure (its listed/sellable rows and the
    // ≤3 bundle partners promoting it).
    group.bench_function(format!("dred-delist-relist/products={PRODUCTS}"), |b| {
        b.iter(|| {
            engine.retract("price", listed.clone()).unwrap();
            engine.insert("price", listed.clone()).unwrap();
        });
    });

    // A price change as one atomic batch (retract old row, insert new row),
    // applied and then reverted so every iteration sees the same catalog.
    group.bench_function(format!("dred-reprice-batch/products={PRODUCTS}"), |b| {
        b.iter(|| {
            engine
                .apply(
                    &MutationBatch::new()
                        .retract("price", listed.clone())
                        .insert("price", relisted.clone()),
                )
                .unwrap();
            engine
                .apply(
                    &MutationBatch::new()
                        .retract("price", relisted.clone())
                        .insert("price", listed.clone()),
                )
                .unwrap();
        });
    });

    // The pre-retraction world: any catalog mutation forces a full
    // re-evaluation of the fixpoint over the 100k-product catalog.
    let compiled = CompiledProgram::compile(&program).unwrap();
    group.bench_function(format!("full-reeval/products={PRODUCTS}"), |b| {
        b.iter(|| {
            let (out, _) = compiled.evaluate(&[&db]).unwrap();
            black_box(out);
        });
    });

    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
