//! EX-PROP: the propositional `a b* c` example (§3.1) — enumeration of
//! `Gen(T)` and construction of its DFA, with the prefix-closed /
//! self-loop-only characterisation check.

use criterion::Criterion;
use rtx::core::models;
use rtx::verify::genlang::{check_characterisation, gen_language_dfa};

fn benches(c: &mut Criterion) {
    let t = models::abstar_c();

    let mut group = c.benchmark_group("gen_language_enumeration");
    for max_len in [3usize, 5, 7] {
        group.bench_function(format!("max_len={max_len}"), |b| {
            b.iter(|| t.generate_words(max_len).unwrap());
        });
    }
    group.finish();

    c.bench_function("gen_language_dfa_construction", |b| {
        b.iter(|| {
            let dfa = gen_language_dfa(&t).unwrap();
            assert!(dfa.is_prefix_closed());
            assert!(dfa.has_only_self_loop_cycles());
        });
    });
    c.bench_function("gen_language_characterisation", |b| {
        b.iter(|| assert!(check_characterisation(&t, 4).unwrap()));
    });
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
