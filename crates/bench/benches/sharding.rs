//! PERF-SHARD: sharded session-fleet throughput — the scale claim of the
//! sharded runtime.  The same fleet of customer sessions over one shared
//! catalog runs on a single unsharded `Runtime` (the baseline) and on a
//! `ShardedRuntime` at 1, 2, 4 and 8 shards with one stepping thread per
//! shard.  Per-shard evaluation is pinned sequential so the sweep isolates
//! the sharding/threading effect from the intra-query worker pool; the
//! 1-shard row measures the pure routing/registry overhead against the
//! baseline.

use criterion::Criterion;
use rtx::datalog::{Parallelism, ResidentDb};
use rtx::prelude::*;
use std::sync::Arc;

fn benches(c: &mut Criterion) {
    let model = Arc::new(rtx::workloads::category_model());
    let (sessions, products, steps) = (32usize, 1_000usize, 4usize);
    let db = rtx::workloads::category_catalog(products, 50, 1);
    let fleet = rtx::workloads::session_fleet(&db, sessions, steps, products, 0.9, 3);
    let resident = Arc::new(ResidentDb::new(db));

    let mut group = c.benchmark_group("session_fleet_sharded");

    // Baseline: the whole fleet on one unsharded runtime, one thread.
    group.bench_function(format!("unsharded/sessions={sessions}"), |b| {
        b.iter(|| {
            let runtime = Runtime::shared_with(Arc::clone(&resident), Parallelism::sequential());
            for (i, inputs) in fleet.iter().enumerate() {
                let mut session = runtime
                    .open_session(format!("s{i}"), Arc::clone(&model))
                    .unwrap();
                for input in inputs.iter() {
                    session.step(input).unwrap();
                }
            }
        });
    });

    // Sharded: one stepping thread per shard, sessions placed explicitly on
    // the shard their thread owns (the front-end's worker model).
    for shards in [1usize, 2, 4, 8] {
        group.bench_function(format!("shards={shards}/sessions={sessions}"), |b| {
            b.iter(|| {
                let sharded = ShardedRuntime::shared_with(
                    Arc::clone(&resident),
                    shards,
                    Parallelism::sequential(),
                );
                std::thread::scope(|scope| {
                    for t in 0..shards {
                        let sharded = sharded.clone();
                        let model = Arc::clone(&model);
                        let fleet = &fleet;
                        scope.spawn(move || {
                            for i in (t..sessions).step_by(shards) {
                                let mut session = sharded
                                    .open_session_on(t, format!("s{i}"), Arc::clone(&model))
                                    .unwrap();
                                for input in fleet[i].iter() {
                                    session.step(input).unwrap();
                                }
                            }
                        });
                    }
                });
            });
        });
    }
    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
