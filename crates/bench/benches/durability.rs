//! Durability costs: WAL append throughput per fsync policy, snapshot
//! (checkpoint) writes, and cold recovery vs. journal length.
//!
//! The WAL-append benches run against real files ([`StdVfs`] rooted under
//! `CARGO_TARGET_TMPDIR`), because the number being measured *is* the
//! filesystem round-trip — `always` pays an fsync per operation, `every:64`
//! amortizes it 64×, `never` leaves flushing to the OS.  Recovery benches
//! use the in-memory backend so they measure decode + replay, not page-cache
//! luck.

use criterion::{black_box, Criterion};
use rtx::store::{DurableStore, FsyncPolicy, MemVfs, StdVfs, Vfs};
use rtx::workloads::{crash_churn, ChurnOp};
use std::sync::Arc;

/// Applies one churn op (checkpoints included) to a durable store.
fn apply(store: &mut DurableStore, op: &ChurnOp) {
    match op {
        ChurnOp::Create { table, arity } => {
            store.create_table(table.clone(), *arity, None).unwrap();
        }
        ChurnOp::Insert { table, row } => {
            store.insert(table, row.clone()).unwrap();
        }
        ChurnOp::Retract { table, row } => {
            store.retract(table, row).unwrap();
        }
        ChurnOp::Checkpoint => store.checkpoint().unwrap(),
    }
}

/// A fresh [`StdVfs`] rooted in a per-bench scratch directory under the
/// cargo-managed target tmpdir (kept inside the workspace).
fn scratch(name: &str) -> StdVfs {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join(name);
    let _ = std::fs::remove_dir_all(&dir);
    StdVfs::new(dir).unwrap()
}

/// A [`MemVfs`] holding `n_ops` of committed churn (no checkpoints, so the
/// whole history sits in the WAL tail) — the cold-recovery input.
fn wal_image(n_ops: usize) -> MemVfs {
    let vfs = MemVfs::new();
    let (mut store, _) = DurableStore::open(Arc::new(vfs.clone()), FsyncPolicy::Never).unwrap();
    for op in crash_churn(n_ops, 7).iter() {
        if !matches!(op, ChurnOp::Checkpoint) {
            apply(&mut store, op);
        }
    }
    store.sync().unwrap();
    vfs
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("durability");

    // WAL append throughput per fsync policy: 64 inserts per iteration
    // against a real file, so the policy's fsync schedule is the variable.
    for (label, policy) in [
        ("always", FsyncPolicy::Always),
        ("every64", FsyncPolicy::EveryN(64)),
        ("never", FsyncPolicy::Never),
    ] {
        let vfs = scratch(&format!("durability-wal-{label}"));
        let (mut store, _) = DurableStore::open(Arc::new(vfs), policy).unwrap();
        store.create_table("t", 2, None).unwrap();
        let mut next = 0i64;
        group.bench_function(format!("wal-append/policy={label}/batch=64"), |b| {
            b.iter(|| {
                for _ in 0..64 {
                    store
                        .insert(
                            "t",
                            rtx::relational::Tuple::new(vec![
                                rtx::relational::Value::str("row"),
                                rtx::relational::Value::int(next),
                            ]),
                        )
                        .unwrap();
                    next += 1;
                }
            });
        });
    }

    // Snapshot write: one checkpoint of an n-row catalog (the WAL reset
    // rides along, as it does in production).
    for rows in [1_000usize, 10_000] {
        let vfs = scratch(&format!("durability-snap-{rows}"));
        let (mut store, _) = DurableStore::open(Arc::new(vfs), FsyncPolicy::Never).unwrap();
        store.create_table("t", 2, None).unwrap();
        for i in 0..rows {
            store
                .insert(
                    "t",
                    rtx::relational::Tuple::new(vec![
                        rtx::relational::Value::str(format!("p{i}")),
                        rtx::relational::Value::int(i as i64),
                    ]),
                )
                .unwrap();
        }
        group.bench_function(format!("snapshot-write/rows={rows}"), |b| {
            b.iter(|| store.checkpoint().unwrap());
        });
    }

    // Cold recovery vs. WAL length: decode + checksum + replay of the whole
    // tail into a fresh store.
    for n_ops in [1_000usize, 5_000] {
        let image = wal_image(n_ops);
        group.bench_function(format!("cold-recovery/wal-ops={n_ops}"), |b| {
            b.iter(|| {
                let vfs: Arc<dyn Vfs> = Arc::new(image.clone());
                let (store, report) = DurableStore::open(vfs, FsyncPolicy::Never).unwrap();
                assert!(report.torn_tail.is_none());
                black_box(store.store().journal().end());
            });
        });
    }

    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
