//! THM32: goal reachability (Theorem 3.2) — reachable and unreachable goals,
//! and scaling with the number of output rules in the business model.

use criterion::Criterion;
use rtx::core::models;
use rtx::datalog::Atom;
use rtx::prelude::*;

fn benches(c: &mut Criterion) {
    let short = models::short();
    let db = models::figure1_database();

    c.bench_function("thm32_reachable_goal", |b| {
        let goal = Goal::atom(Atom::new("deliver", [Term::constant(Value::str("time"))]));
        b.iter(|| assert!(is_goal_reachable(&short, &db, &goal).unwrap().is_some()));
    });
    c.bench_function("thm32_unreachable_goal", |b| {
        let goal = Goal::atom(Atom::new(
            "deliver",
            [Term::constant(Value::str("economist"))],
        ));
        b.iter(|| assert!(is_goal_reachable(&short, &db, &goal).unwrap().is_none()));
    });

    let mut group = c.benchmark_group("thm32_vs_model_size");
    for outputs in [1usize, 4, 8] {
        let model = rtx::workloads::scaled_model(outputs, 2);
        let scaled_db = rtx::workloads::scaled_database(2, 4);
        let goal = Goal::atom(Atom::new("out0", [Term::constant(Value::str("r0"))]));
        group.bench_function(format!("outputs={outputs}"), |b| {
            b.iter(|| {
                assert!(is_goal_reachable(&model, &scaled_db, &goal)
                    .unwrap()
                    .is_some())
            });
        });
    }
    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
