//! THM44 / THM46: verification over error-free runs — checking a `T_sdi`
//! policy against an input-controlled model (Theorem 4.4) and error-free-run
//! containment between two policed models (Theorem 4.6).

use criterion::Criterion;
use rtx::core::models;
use rtx::datalog::{Atom, BodyLiteral};
use rtx::prelude::*;
use rtx::verify::enforce::add_enforcement;

fn availability_policy() -> SdiConstraint {
    SdiConstraint::new(
        vec![BodyLiteral::Positive(Atom::new("order", [Term::var("x")]))],
        Formula::atom("available", [Term::var("x")]),
    )
    .unwrap()
}

fn price_policy() -> SdiConstraint {
    SdiConstraint::new(
        vec![BodyLiteral::Positive(Atom::new(
            "pay",
            [Term::var("x"), Term::var("y")],
        ))],
        Formula::atom("price", [Term::var("x"), Term::var("y")]),
    )
    .unwrap()
}

fn benches(c: &mut Criterion) {
    let short = models::short();
    let db = models::figure1_database();
    let lenient = add_enforcement(&short, &[availability_policy()]).unwrap();
    let strict = add_enforcement(&short, &[availability_policy(), price_policy()]).unwrap();

    c.bench_function("thm44_policy_holds_on_error_free_runs", |b| {
        b.iter(|| {
            assert!(error_free_runs_satisfy(&strict, &db, &price_policy())
                .unwrap()
                .holds())
        });
    });
    c.bench_function("thm44_policy_violated_without_enforcement", |b| {
        b.iter(|| {
            assert!(!error_free_runs_satisfy(&lenient, &db, &price_policy())
                .unwrap()
                .holds())
        });
    });
    c.bench_function("thm46_containment_holds", |b| {
        b.iter(|| {
            assert!(error_free_containment(&strict, &lenient, &db)
                .unwrap()
                .holds())
        });
    });
    c.bench_function("thm46_containment_refuted", |b| {
        b.iter(|| {
            assert!(!error_free_containment(&lenient, &strict, &db)
                .unwrap()
                .holds())
        });
    });
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
