//! THM33: verification of `T_past-input` temporal properties (Theorem 3.3) —
//! a property that holds and a mutant model on which it fails.

use criterion::Criterion;
use rtx::core::models;
use rtx::prelude::*;

fn audited_model(safe: bool) -> SpocusTransducer {
    let deliver_rule = if safe {
        "deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y)"
    } else {
        "deliver(X) :- past-order(X), price(X,Y)"
    };
    SpocusBuilder::new(if safe { "audited" } else { "mutant" })
        .input("order", 1)
        .input("pay", 2)
        .database("price", 2)
        .database("available", 1)
        .output("sendbill", 2)
        .output("deliver", 1)
        .output("paid-now", 2)
        .log(["sendbill", "pay", "deliver"])
        .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
        .output_rule(deliver_rule)
        .output_rule("paid-now(X,Y) :- pay(X,Y)")
        .build()
        .unwrap()
}

fn no_unpaid_delivery() -> Formula {
    Formula::forall(
        ["x", "y"],
        Formula::implies(
            Formula::and(vec![
                Formula::atom("deliver", [Term::var("x")]),
                Formula::atom("price", [Term::var("x"), Term::var("y")]),
            ]),
            Formula::or(vec![
                Formula::atom("past-pay", [Term::var("x"), Term::var("y")]),
                Formula::atom("paid-now", [Term::var("x"), Term::var("y")]),
            ]),
        ),
    )
}

fn benches(c: &mut Criterion) {
    let db = models::figure1_database();
    let property = no_unpaid_delivery();

    c.bench_function("thm33_property_holds", |b| {
        let model = audited_model(true);
        b.iter(|| assert!(holds_in_all_runs(&model, &db, &property).unwrap().holds()));
    });
    c.bench_function("thm33_property_violated", |b| {
        let model = audited_model(false);
        b.iter(|| assert!(!holds_in_all_runs(&model, &db, &property).unwrap().holds()));
    });

    let mut group = c.benchmark_group("thm33_vs_catalog_size");
    for products in [3usize, 6, 12] {
        let catalog = rtx::workloads::catalog(products, 3);
        let model = audited_model(true);
        group.bench_function(format!("products={products}"), |b| {
            b.iter(|| {
                assert!(holds_in_all_runs(&model, &catalog, &property)
                    .unwrap()
                    .holds())
            });
        });
    }
    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
