//! PERF-MON: the price of the runtime guardrails.  The same 8-session
//! customer fleet is driven through the named-session runtime three times —
//! unmonitored, with an observing `SessionMonitor` attached (incremental log
//! validation + an input-control gate), and with the gate enforcing — so the
//! monitoring overhead is a single column in the results CSV.
//!
//! The monitored model is the category model with an *audit* log (`pay`,
//! `deliver`): the monitor's shadow re-derivation scales with the logged
//! share of the spec, exactly as a supplier auditing the legally meaningful
//! events would configure it.  The observed variant prices the incremental
//! log validation; the enforced variant additionally evaluates the compiled
//! admission gate (`pay(x,y) → price(x,y)`) before every step.  The fleet is
//! fully honest and the gate policy always holds, so every variant performs
//! identical transducer work; the deltas are pure monitor cost.

use criterion::Criterion;
use rtx::core::Runtime;
use rtx::datalog::{Atom, BodyLiteral, ResidentDb};
use rtx::prelude::*;
use std::sync::Arc;

/// The category model (same rules, database and input vocabulary as
/// [`rtx::workloads::category_model`]) logging the audit-relevant events
/// only: payments and deliveries.
fn audited_category_model() -> SpocusTransducer {
    SpocusBuilder::new("category-audited")
        .input("order", 1)
        .input("pay", 2)
        .database("price", 2)
        .database("available", 1)
        .database("category", 2)
        .output("sendbill", 2)
        .output("deliver", 1)
        .output("promote", 2)
        .output("loyal", 1)
        .output_rule("sendbill(X,Y) :- order(X), price(X,Y), NOT past-pay(X,Y)")
        .output_rule("deliver(X) :- past-order(X), price(X,Y), pay(X,Y), NOT past-pay(X,Y)")
        .output_rule("promote(X,C) :- order(X), category(C,X), NOT past-order(X)")
        .output_rule("loyal(X) :- past-order(X), available(X)")
        .log(["pay", "deliver"])
        .build()
        .expect("the audited category model is Spocus by construction")
}

fn pay_policy() -> SdiConstraint {
    SdiConstraint::new(
        vec![BodyLiteral::Positive(Atom::new(
            "pay",
            [Term::var("x"), Term::var("y")],
        ))],
        Formula::atom("price", [Term::var("x"), Term::var("y")]),
    )
    .expect("the payment policy is a well-formed T_sdi constraint")
}

fn run_fleet(
    model: &Arc<SpocusTransducer>,
    resident: &Arc<ResidentDb>,
    fleet: &[InstanceSequence],
    monitoring: Option<(MonitorPolicy, &SessionMonitor)>,
) {
    let runtime = Runtime::shared(Arc::clone(resident));
    for (i, inputs) in fleet.iter().enumerate() {
        let mut session = runtime
            .open_session(format!("s{i}"), Arc::clone(model))
            .unwrap();
        if let Some((policy, prototype)) = monitoring {
            session.set_monitor_policy(policy);
            session.attach_observer(Box::new(prototype.fork()));
        }
        for input in inputs.iter() {
            session.step(input).unwrap();
        }
        assert!(session.violations().is_empty());
        session.run().unwrap();
    }
}

fn benches(c: &mut Criterion) {
    let model = Arc::new(audited_category_model());
    let sessions = 8usize;
    let steps = 16usize;
    let products = 1_000usize;
    let db = rtx::workloads::category_catalog(products, 50, 1);
    // Honesty 1.0: every pay matches the listed price, so the gate policy
    // holds and all three variants do identical transducer work.
    let fleet = rtx::workloads::session_fleet(&db, sessions, steps, products, 1.0, 3);
    let resident = Arc::new(model.compiled_output_program().prepare(&db));

    // One fully configured prototype per variant, forked per session — the
    // fleet idiom: compilation is paid once, each session gets fresh state.
    // The observing variant prices the incremental log validation alone;
    // enforcement adds the compiled admission gate on top.
    let watcher = SessionMonitor::new(Arc::clone(&model), Arc::clone(&resident)).unwrap();
    let gatekeeper = SessionMonitor::new(Arc::clone(&model), Arc::clone(&resident))
        .unwrap()
        .with_constraint("pay-matches-price", pay_policy())
        .unwrap();

    // Interleaved sampling: the three variants are measured round-robin so
    // the monitored/unmonitored ratio survives bursty machine load.
    let mut group = c.benchmark_group("monitoring").interleaved();
    let label = format!("sessions={sessions},steps={steps},products={products}");
    group.bench_function(format!("unmonitored/{label}"), |b| {
        b.iter(|| run_fleet(&model, &resident, &fleet, None));
    });
    group.bench_function(format!("observed/{label}"), |b| {
        b.iter(|| {
            run_fleet(
                &model,
                &resident,
                &fleet,
                Some((MonitorPolicy::Observe, &watcher)),
            )
        });
    });
    group.bench_function(format!("enforced/{label}"), |b| {
        b.iter(|| {
            run_fleet(
                &model,
                &resident,
                &fleet,
                Some((MonitorPolicy::Enforce, &gatekeeper)),
            )
        });
    });
    group.finish();
}

fn main() {
    // The monitored/unmonitored *ratio* is the point of this bench, so the
    // quick profile gets a wider measurement window than the 150 ms default:
    // at ~5 ms per fleet pass, the default fits too few iterations per
    // sample for the recorded medians to be stable.
    let mut c = rtx_bench::criterion_config()
        .sample_size(20)
        .measurement_time(std::time::Duration::from_millis(1_500));
    benches(&mut c);
    c.final_summary();
}
