//! PERF-PS: data-parallel stratum evaluation — the wide-stratum workload
//! (many independent rules over one shared graph) swept across worker
//! counts, with the sequential engine as the baseline.  Parallel results are
//! bit-identical to sequential (the engine merges worker sinks in fixed
//! order), so every configuration measures the same computation; only the
//! scheduling differs.

use criterion::{black_box, Criterion};
use rtx::datalog::{CompiledProgram, Parallelism};

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_strata");
    for (rules, nodes, degree) in [(8usize, 600usize, 6usize), (16, 1500, 8)] {
        let program = rtx::workloads::wide_stratum_program(rules);
        let compiled = CompiledProgram::compile(&program).unwrap();
        let db = rtx::workloads::wide_stratum_edb(nodes, degree, rules, 1);
        let resident = compiled.prepare(&db);

        // Sanity: the parallel arms compute exactly the sequential instance.
        let (expected, expected_stats) = compiled
            .evaluate_resident_par(&[], &resident, Parallelism::sequential())
            .unwrap();
        for threads in [2usize, 8] {
            let (out, stats) = compiled
                .evaluate_resident_par(
                    &[],
                    &resident,
                    Parallelism::threads(threads).with_threshold(256),
                )
                .unwrap();
            assert_eq!(out, expected);
            assert_eq!(stats, expected_stats);
        }

        group.bench_function(format!("sequential/rules={rules},nodes={nodes}"), |b| {
            b.iter(|| {
                black_box(
                    compiled
                        .evaluate_resident_par(&[], &resident, Parallelism::sequential())
                        .unwrap(),
                )
            });
        });
        for threads in [2usize, 4, 8] {
            let policy = Parallelism::threads(threads).with_threshold(256);
            group.bench_function(
                format!("threads={threads}/rules={rules},nodes={nodes}"),
                |b| {
                    b.iter(|| {
                        black_box(
                            compiled
                                .evaluate_resident_par(&[], &resident, policy)
                                .unwrap(),
                        )
                    });
                },
            );
        }
    }
    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
