//! PERF-DL: the set-at-a-time output-program evaluation the paper advocates —
//! Spocus step cost versus catalog size, and the naive vs semi-naive vs
//! compiled-indexed ablation on a recursive substrate workload.

use criterion::Criterion;
use rtx::core::models;
use rtx::datalog::{
    evaluate_nonrecursive, evaluate_stratified, parse_program, CompiledProgram, EvalEngine,
    EvalOptions, FixpointStrategy,
};
use rtx::prelude::*;

fn benches(c: &mut Criterion) {
    let short = models::short();

    // The headline number: a whole customer run against growing catalogs.
    // The transducer runtime uses the compiled-indexed engine with the
    // catalog pre-indexed once per run, so this should scale with the
    // session size, not the catalog size.
    let mut group = c.benchmark_group("spocus_step_vs_catalog_size");
    for products in [100usize, 1_000, 10_000] {
        let db = rtx::workloads::catalog(products, 1);
        let inputs = rtx::workloads::customer_session(&db, 4, products, 0.9, 3);
        group.bench_function(format!("products={products}"), |b| {
            b.iter(|| short.run(&db, &inputs).unwrap());
        });
    }
    group.finish();

    // String-heavy workload: 64-character SKU keys make every register bind,
    // index key and derived tuple pay for string handling — the workload the
    // symbol-interning work targets.  `short-run` is the whole-transducer
    // path; `compiled-join` evaluates a fresh three-way join whose non-prefix
    // index over `category` is rebuilt (rehashing every key) per evaluation.
    let mut group = c.benchmark_group("string_heavy_sku");
    for products in [2_000usize, 10_000] {
        let db = rtx::workloads::sku_catalog(products, 1);
        let inputs = rtx::workloads::sku_customer_session(&db, 4, products, 0.9, 3);
        group.bench_function(format!("short-run/products={products}"), |b| {
            b.iter(|| short.run(&db, &inputs).unwrap());
        });
    }
    {
        let products = 10_000usize;
        let enrich =
            parse_program("enriched(X,P,C) :- order(X), price(X,P), category(C,X).").unwrap();
        let compiled = CompiledProgram::compile(&enrich).unwrap();
        let schema = Schema::from_pairs([("price", 2), ("category", 2)]).unwrap();
        let mut db = Instance::empty(&schema);
        for i in 0..products {
            let sku = rtx::workloads::sku_name(i);
            db.insert(
                "price",
                Tuple::new(vec![Value::str(&sku), Value::int(i as i64 + 1)]),
            )
            .unwrap();
            db.insert(
                "category",
                Tuple::new(vec![Value::str(format!("cat-{}", i % 50)), Value::str(sku)]),
            )
            .unwrap();
        }
        let order_schema = Schema::from_pairs([("order", 1)]).unwrap();
        let mut orders = Instance::empty(&order_schema);
        for i in (0..products).step_by(10) {
            orders
                .insert(
                    "order",
                    Tuple::new(vec![Value::str(rtx::workloads::sku_name(i))]),
                )
                .unwrap();
        }
        group.bench_function(format!("compiled-join/products={products}"), |b| {
            b.iter(|| compiled.evaluate(&[&orders, &db]).unwrap());
        });
    }
    group.finish();

    // In-repo ablation of the same step: the reference interpreter
    // (re-analysis + nested scans over the unioned EDB, the pre-compilation
    // evaluation path) versus the cached compiled program.
    let mut group = c.benchmark_group("spocus_step_engines");
    for products in [1_000usize, 10_000] {
        let db = rtx::workloads::catalog(products, 1);
        let inputs = rtx::workloads::customer_session(&db, 4, products, 0.9, 3);
        let program = short.output_program().clone();
        group.bench_function(format!("interpreter/products={products}"), |b| {
            b.iter(|| {
                let mut state = Instance::empty(short.schema().state());
                for input in inputs.iter() {
                    let edb = input.union(&state).unwrap().union(&db).unwrap();
                    evaluate_nonrecursive(&program, &edb).unwrap();
                    state = short.state_step(input, &state, &db).unwrap();
                }
            });
        });
        group.bench_function(format!("compiled/products={products}"), |b| {
            b.iter(|| short.run(&db, &inputs).unwrap());
        });
    }
    group.finish();

    // Ablation: naive vs semi-naive vs compiled-indexed fixpoint on the
    // transitive closure of a chain.
    let tc = parse_program(
        "tc(X,Y) :- edge(X,Y).\n\
         tc(X,Z) :- edge(X,Y), tc(Y,Z).",
    )
    .unwrap();
    let mut group = c.benchmark_group("datalog_fixpoint_ablation");
    for n in [20usize, 60] {
        let schema = Schema::from_pairs([("edge", 2)]).unwrap();
        let mut edb = Instance::empty(&schema);
        for i in 0..n {
            edb.insert(
                "edge",
                Tuple::new(vec![Value::int(i as i64), Value::int(i as i64 + 1)]),
            )
            .unwrap();
        }
        for (label, options) in [
            (
                "naive",
                EvalOptions {
                    strategy: FixpointStrategy::Naive,
                    engine: EvalEngine::Interpreted,
                    ..EvalOptions::default()
                },
            ),
            (
                "semi-naive",
                EvalOptions {
                    strategy: FixpointStrategy::SemiNaive,
                    engine: EvalEngine::Interpreted,
                    ..EvalOptions::default()
                },
            ),
            (
                "compiled-indexed",
                EvalOptions {
                    strategy: FixpointStrategy::SemiNaive,
                    engine: EvalEngine::CompiledIndexed,
                    ..EvalOptions::default()
                },
            ),
        ] {
            group.bench_function(format!("{label}/chain={n}"), |b| {
                b.iter(|| evaluate_stratified(&tc, &edb, options).unwrap());
            });
        }
        // The compiled engine without per-call compilation: what a resident
        // service pays once the program is installed.
        let compiled = CompiledProgram::compile(&tc).unwrap();
        group.bench_function(format!("compiled-cached/chain={n}"), |b| {
            b.iter(|| compiled.evaluate(&[&edb]).unwrap());
        });
    }
    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
