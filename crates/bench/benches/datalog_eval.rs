//! PERF-DL: the set-at-a-time output-program evaluation the paper advocates —
//! Spocus step cost versus catalog size, and the naive vs semi-naive ablation
//! on a recursive substrate workload.

use criterion::Criterion;
use rtx::core::models;
use rtx::datalog::{evaluate_stratified, parse_program, EvalOptions, FixpointStrategy};
use rtx::prelude::*;

fn benches(c: &mut Criterion) {
    let short = models::short();

    let mut group = c.benchmark_group("spocus_step_vs_catalog_size");
    for products in [100usize, 1_000, 10_000] {
        let db = rtx::workloads::catalog(products, 1);
        let inputs = rtx::workloads::customer_session(&db, 4, products, 0.9, 3);
        group.bench_function(format!("products={products}"), |b| {
            b.iter(|| short.run(&db, &inputs).unwrap());
        });
    }
    group.finish();

    // Ablation: naive vs semi-naive fixpoint on transitive closure of a chain.
    let tc = parse_program(
        "tc(X,Y) :- edge(X,Y).\n\
         tc(X,Z) :- edge(X,Y), tc(Y,Z).",
    )
    .unwrap();
    let mut group = c.benchmark_group("datalog_fixpoint_ablation");
    for n in [20usize, 60] {
        let schema = Schema::from_pairs([("edge", 2)]).unwrap();
        let mut edb = Instance::empty(&schema);
        for i in 0..n {
            edb.insert(
                "edge",
                Tuple::new(vec![Value::int(i as i64), Value::int(i as i64 + 1)]),
            )
            .unwrap();
        }
        for (label, strategy) in [
            ("naive", FixpointStrategy::Naive),
            ("semi-naive", FixpointStrategy::SemiNaive),
        ] {
            group.bench_function(format!("{label}/chain={n}"), |b| {
                b.iter(|| {
                    evaluate_stratified(&tc, &edb, EvalOptions { strategy }).unwrap()
                });
            });
        }
    }
    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
