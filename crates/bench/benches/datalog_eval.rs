//! PERF-DL: the set-at-a-time output-program evaluation the paper advocates —
//! Spocus step cost versus catalog size, and the naive vs semi-naive vs
//! compiled-indexed ablation on a recursive substrate workload.

use criterion::Criterion;
use rtx::core::models;
use rtx::datalog::{
    evaluate_nonrecursive, evaluate_stratified, parse_program, CompiledProgram, EvalEngine,
    EvalOptions, FixpointStrategy,
};
use rtx::prelude::*;

fn benches(c: &mut Criterion) {
    let short = models::short();

    // The headline number: a whole customer run against growing catalogs.
    // The transducer runtime uses the compiled-indexed engine with the
    // catalog pre-indexed once per run, so this should scale with the
    // session size, not the catalog size.
    let mut group = c.benchmark_group("spocus_step_vs_catalog_size");
    for products in [100usize, 1_000, 10_000] {
        let db = rtx::workloads::catalog(products, 1);
        let inputs = rtx::workloads::customer_session(&db, 4, products, 0.9, 3);
        group.bench_function(format!("products={products}"), |b| {
            b.iter(|| short.run(&db, &inputs).unwrap());
        });
    }
    group.finish();

    // In-repo ablation of the same step: the reference interpreter
    // (re-analysis + nested scans over the unioned EDB, the pre-compilation
    // evaluation path) versus the cached compiled program.
    let mut group = c.benchmark_group("spocus_step_engines");
    for products in [1_000usize, 10_000] {
        let db = rtx::workloads::catalog(products, 1);
        let inputs = rtx::workloads::customer_session(&db, 4, products, 0.9, 3);
        let program = short.output_program().clone();
        group.bench_function(format!("interpreter/products={products}"), |b| {
            b.iter(|| {
                let mut state = Instance::empty(short.schema().state());
                for input in inputs.iter() {
                    let edb = input.union(&state).unwrap().union(&db).unwrap();
                    evaluate_nonrecursive(&program, &edb).unwrap();
                    state = short.state_step(input, &state, &db).unwrap();
                }
            });
        });
        group.bench_function(format!("compiled/products={products}"), |b| {
            b.iter(|| short.run(&db, &inputs).unwrap());
        });
    }
    group.finish();

    // Ablation: naive vs semi-naive vs compiled-indexed fixpoint on the
    // transitive closure of a chain.
    let tc = parse_program(
        "tc(X,Y) :- edge(X,Y).\n\
         tc(X,Z) :- edge(X,Y), tc(Y,Z).",
    )
    .unwrap();
    let mut group = c.benchmark_group("datalog_fixpoint_ablation");
    for n in [20usize, 60] {
        let schema = Schema::from_pairs([("edge", 2)]).unwrap();
        let mut edb = Instance::empty(&schema);
        for i in 0..n {
            edb.insert(
                "edge",
                Tuple::new(vec![Value::int(i as i64), Value::int(i as i64 + 1)]),
            )
            .unwrap();
        }
        for (label, options) in [
            (
                "naive",
                EvalOptions {
                    strategy: FixpointStrategy::Naive,
                    engine: EvalEngine::Interpreted,
                },
            ),
            (
                "semi-naive",
                EvalOptions {
                    strategy: FixpointStrategy::SemiNaive,
                    engine: EvalEngine::Interpreted,
                },
            ),
            (
                "compiled-indexed",
                EvalOptions {
                    strategy: FixpointStrategy::SemiNaive,
                    engine: EvalEngine::CompiledIndexed,
                },
            ),
        ] {
            group.bench_function(format!("{label}/chain={n}"), |b| {
                b.iter(|| evaluate_stratified(&tc, &edb, options).unwrap());
            });
        }
        // The compiled engine without per-call compilation: what a resident
        // service pays once the program is installed.
        let compiled = CompiledProgram::compile(&tc).unwrap();
        group.bench_function(format!("compiled-cached/chain={n}"), |b| {
            b.iter(|| compiled.evaluate(&[&edb]).unwrap());
        });
    }
    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
