//! PERF-DD: per-session probe cost vs catalog size — the demand-driven
//! evaluation claim.  A storefront session browses a couple of products per
//! step while a catalog-wide `offer` rule re-derives on every refresh tick:
//!
//! * `full` — an undemanded session evaluates the original program and
//!   materializes the whole catalog's offers every step: cost grows with
//!   the catalog (1k → 100k);
//! * `restricted` — the session states its demand but the `Full` policy
//!   evaluates unrewritten and filters to the footprint: same O(catalog)
//!   evaluation, the filter alone buys nothing;
//! * `rewritten` — the `Demand` policy evaluates the magic-set-rewritten
//!   program seeded from the session's own `browse` inputs: per-step cost
//!   stays flat as the catalog grows.

use criterion::Criterion;
use rtx::core::{DemandPolicy, Runtime};
use std::sync::Arc;

fn benches(c: &mut Criterion) {
    let model = Arc::new(rtx::workloads::storefront_model());
    let mut group = c.benchmark_group("demand_footprint");
    for products in [1_000usize, 10_000, 100_000] {
        let db = rtx::workloads::category_catalog(products, 50, 1);
        let inputs = rtx::workloads::browse_session(8, products, 7);
        let resident = Arc::new(model.compiled_output_program().prepare(&db));

        // Baseline: no demand — every step derives offers for the whole
        // catalog.
        group.bench_function(format!("full/products={products}"), |b| {
            b.iter(|| {
                let runtime = Runtime::shared(Arc::clone(&resident));
                let mut session = runtime.open_session("probe", Arc::clone(&model)).unwrap();
                for input in inputs.iter() {
                    session.step(input).unwrap();
                }
            });
        });

        // Demanded footprint via the fallback policy: full evaluation, then
        // filter — shows the win comes from the rewrite, not the filter.
        group.bench_function(format!("restricted/products={products}"), |b| {
            b.iter(|| {
                let runtime = Runtime::shared(Arc::clone(&resident));
                runtime.set_demand_policy(DemandPolicy::Full);
                let mut session = runtime
                    .open_session_with_demand(
                        "probe",
                        Arc::clone(&model),
                        rtx::workloads::storefront_demand(),
                    )
                    .unwrap();
                for input in inputs.iter() {
                    session.step(input).unwrap();
                }
            });
        });

        // The same footprint through the magic-set rewrite: seeded per step
        // from the session's own browse inputs, flat in the catalog size.
        group.bench_function(format!("rewritten/products={products}"), |b| {
            b.iter(|| {
                let runtime = Runtime::shared(Arc::clone(&resident));
                runtime.set_demand_policy(DemandPolicy::Demand);
                let mut session = runtime
                    .open_session_with_demand(
                        "probe",
                        Arc::clone(&model),
                        rtx::workloads::storefront_demand(),
                    )
                    .unwrap();
                for input in inputs.iter() {
                    session.step(input).unwrap();
                }
            });
        });
    }
    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
