//! PERF-MS: multi-session throughput over one shared catalog — the
//! resident-service claim.  N customer sessions run against the same
//! catalog; the per-run variant re-prepares the database for every run
//! (rebuilding the non-prefix `category` hash index N times), the resident
//! variants prepare once and share the version-stamped `ResidentDb` across
//! every run/session.

use criterion::Criterion;
use rtx::core::Runtime;
use rtx::prelude::*;
use std::sync::Arc;

fn benches(c: &mut Criterion) {
    let model = Arc::new(rtx::workloads::category_model());
    let mut group = c.benchmark_group("multi_session_throughput");
    for (sessions, products) in [(8usize, 1_000usize), (100, 10_000)] {
        let db = rtx::workloads::category_catalog(products, 50, 1);
        let fleet = rtx::workloads::session_fleet(&db, sessions, 4, products, 0.9, 3);

        // Baseline: every run prepares the catalog from scratch.
        group.bench_function(
            format!("per-run/sessions={sessions},products={products}"),
            |b| {
                b.iter(|| {
                    for inputs in &fleet {
                        model.run(&db, inputs).unwrap();
                    }
                });
            },
        );

        // Resident: one shared ResidentDb; indexes prepared once, reused by
        // every run (identical Run objects to the baseline).
        let resident = Arc::new(model.compiled_output_program().prepare(&db));
        group.bench_function(
            format!("resident/sessions={sessions},products={products}"),
            |b| {
                b.iter(|| {
                    for inputs in &fleet {
                        model.run_resident(&resident, inputs).unwrap();
                    }
                });
            },
        );

        // Session layer: the same work through the named-session runtime API
        // (open, step one input at a time, render the run).
        group.bench_function(
            format!("sessions/sessions={sessions},products={products}"),
            |b| {
                b.iter(|| {
                    let runtime = Runtime::shared(Arc::clone(&resident));
                    for (i, inputs) in fleet.iter().enumerate() {
                        let mut session = runtime
                            .open_session(format!("s{i}"), Arc::clone(&model))
                            .unwrap();
                        for input in inputs.iter() {
                            session.step(input).unwrap();
                        }
                        session.run().unwrap();
                    }
                });
            },
        );
    }
    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
