//! FIG1 / FIG2: regenerate the Figure 1 (`short`) and Figure 2 (`friendly`)
//! runs and measure a full run of each model, plus run cost as the session
//! length grows.

use criterion::Criterion;
use rtx::core::models;
use rtx::prelude::*;

fn benches(c: &mut Criterion) {
    let short = models::short();
    let friendly = models::friendly();
    let db = models::figure1_database();

    // Print the regenerated figures once so the bench log documents them.
    let fig1 = short.run(&db, &models::figure1_inputs()).unwrap();
    println!("--- Figure 1 (short) ---\n{fig1}");
    let fig2 = friendly.run(&db, &models::figure2_inputs()).unwrap();
    println!("--- Figure 2 (friendly) ---\n{fig2}");

    c.bench_function("fig1_short_run", |b| {
        let inputs = models::figure1_inputs();
        b.iter(|| short.run(&db, &inputs).unwrap());
    });
    c.bench_function("fig2_friendly_run", |b| {
        let inputs = models::figure2_inputs();
        b.iter(|| friendly.run(&db, &inputs).unwrap());
    });

    let mut group = c.benchmark_group("short_run_vs_session_length");
    for steps in [2usize, 8, 32] {
        let catalog = rtx::workloads::catalog(16, 1);
        let inputs = rtx::workloads::customer_session(&catalog, steps, 16, 0.9, 7);
        group.bench_function(format!("steps={steps}"), |b| {
            b.iter(|| short.run(&catalog, &inputs).unwrap());
        });
    }
    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
