//! PERF-SAT: grounded Bernays–Schönfinkel satisfiability — the engine behind
//! every decision procedure.  Sweeps the number of existential witnesses (the
//! `k` of the small-model bound) and the number of constants, exposing the
//! exponential regime the paper's NEXPTIME bound predicts.

use criterion::Criterion;
use rtx::logic::{solve_bs, BsProblem, Formula, Term};
use rtx::prelude::Value;

/// ∃ k pairwise-distinct witnesses, all in the free relation `R`, with a
/// universal constraint that `R` is irreflexive over a `c`-constant domain.
fn instance(k: usize, constants: usize) -> BsProblem {
    let vars: Vec<String> = (0..k).map(|i| format!("x{i}")).collect();
    let mut conjuncts: Vec<Formula> = vars
        .iter()
        .map(|v| Formula::atom("R", [Term::var(v.clone()), Term::var(v.clone())]))
        .collect();
    for i in 0..k {
        for j in (i + 1)..k {
            conjuncts.push(Formula::neq(
                Term::var(vars[i].clone()),
                Term::var(vars[j].clone()),
            ));
        }
    }
    let existential = Formula::exists(vars, Formula::and(conjuncts));
    let universal = Formula::forall(
        ["u", "v"],
        Formula::implies(
            Formula::and(vec![
                Formula::atom("S", [Term::var("u"), Term::var("v")]),
                Formula::atom("S", [Term::var("v"), Term::var("u")]),
            ]),
            Formula::eq(Term::var("u"), Term::var("v")),
        ),
    );
    let mut problem = BsProblem::new(Formula::and(vec![existential, universal]));
    problem.add_constants((0..constants).map(|i| Value::str(format!("c{i}"))));
    problem
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("bs_sat_vs_existential_width");
    for k in [1usize, 3, 5] {
        let problem = instance(k, 2);
        group.bench_function(format!("k={k}"), |b| {
            b.iter(|| assert!(solve_bs(&problem).unwrap().is_satisfiable()));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("bs_sat_vs_constants");
    for constants in [2usize, 6, 12] {
        let problem = instance(2, constants);
        group.bench_function(format!("constants={constants}"), |b| {
            b.iter(|| assert!(solve_bs(&problem).unwrap().is_satisfiable()));
        });
    }
    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
