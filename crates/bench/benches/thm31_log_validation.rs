//! THM31: log validation (Theorem 3.1) — cost of auditing valid logs as the
//! log length grows (fixed schema, the Σᵖ₂ regime) and cost of rejecting a
//! tampered log.

use criterion::Criterion;
use rtx::core::models;
use rtx::prelude::*;

fn benches(c: &mut Criterion) {
    let short = models::short();
    let db = models::figure1_database();

    let mut group = c.benchmark_group("thm31_valid_log_vs_length");
    for steps in [1usize, 2, 3] {
        let inputs = rtx::workloads::customer_session(&db, steps, 3, 1.0, 11);
        let log = rtx::workloads::log_of(&short, &db, &inputs);
        group.bench_function(format!("steps={steps}"), |b| {
            b.iter(|| {
                let verdict = validate_log(&short, &db, &log).unwrap();
                assert!(verdict.is_valid());
            });
        });
    }
    group.finish();

    c.bench_function("thm31_reject_tampered_log", |b| {
        let inputs = rtx::workloads::customer_session(&db, 1, 3, 1.0, 13);
        let log =
            rtx::workloads::tamper_log(&rtx::workloads::log_of(&short, &db, &inputs), "lemonde");
        b.iter(|| {
            let verdict = validate_log(&short, &db, &log).unwrap();
            assert!(!verdict.is_valid());
        });
    });
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
