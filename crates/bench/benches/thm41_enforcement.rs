//! THM41: enforcement of `T_sdi` policies (Theorem 4.1) — policy compilation
//! cost and the runtime overhead of running the policed model versus the bare
//! one.

use criterion::Criterion;
use rtx::core::models;
use rtx::datalog::{Atom, BodyLiteral};
use rtx::prelude::*;
use rtx::verify::enforce::add_enforcement;

fn availability_policy() -> SdiConstraint {
    SdiConstraint::new(
        vec![BodyLiteral::Positive(Atom::new("order", [Term::var("x")]))],
        Formula::atom("available", [Term::var("x")]),
    )
    .unwrap()
}

fn price_policy() -> SdiConstraint {
    SdiConstraint::new(
        vec![BodyLiteral::Positive(Atom::new(
            "pay",
            [Term::var("x"), Term::var("y")],
        ))],
        Formula::atom("price", [Term::var("x"), Term::var("y")]),
    )
    .unwrap()
}

fn benches(c: &mut Criterion) {
    let short = models::short();
    let policies = [availability_policy(), price_policy()];

    c.bench_function("thm41_compile_policies", |b| {
        b.iter(|| {
            for p in &policies {
                assert!(!p.compile_to_error_rules().unwrap().is_empty());
            }
        });
    });
    c.bench_function("thm41_build_enforced_transducer", |b| {
        b.iter(|| add_enforcement(&short, &policies).unwrap());
    });

    // Enforcement overhead at run time: bare vs policed model on the same
    // 16-step session.
    let db = rtx::workloads::catalog(8, 2);
    let inputs = rtx::workloads::customer_session(&db, 16, 8, 0.8, 5);
    let policed = add_enforcement(&short, &policies).unwrap();
    let mut group = c.benchmark_group("thm41_run_overhead");
    group.bench_function("bare", |b| {
        b.iter(|| short.run(&db, &inputs).unwrap());
    });
    group.bench_function("policed", |b| {
        b.iter(|| policed.run(&db, &inputs).unwrap());
    });
    group.finish();
}

fn main() {
    let mut c = rtx_bench::criterion_config();
    benches(&mut c);
    c.final_summary();
}
