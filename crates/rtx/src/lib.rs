//! # rtx — Relational Transducers for Electronic Commerce
//!
//! A from-scratch Rust implementation of the model, the worked business
//! models and the decision procedures of *Relational Transducers for
//! Electronic Commerce* (Abiteboul, Vianu, Fordham, Yesha; PODS 1998 / JCSS
//! 2000).  This facade crate re-exports the whole workspace:
//!
//! * [`relational`] — the relational model substrate;
//! * [`logic`] — first-order logic and ∃\*∀\* (Bernays–Schönfinkel)
//!   satisfiability;
//! * [`sat`] — the SAT solver backing the decision procedures;
//! * [`datalog`] — the semipositive non-recursive datalog¬≠ engine;
//! * [`automata`] — finite automata for the `Gen(T)` characterisation;
//! * [`store`] — the in-memory relational store behind the `db` relations;
//! * [`core`] — relational transducers, Spocus transducers, the DSL, and the
//!   paper's worked models (`short`, `friendly`, `a b* c`);
//! * [`verify`] — log validation, goal reachability, temporal properties,
//!   customization containment, `T_sdi` enforcement, error-free-run
//!   verification, and the online session monitor behind the runtime
//!   guardrails;
//! * [`workloads`] — synthetic catalogs, customer sessions and scalable model
//!   families for the benchmarks.
//!
//! ## Quickstart
//!
//! ```
//! use rtx::prelude::*;
//!
//! // The paper's `short` business model, catalog and Figure 1 inputs.
//! let transducer = rtx::core::models::short();
//! let db = rtx::core::models::figure1_database();
//! let inputs = rtx::core::models::figure1_inputs();
//!
//! // Run it and audit its own log (Theorem 3.1).
//! let run = transducer.run(&db, &inputs).unwrap();
//! let verdict = validate_log(&transducer, &db, run.log()).unwrap();
//! assert!(verdict.is_valid());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rtx_automata as automata;
pub use rtx_core as core;
pub use rtx_datalog as datalog;
pub use rtx_logic as logic;
pub use rtx_relational as relational;
pub use rtx_sat as sat;
pub use rtx_store as store;
pub use rtx_verify as verify;
pub use rtx_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use rtx_core::{
        models, parse_transducer, ControlDiscipline, MonitorPolicy, PropositionalTransducer,
        RelationalTransducer, Run, Runtime, RuntimeHealth, Session, SessionObserver,
        ShardedRuntime, ShardedSession, SpocusBuilder, SpocusTransducer, TransducerSchema,
        Violation, ViolationKind,
    };
    pub use rtx_datalog::{parse_program, parse_rule, Program, Rule};
    pub use rtx_logic::{Formula, Term};
    pub use rtx_relational::{
        Instance, InstanceSequence, Relation, RelationName, Schema, Tuple, Value,
    };
    pub use rtx_verify::{
        customization_preserves_logs, error_free_containment, error_free_runs_satisfy,
        holds_in_all_runs, is_goal_reachable, validate_log, Goal, GoalLiteral, LogAuditCursor,
        LogValidity, SdiConstraint, SessionMonitor,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_re_exports_are_wired() {
        let t = crate::core::models::short();
        assert_eq!(t.name(), "short");
        let _schema: &crate::core::TransducerSchema = t.schema();
    }
}
