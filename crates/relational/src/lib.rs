//! # rtx-relational
//!
//! Relational model substrate for the `rtx` workspace — the vocabulary shared by
//! every other crate in the reproduction of *Relational Transducers for
//! Electronic Commerce* (Abiteboul, Vianu, Fordham, Yesha).
//!
//! The paper (§2.2) assumes "familiarity with the relational model": relation
//! schemas, finite instances, and finite *sequences* of instances (the inputs,
//! outputs, states and logs of a transducer run are all sequences of relation
//! instances).  This crate provides exactly that machinery:
//!
//! * [`Value`] — constants of the (unordered, infinite) underlying domain,
//!   plus integers for prices and quantities;
//! * [`Symbol`] / [`SymbolTable`] — the engine-wide interning dictionary
//!   behind symbolic values (see below);
//! * [`Tuple`] — fixed-arity vectors of values, stored inline up to
//!   [`INLINE_VALUES`] columns ([`ValueVec`]);
//! * [`RelationName`], [`RelationSchema`], [`Schema`] — named relations of a
//!   fixed arity and sets thereof;
//! * [`Relation`] — a finite set of tuples of one arity;
//! * [`Instance`] — a finite instance of a [`Schema`] (one [`Relation`] per
//!   relation name);
//! * [`TupleIndex`] — sidecar hash indexes keyed on column subsets, the
//!   access path behind the datalog engine's compiled-indexed join;
//! * [`FxHashMap`] — the fast integer hasher those indexes key with;
//! * [`InstanceSequence`] — a finite sequence of instances over one schema,
//!   with the projection ("restriction to the log relations") the paper uses
//!   to define logs;
//! * [`codec`] — the little-endian binary codec values and tuples cross the
//!   process boundary with (WAL records, snapshots), serializing symbols by
//!   text;
//! * [`mod@env`] — strict parsing of the workspace's `RTX_*` environment
//!   overrides: one shared contract (unset = no override, malformed = loud
//!   [`env::EnvParseError`], never a silent fallback) used by every crate
//!   that reads a process-wide knob;
//! * [`active_domain`] helpers — the set of constants occurring in instances,
//!   needed by the small-model constructions of the verification crate.
//!
//! Everything is ordered ([`std::collections::BTreeMap`]/[`BTreeSet`]) so that
//! iteration, `Debug` output and test expectations are deterministic.
//!
//! # Interned symbols and the display boundary
//!
//! Symbolic constants are dictionary-encoded: [`Value`] is a 16-byte
//! [`Copy`] enum of `Int(i64) | Sym(Symbol)`, where a [`Symbol`] is a `u32`
//! handle into the process-global, append-only [`SymbolTable`].  The working
//! rule for every layer above this crate:
//!
//! * **create** values through [`Value::str`] / `From<&str>` (which intern);
//! * **compute** (join, bind, hash, compare) on [`Value`]s directly — these
//!   are machine-word operations that never touch the table;
//! * **resolve** back to text ([`Symbol::as_str`]) only at display or
//!   serialization boundaries: `Display` impls, error messages, logs.
//!
//! Symbols order lexicographically by their text, so interning is invisible
//! to sorted containers, prefix scans and rendered output.  Symbols are never
//! freed; memory is bounded by the number of distinct strings ever interned.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod env;
mod error;
mod fxhash;
mod index;
mod instance;
mod schema;
mod sequence;
mod symbol;
mod tuple;
mod value;

pub use error::RelationalError;
pub use fxhash::{FxBuildHasher, FxHashMap, FxHasher};
pub use index::TupleIndex;
pub use instance::{Instance, Relation};
pub use schema::{RelationName, RelationSchema, Schema};
pub use sequence::InstanceSequence;
pub use symbol::{Symbol, SymbolTable};
pub use tuple::{Tuple, ValueVec, INLINE_VALUES};
pub use value::Value;

use std::collections::BTreeSet;

/// Computes the active domain of an instance: every [`Value`] occurring in any
/// tuple of any relation.
///
/// The active domain drives the small-model constructions used by the
/// decision procedures (Theorems 3.1–3.3 of the paper reduce to finite
/// satisfiability where only constants from the problem instance plus a
/// bounded number of fresh witnesses matter).
pub fn active_domain(instance: &Instance) -> BTreeSet<Value> {
    let mut dom = BTreeSet::new();
    for (_, rel) in instance.iter() {
        for tuple in rel.iter() {
            dom.extend(tuple.values().iter().cloned());
        }
    }
    dom
}

/// Computes the active domain of a sequence of instances (union of the active
/// domains of its elements).
pub fn active_domain_of_sequence(seq: &InstanceSequence) -> BTreeSet<Value> {
    let mut dom = BTreeSet::new();
    for inst in seq.iter() {
        dom.append(&mut active_domain(inst));
    }
    dom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_domain_collects_all_values() {
        let schema = Schema::new(vec![
            RelationSchema::new("order", 1),
            RelationSchema::new("pay", 2),
        ])
        .unwrap();
        let mut inst = Instance::empty(&schema);
        inst.insert("order", Tuple::new(vec![Value::str("time")]))
            .unwrap();
        inst.insert("pay", Tuple::new(vec![Value::str("time"), Value::int(855)]))
            .unwrap();
        let dom = active_domain(&inst);
        assert_eq!(dom.len(), 2);
        assert!(dom.contains(&Value::str("time")));
        assert!(dom.contains(&Value::int(855)));
    }

    #[test]
    fn active_domain_of_sequence_unions() {
        let schema = Schema::new(vec![RelationSchema::new("r", 1)]).unwrap();
        let mut a = Instance::empty(&schema);
        a.insert("r", Tuple::new(vec![Value::str("x")])).unwrap();
        let mut b = Instance::empty(&schema);
        b.insert("r", Tuple::new(vec![Value::str("y")])).unwrap();
        let seq = InstanceSequence::new(schema, vec![a, b]).unwrap();
        let dom = active_domain_of_sequence(&seq);
        assert_eq!(dom.len(), 2);
    }
}
