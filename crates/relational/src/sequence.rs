//! Finite sequences of instances over a fixed schema.

use crate::{Instance, RelationName, RelationalError, Schema};
use std::fmt;

/// A finite sequence `I_1, …, I_n` of instances over one schema.
///
/// Input sequences, state sequences, output sequences and logs of a transducer
/// run are all values of this type (paper §2.2).  The sequence remembers its
/// schema so restriction (log projection) and validation stay well-typed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InstanceSequence {
    schema: Schema,
    instances: Vec<Instance>,
}

impl InstanceSequence {
    /// Creates a sequence over `schema`.
    ///
    /// Every element must materialise exactly the relations of `schema` (with
    /// matching arities); otherwise a [`RelationalError::SchemaMismatch`] is
    /// returned.
    pub fn new(schema: Schema, instances: Vec<Instance>) -> Result<Self, RelationalError> {
        for (i, inst) in instances.iter().enumerate() {
            let inst_schema = inst.schema();
            if inst_schema != schema {
                return Err(RelationalError::SchemaMismatch {
                    detail: format!(
                        "element {i} has schema {inst_schema} but the sequence schema is {schema}"
                    ),
                });
            }
        }
        Ok(InstanceSequence { schema, instances })
    }

    /// The empty sequence over a schema.
    pub fn empty(schema: Schema) -> Self {
        InstanceSequence {
            schema,
            instances: Vec::new(),
        }
    }

    /// The sequence schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True if the sequence has no steps.
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// The `i`-th instance (0-based).
    pub fn get(&self, i: usize) -> Option<&Instance> {
        self.instances.get(i)
    }

    /// The last instance, if any.
    pub fn last(&self) -> Option<&Instance> {
        self.instances.last()
    }

    /// Iterates over the instances in order.
    pub fn iter(&self) -> impl Iterator<Item = &Instance> {
        self.instances.iter()
    }

    /// Appends an instance, checking its schema.
    pub fn push(&mut self, instance: Instance) -> Result<(), RelationalError> {
        let inst_schema = instance.schema();
        if inst_schema != self.schema {
            return Err(RelationalError::SchemaMismatch {
                detail: format!(
                    "pushed instance has schema {inst_schema} but the sequence schema is {}",
                    self.schema
                ),
            });
        }
        self.instances.push(instance);
        Ok(())
    }

    /// Restriction of every step to the named relations — the paper's
    /// "restriction of a run to the log relations".
    pub fn restrict_to<I, N>(&self, names: I) -> InstanceSequence
    where
        I: IntoIterator<Item = N>,
        N: Into<RelationName>,
    {
        let names: Vec<RelationName> = names.into_iter().map(Into::into).collect();
        let schema = self.schema.restrict_to(names.clone());
        let instances = self
            .instances
            .iter()
            .map(|i| i.restrict_to(names.clone()))
            .collect();
        InstanceSequence { schema, instances }
    }

    /// The prefix of length `n` (or the whole sequence if `n ≥ len`).
    pub fn prefix(&self, n: usize) -> InstanceSequence {
        InstanceSequence {
            schema: self.schema.clone(),
            instances: self.instances.iter().take(n).cloned().collect(),
        }
    }

    /// Pointwise union of all steps into a single instance (used by the
    /// "length two suffices" argument of Theorem 3.2, where all but the last
    /// input can be collapsed into a single batch).
    pub fn collapse(&self) -> Result<Instance, RelationalError> {
        let mut acc = Instance::empty(&self.schema);
        for inst in &self.instances {
            acc.absorb(inst)?;
        }
        Ok(acc)
    }

    /// Consumes the sequence and returns its instances.
    pub fn into_instances(self) -> Vec<Instance> {
        self.instances
    }
}

impl fmt::Display for InstanceSequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, inst) in self.instances.iter().enumerate() {
            writeln!(f, "step {}: {}", i + 1, inst)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Tuple, Value};

    fn schema() -> Schema {
        Schema::from_pairs([("order", 1), ("pay", 2)]).unwrap()
    }

    fn step(orders: &[&str], pays: &[(&str, i64)]) -> Instance {
        let mut inst = Instance::empty(&schema());
        for o in orders {
            inst.insert("order", Tuple::from_iter([*o])).unwrap();
        }
        for (p, amt) in pays {
            inst.insert("pay", Tuple::new(vec![Value::str(*p), Value::int(*amt)]))
                .unwrap();
        }
        inst
    }

    #[test]
    fn construction_validates_schema() {
        let other = Schema::from_pairs([("order", 1)]).unwrap();
        let bad = Instance::empty(&other);
        let err = InstanceSequence::new(schema(), vec![bad]).unwrap_err();
        assert!(matches!(err, RelationalError::SchemaMismatch { .. }));
    }

    #[test]
    fn push_and_access() {
        let mut seq = InstanceSequence::empty(schema());
        assert!(seq.is_empty());
        seq.push(step(&["time"], &[])).unwrap();
        seq.push(step(&[], &[("time", 855)])).unwrap();
        assert_eq!(seq.len(), 2);
        assert_eq!(seq.get(0).unwrap().total_tuples(), 1);
        assert!(seq.last().unwrap().holds(
            "pay",
            &Tuple::new(vec![Value::str("time"), Value::int(855)])
        ));
    }

    #[test]
    fn push_rejects_wrong_schema() {
        let mut seq = InstanceSequence::empty(schema());
        let other = Schema::from_pairs([("x", 1)]).unwrap();
        assert!(seq.push(Instance::empty(&other)).is_err());
    }

    #[test]
    fn restriction_applies_pointwise() {
        let seq = InstanceSequence::new(
            schema(),
            vec![step(&["time"], &[("time", 855)]), step(&["newsweek"], &[])],
        )
        .unwrap();
        let log = seq.restrict_to(["pay"]);
        assert_eq!(log.schema().len(), 1);
        assert_eq!(log.get(0).unwrap().total_tuples(), 1);
        assert_eq!(log.get(1).unwrap().total_tuples(), 0);
    }

    #[test]
    fn collapse_unions_all_steps() {
        let seq = InstanceSequence::new(
            schema(),
            vec![step(&["time"], &[]), step(&["newsweek"], &[("time", 855)])],
        )
        .unwrap();
        let all = seq.collapse().unwrap();
        assert_eq!(all.relation("order").unwrap().len(), 2);
        assert_eq!(all.relation("pay").unwrap().len(), 1);
    }

    #[test]
    fn prefix_truncates() {
        let seq =
            InstanceSequence::new(schema(), vec![step(&["a"], &[]), step(&["b"], &[])]).unwrap();
        assert_eq!(seq.prefix(1).len(), 1);
        assert_eq!(seq.prefix(10).len(), 2);
        assert_eq!(seq.prefix(0).len(), 0);
    }

    #[test]
    fn display_lists_steps() {
        let seq = InstanceSequence::new(schema(), vec![step(&["a"], &[])]).unwrap();
        let text = seq.to_string();
        assert!(text.contains("step 1"));
        assert!(text.contains("order"));
    }
}
