//! Strict parsing of `RTX_*` environment overrides.
//!
//! Every process-wide knob of the workspace (`RTX_THREADS`, `RTX_DEMAND`,
//! `RTX_MONITOR`, `RTX_FSYNC`, `RTX_SHARDS`, …) funnels through this module
//! so that all of them share one contract:
//!
//! * **unset** (or set to the empty / all-whitespace string) means "no
//!   override" — the caller's programmatic default applies;
//! * a **well-formed** value (after trimming surrounding whitespace) yields
//!   the parsed override;
//! * a **malformed** value is a hard [`EnvParseError`] naming the variable,
//!   the offending value and the accepted forms — never a silent fallback.
//!
//! The last point is the whole reason this module exists: a fleet operator
//! who exports `RTX_DEMAND=ful` or `RTX_MONITOR=enforec` must find out at
//! startup, not after the misconfigured default has served traffic.  Callers
//! that structurally cannot surface an error (process-global `OnceLock`
//! defaults resolved deep inside an infallible path) use
//! [`read_or_warn`], which reports the malformed value loudly on stderr and
//! then — and only then — falls back.

use std::fmt;

/// A malformed `RTX_*` environment override: the variable was set, but its
/// value does not parse.  Unset variables never produce this error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EnvParseError {
    /// The environment variable name (e.g. `RTX_DEMAND`).
    pub var: String,
    /// The rejected value, as found in the environment.
    pub value: String,
    /// A human-readable description of the accepted forms.
    pub expected: &'static str,
}

impl fmt::Display for EnvParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "malformed {}={:?}: expected {}",
            self.var, self.value, self.expected
        )
    }
}

impl std::error::Error for EnvParseError {}

/// Parses one environment override from an already-read raw value.
///
/// `raw` is the value as read from the environment (`None` when the variable
/// is unset).  Unset, empty and all-whitespace values mean "no override"
/// (`Ok(None)`); otherwise the trimmed value is handed to `parse`, and a
/// `None` from the parser becomes a hard [`EnvParseError`].
///
/// This is the pure core every `RTX_*` variable's tests exercise directly —
/// process-global `OnceLock` caches make the real environment path
/// untestable in-process after first use.
pub fn parse_setting<T>(
    var: &str,
    raw: Option<&str>,
    expected: &'static str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Result<Option<T>, EnvParseError> {
    let Some(raw) = raw else { return Ok(None) };
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    match parse(trimmed) {
        Some(value) => Ok(Some(value)),
        None => Err(EnvParseError {
            var: var.to_string(),
            value: raw.to_string(),
            expected,
        }),
    }
}

/// Reads and strictly parses an environment override from the process
/// environment.  See [`parse_setting`] for the contract.
pub fn read_setting<T>(
    var: &str,
    expected: &'static str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Result<Option<T>, EnvParseError> {
    let raw = std::env::var(var).ok();
    parse_setting(var, raw.as_deref(), expected, parse)
}

/// Like [`read_setting`], but for call sites that structurally cannot
/// surface an error: a malformed value is reported loudly on stderr and
/// treated as "no override".  Prefer [`read_setting`] wherever the caller
/// can reject.
pub fn read_or_warn<T>(
    var: &str,
    expected: &'static str,
    parse: impl FnOnce(&str) -> Option<T>,
) -> Option<T> {
    match read_setting(var, expected, parse) {
        Ok(value) => value,
        Err(e) => {
            eprintln!("warning: ignoring {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_bool(v: &str) -> Option<bool> {
        match v {
            "yes" => Some(true),
            "no" => Some(false),
            _ => None,
        }
    }

    #[test]
    fn unset_and_blank_mean_no_override() {
        assert_eq!(parse_setting("RTX_X", None, "yes/no", parse_bool), Ok(None));
        assert_eq!(
            parse_setting("RTX_X", Some(""), "yes/no", parse_bool),
            Ok(None)
        );
        assert_eq!(
            parse_setting("RTX_X", Some("   "), "yes/no", parse_bool),
            Ok(None)
        );
    }

    #[test]
    fn well_formed_values_are_trimmed_and_parsed() {
        assert_eq!(
            parse_setting("RTX_X", Some("yes"), "yes/no", parse_bool),
            Ok(Some(true))
        );
        assert_eq!(
            parse_setting("RTX_X", Some("  no "), "yes/no", parse_bool),
            Ok(Some(false))
        );
    }

    #[test]
    fn malformed_values_are_hard_errors_naming_the_variable() {
        let err = parse_setting("RTX_X", Some("maybe"), "yes/no", parse_bool).unwrap_err();
        assert_eq!(err.var, "RTX_X");
        assert_eq!(err.value, "maybe");
        let shown = err.to_string();
        assert!(shown.contains("RTX_X"), "{shown}");
        assert!(shown.contains("maybe"), "{shown}");
        assert!(shown.contains("yes/no"), "{shown}");
    }

    #[test]
    fn read_setting_reads_the_process_environment() {
        // Only an unset variable is safely testable in-process (tests run
        // concurrently and the environment is shared); the parsing paths
        // are covered through `parse_setting` above.
        assert_eq!(
            read_setting("RTX_THIS_VARIABLE_IS_NEVER_SET", "anything", |_| Some(())),
            Ok(None)
        );
        assert_eq!(
            read_or_warn("RTX_THIS_VARIABLE_IS_NEVER_SET", "anything", |_| Some(())),
            None
        );
    }
}
