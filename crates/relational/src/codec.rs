//! Binary codec for values and tuples — the serialization boundary of the
//! durable storage layer.
//!
//! Interned [`Value`]s are meaningless outside the process that interned
//! them: a [`Symbol`](crate::Symbol) is a `u32` handle into this process's
//! [`SymbolTable`](crate::SymbolTable), and the same text may receive a
//! different id after a restart.  Anything that leaves the process — a
//! write-ahead-log record, a snapshot — must therefore cross the
//! **symbol-resolution boundary**: symbols serialize *by text* and re-intern
//! on decode.  This module is that boundary, shared by every durable format
//! in the workspace (`rtx-store`'s WAL and snapshots).
//!
//! The encoding is little-endian and length-prefixed:
//!
//! * `u32`/`u64`/`i64` — fixed-width little-endian;
//! * string — `u32` byte length, then UTF-8 bytes;
//! * [`Value`] — tag byte `0` + `i64` for [`Value::Int`], tag byte `1` +
//!   string for [`Value::Sym`];
//! * [`Tuple`] — `u32` arity, then its values in order.
//!
//! Decoding is **total**: every decoder returns a [`DecodeError`] carrying
//! the byte offset of the failure instead of panicking, whatever the input
//! bytes — truncated buffers, wild length prefixes and unknown tags
//! included.  (A flipped bit *inside* a value's payload can still decode to a
//! different valid value; detecting that is the job of the checksum the
//! durable formats wrap around these encodings.)

use crate::{Tuple, Value, ValueVec};
use std::fmt;

/// A decoding failure: what went wrong and at which byte offset of the
/// input buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    /// Byte offset (into the buffer handed to the decoder) at which the
    /// failure was detected.
    pub offset: usize,
    /// Human-readable description of the failure.
    pub reason: String,
}

impl DecodeError {
    fn new(offset: usize, reason: impl Into<String>) -> Self {
        DecodeError {
            offset,
            reason: reason.into(),
        }
    }

    /// This error with its offset shifted by `base` — used by callers that
    /// decode out of a larger buffer (a WAL record inside a log file) and
    /// want file-absolute offsets in their reports.
    pub fn offset_by(mut self, base: usize) -> Self {
        self.offset += base;
        self
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at byte {}: {}", self.offset, self.reason)
    }
}

impl std::error::Error for DecodeError {}

/// A cursor over an input buffer, tracking the read offset for error
/// reports.  All `get_*` methods fail with [`DecodeError`] instead of
/// panicking when the buffer runs out.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// A reader positioned at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// The current read offset.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Number of bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// True if every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], DecodeError> {
        if self.remaining() < n {
            return Err(DecodeError::new(
                self.pos,
                format!(
                    "unexpected end of input reading {what}: need {n} bytes, have {}",
                    self.remaining()
                ),
            ));
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self, what: &str) -> Result<u8, DecodeError> {
        Ok(self.take(1, what)?[0])
    }

    /// Reads a little-endian `u32`.
    pub fn get_u32(&mut self, what: &str) -> Result<u32, DecodeError> {
        let bytes = self.take(4, what)?;
        Ok(u32::from_le_bytes(bytes.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn get_u64(&mut self, what: &str) -> Result<u64, DecodeError> {
        let bytes = self.take(8, what)?;
        Ok(u64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a little-endian `i64`.
    pub fn get_i64(&mut self, what: &str) -> Result<i64, DecodeError> {
        let bytes = self.take(8, what)?;
        Ok(i64::from_le_bytes(bytes.try_into().expect("8 bytes")))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &str) -> Result<&'a str, DecodeError> {
        let at = self.pos;
        let len = self.get_u32(what)? as usize;
        if len > self.remaining() {
            return Err(DecodeError::new(
                at,
                format!(
                    "{what} claims {len} bytes but only {} remain",
                    self.remaining()
                ),
            ));
        }
        let bytes = self.take(len, what)?;
        std::str::from_utf8(bytes)
            .map_err(|e| DecodeError::new(at, format!("{what} is not valid UTF-8: {e}")))
    }

    /// Reads one [`Value`].
    pub fn get_value(&mut self) -> Result<Value, DecodeError> {
        let at = self.pos;
        match self.get_u8("value tag")? {
            TAG_INT => Ok(Value::Int(self.get_i64("integer value")?)),
            TAG_SYM => Ok(Value::str(self.get_str("symbol text")?)),
            tag => Err(DecodeError::new(at, format!("unknown value tag {tag}"))),
        }
    }

    /// Reads one [`Tuple`] (`u32` arity, then its values).
    pub fn get_tuple(&mut self) -> Result<Tuple, DecodeError> {
        let at = self.pos;
        let arity = self.get_u32("tuple arity")? as usize;
        // Each value takes at least one tag byte, so a sane arity can never
        // exceed the remaining byte count — reject wild prefixes before
        // trusting them with an allocation.
        if arity > self.remaining() {
            return Err(DecodeError::new(
                at,
                format!(
                    "tuple arity {arity} exceeds the {} remaining bytes",
                    self.remaining()
                ),
            ));
        }
        let mut values = ValueVec::with_capacity(arity);
        for _ in 0..arity {
            values.push(self.get_value()?);
        }
        Ok(Tuple::from(values))
    }
}

const TAG_INT: u8 = 0;
const TAG_SYM: u8 = 1;

/// Appends a little-endian `u32`.
pub fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `i64`.
pub fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(out: &mut Vec<u8>, s: &str) {
    put_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends one [`Value`].  Symbols are written by their text — this is the
/// symbol-resolution boundary the module docs describe.
pub fn put_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            out.push(TAG_INT);
            put_i64(out, *i);
        }
        Value::Sym(s) => {
            out.push(TAG_SYM);
            put_str(out, s.as_str());
        }
    }
}

/// Appends one [`Tuple`] (`u32` arity, then its values).
pub fn put_tuple(out: &mut Vec<u8>, t: &Tuple) {
    put_u32(out, t.arity() as u32);
    for v in t.values() {
        put_value(out, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn adversarial_values() -> Vec<Value> {
        vec![
            Value::int(0),
            Value::int(-1),
            Value::int(i64::MIN),
            Value::int(i64::MAX),
            Value::str(""),
            Value::str("plain"),
            Value::str("has \"quotes\" and 'apostrophes'"),
            Value::str("new\nline\r\ttab"),
            Value::str("back\\slash"),
            Value::str("42"), // integer-in-disguise stays a symbol
            Value::str("ümlaut 日本語"),
            Value::str("x".repeat(300)),
        ]
    }

    fn adversarial_tuples() -> Vec<Tuple> {
        let vs = adversarial_values();
        let mut tuples = vec![
            Tuple::unit(),
            Tuple::from_slice(&vs[..1]),
            Tuple::new(vs.clone()),                        // spills ValueVec
            Tuple::new(vec![Value::str(""); 9]),           // wide, empty symbols
            Tuple::new((0..40).map(Value::int).collect()), // max-arity-ish
        ];
        tuples.push(Tuple::new(vs.iter().rev().cloned().collect()));
        tuples
    }

    #[test]
    fn values_round_trip_bit_identically() {
        for v in adversarial_values() {
            let mut buf = Vec::new();
            put_value(&mut buf, &v);
            let mut r = Reader::new(&buf);
            assert_eq!(r.get_value().unwrap(), v);
            assert!(r.is_empty(), "trailing bytes after {v:?}");
        }
    }

    #[test]
    fn tuples_round_trip_bit_identically() {
        for t in adversarial_tuples() {
            let mut buf = Vec::new();
            put_tuple(&mut buf, &t);
            let mut r = Reader::new(&buf);
            assert_eq!(r.get_tuple().unwrap(), t);
            assert!(r.is_empty(), "trailing bytes after {t:?}");
        }
    }

    #[test]
    fn every_truncation_errors_and_never_panics() {
        for t in adversarial_tuples() {
            let mut buf = Vec::new();
            put_tuple(&mut buf, &t);
            for cut in 0..buf.len() {
                let mut r = Reader::new(&buf[..cut]);
                let err = r
                    .get_tuple()
                    .expect_err("a strict prefix can never decode to the full tuple");
                assert!(err.offset <= cut, "offset {} past cut {cut}", err.offset);
            }
        }
    }

    #[test]
    fn every_single_byte_corruption_is_total() {
        // A corrupted byte must never panic the decoder.  It may still
        // decode (flipping a bit inside symbol text yields a different,
        // valid symbol — the durable formats' CRC exists to catch that);
        // what the codec itself guarantees is totality.
        for t in adversarial_tuples() {
            let mut buf = Vec::new();
            put_tuple(&mut buf, &t);
            for i in 0..buf.len() {
                let mut corrupt = buf.clone();
                corrupt[i] ^= 0xA5;
                let mut r = Reader::new(&corrupt);
                match r.get_tuple() {
                    Ok(decoded) => assert_ne!(
                        (i, &decoded),
                        (i, &t),
                        "corrupting byte {i} must not decode to the original"
                    ),
                    Err(e) => assert!(e.offset <= corrupt.len()),
                }
            }
        }
    }

    #[test]
    fn randomized_value_soup_round_trips() {
        // Deterministic xorshift fuzz in the style of the display round-trip
        // fuzz: random mixed tuples, encode → decode bit-identical.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let alphabet: Vec<char> = "ab\"'\\ \t\n(){};,0123456789-xyZ€".chars().collect();
        for _ in 0..300 {
            let arity = (next() % 9) as usize;
            let values: Vec<Value> = (0..arity)
                .map(|_| {
                    if next() % 3 == 0 {
                        Value::int(next() as i64)
                    } else {
                        let len = (next() % 10) as usize;
                        let text: String = (0..len)
                            .map(|_| alphabet[(next() % alphabet.len() as u64) as usize])
                            .collect();
                        Value::str(text)
                    }
                })
                .collect();
            let t = Tuple::new(values);
            let mut buf = Vec::new();
            put_tuple(&mut buf, &t);
            assert_eq!(Reader::new(&buf).get_tuple().unwrap(), t);
        }
    }

    #[test]
    fn unknown_tags_and_wild_lengths_error_with_offsets() {
        let mut r = Reader::new(&[7u8]);
        let err = r.get_value().unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.reason.contains("tag 7"));

        // A symbol claiming 4 GiB of text.
        let mut buf = vec![TAG_SYM];
        put_u32(&mut buf, u32::MAX);
        let err = Reader::new(&buf).get_value().unwrap_err();
        assert_eq!(err.offset, 1);
        assert!(err.reason.contains("remain"));

        // A tuple claiming more values than bytes.
        let mut buf = Vec::new();
        put_u32(&mut buf, 1_000_000);
        let err = Reader::new(&buf).get_tuple().unwrap_err();
        assert_eq!(err.offset, 0);
        assert!(err.reason.contains("arity"));

        // Invalid UTF-8 in symbol text.
        let buf = vec![TAG_SYM, 2, 0, 0, 0, 0xFF, 0xFE];
        let err = Reader::new(&buf).get_value().unwrap_err();
        assert!(err.reason.contains("UTF-8"));

        // Offset shifting for embedded decodes.
        assert_eq!(err.clone().offset_by(100).offset, err.offset + 100);
    }

    #[test]
    fn scalar_helpers_round_trip() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 0xDEAD_BEEF);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, i64::MIN);
        put_str(&mut buf, "häns");
        let mut r = Reader::new(&buf);
        assert_eq!(r.get_u32("a").unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64("b").unwrap(), u64::MAX - 1);
        assert_eq!(r.get_i64("c").unwrap(), i64::MIN);
        assert_eq!(r.get_str("d").unwrap(), "häns");
        assert_eq!(r.remaining(), 0);
        assert!(r.get_u8("e").is_err());
    }
}
