//! Fixed-arity tuples of values, stored inline.

use crate::Value;
use std::fmt;
use std::ops::Deref;

/// Number of values a [`ValueVec`] (and therefore a [`Tuple`]) stores inline
/// before spilling to the heap.  The paper's relations are narrow (arity ≤ 4
/// throughout the examples), so the common case allocates nothing.
pub const INLINE_VALUES: usize = 4;

const FILL: Value = Value::Int(0);

/// A small vector of [`Value`]s with inline capacity [`INLINE_VALUES`].
///
/// `Value` is [`Copy`], so pushing, cloning and comparing inline buffers is
/// pure register/stack traffic; only relations wider than [`INLINE_VALUES`]
/// columns touch the allocator.  This is both the backing storage of
/// [`Tuple`] and the scratch key buffer of the datalog engine's index probes
/// (equality and hashing match `[Value]`, so a `ValueVec` key can be probed
/// with a borrowed slice).
#[derive(Clone)]
pub enum ValueVec {
    /// Up to [`INLINE_VALUES`] values, stored inline.
    Inline {
        /// Number of live values in `buf`.
        len: u8,
        /// The inline buffer; slots at index ≥ `len` are padding.
        buf: [Value; INLINE_VALUES],
    },
    /// More than [`INLINE_VALUES`] values, spilled to the heap.
    Heap(Vec<Value>),
}

impl ValueVec {
    /// The empty vector.
    pub fn new() -> Self {
        ValueVec::Inline {
            len: 0,
            buf: [FILL; INLINE_VALUES],
        }
    }

    /// An empty vector that will hold `n` values without reallocating.
    pub fn with_capacity(n: usize) -> Self {
        if n <= INLINE_VALUES {
            ValueVec::new()
        } else {
            ValueVec::Heap(Vec::with_capacity(n))
        }
    }

    /// Copies a slice.
    pub fn from_slice(values: &[Value]) -> Self {
        if values.len() <= INLINE_VALUES {
            let mut buf = [FILL; INLINE_VALUES];
            buf[..values.len()].copy_from_slice(values);
            ValueVec::Inline {
                len: values.len() as u8,
                buf,
            }
        } else {
            ValueVec::Heap(values.to_vec())
        }
    }

    /// Appends a value, spilling to the heap if the inline buffer is full.
    pub fn push(&mut self, value: Value) {
        match self {
            ValueVec::Inline { len, buf } => {
                if (*len as usize) < INLINE_VALUES {
                    buf[*len as usize] = value;
                    *len += 1;
                } else {
                    let mut vec = Vec::with_capacity(INLINE_VALUES * 2);
                    vec.extend_from_slice(&buf[..]);
                    vec.push(value);
                    *self = ValueVec::Heap(vec);
                }
            }
            ValueVec::Heap(vec) => vec.push(value),
        }
    }

    /// Removes all values (the inline capacity is retained).
    pub fn clear(&mut self) {
        match self {
            ValueVec::Inline { len, .. } => *len = 0,
            ValueVec::Heap(vec) => vec.clear(),
        }
    }

    /// The live values as a slice.
    pub fn as_slice(&self) -> &[Value] {
        match self {
            ValueVec::Inline { len, buf } => &buf[..*len as usize],
            ValueVec::Heap(vec) => vec,
        }
    }

    /// Consumes the vector into a `Vec<Value>` (allocates iff inline).
    pub fn into_vec(self) -> Vec<Value> {
        match self {
            ValueVec::Inline { len, buf } => buf[..len as usize].to_vec(),
            ValueVec::Heap(vec) => vec,
        }
    }
}

impl Default for ValueVec {
    fn default() -> Self {
        ValueVec::new()
    }
}

impl Deref for ValueVec {
    type Target = [Value];

    fn deref(&self) -> &[Value] {
        self.as_slice()
    }
}

impl std::borrow::Borrow<[Value]> for ValueVec {
    fn borrow(&self) -> &[Value] {
        self.as_slice()
    }
}

impl From<Vec<Value>> for ValueVec {
    fn from(values: Vec<Value>) -> Self {
        if values.len() <= INLINE_VALUES {
            ValueVec::from_slice(&values)
        } else {
            ValueVec::Heap(values)
        }
    }
}

impl FromIterator<Value> for ValueVec {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let mut out = ValueVec::new();
        for v in iter {
            out.push(v);
        }
        out
    }
}

impl PartialEq for ValueVec {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for ValueVec {}

impl PartialOrd for ValueVec {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for ValueVec {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.as_slice().cmp(other.as_slice())
    }
}

impl std::hash::Hash for ValueVec {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        // Must agree with `<[Value]>::hash` so `Borrow<[Value]>`-keyed maps
        // can be probed with plain slices.
        self.as_slice().hash(state);
    }
}

impl fmt::Debug for ValueVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

/// A tuple of domain [`Value`]s.
///
/// Tuples are immutable once constructed; their arity is the length of the
/// underlying vector and must match the arity of the relation they are
/// inserted into (enforced by [`crate::Instance::insert`]).  Values are
/// stored inline for arities up to [`INLINE_VALUES`] — see [`ValueVec`].
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    values: ValueVec,
}

impl Tuple {
    /// Creates a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple {
            values: ValueVec::from(values),
        }
    }

    /// Creates a tuple by copying a slice of values (no heap allocation for
    /// arities up to [`INLINE_VALUES`]).
    pub fn from_slice(values: &[Value]) -> Self {
        Tuple {
            values: ValueVec::from_slice(values),
        }
    }

    /// The empty (0-ary) tuple, the single possible tuple of a propositional
    /// relation.
    pub fn unit() -> Self {
        Tuple {
            values: ValueVec::new(),
        }
    }

    /// Builds a tuple from anything convertible into values.
    ///
    /// Deliberately not the `FromIterator` trait method: this form converts
    /// items through `Into<Value>`, which the trait signature cannot.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I, V>(iter: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple {
            values: iter.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Component access.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.as_slice().get(i)
    }

    /// All components, in order.
    pub fn values(&self) -> &[Value] {
        self.values.as_slice()
    }

    /// Projects the tuple onto the given positions (0-based).
    ///
    /// Returns `None` if any position is out of range.  Projection is the
    /// operation that the paper's Proposition 3.1 adds to state rules to show
    /// undecidability, and is also used by the FD/IncD gadgets in the
    /// verification crate.
    pub fn project(&self, positions: &[usize]) -> Option<Tuple> {
        let values = self.values.as_slice();
        let mut out = ValueVec::with_capacity(positions.len());
        for &p in positions {
            out.push(*values.get(p)?);
        }
        Some(Tuple { values: out })
    }

    /// Concatenates two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = ValueVec::with_capacity(self.arity() + other.arity());
        for &v in self.values() {
            values.push(v);
        }
        for &v in other.values() {
            values.push(v);
        }
        Tuple { values }
    }

    /// Consumes the tuple and returns its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values.into_vec()
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

impl From<ValueVec> for Tuple {
    fn from(values: ValueVec) -> Self {
        Tuple { values }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[&str]) -> Tuple {
        Tuple::from_iter(vals.iter().copied())
    }

    #[test]
    fn arity_and_access() {
        let tup = t(&["a", "b", "c"]);
        assert_eq!(tup.arity(), 3);
        assert_eq!(tup.get(1), Some(&Value::str("b")));
        assert_eq!(tup.get(3), None);
    }

    #[test]
    fn unit_tuple_is_nullary() {
        assert_eq!(Tuple::unit().arity(), 0);
        assert_eq!(Tuple::unit().to_string(), "()");
    }

    #[test]
    fn projection_selects_positions() {
        let tup = t(&["a", "b", "c"]);
        assert_eq!(tup.project(&[2, 0]), Some(t(&["c", "a"])));
        assert_eq!(tup.project(&[1, 1]), Some(t(&["b", "b"])));
        assert_eq!(tup.project(&[]), Some(Tuple::unit()));
        assert_eq!(tup.project(&[5]), None);
    }

    #[test]
    fn concat_appends() {
        let a = t(&["a"]);
        let b = t(&["b", "c"]);
        assert_eq!(a.concat(&b), t(&["a", "b", "c"]));
    }

    #[test]
    fn display_format() {
        let tup = Tuple::from_iter(vec![Value::str("time"), Value::int(855)]);
        assert_eq!(tup.to_string(), "(time, 855)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut ts = vec![t(&["b"]), t(&["a", "z"]), t(&["a"])];
        ts.sort();
        assert_eq!(ts, vec![t(&["a"]), t(&["a", "z"]), t(&["b"])]);
    }

    #[test]
    fn inline_and_heap_tuples_compare_equal_by_content() {
        // Five values spill to the heap; four stay inline.  Equality, order
        // and hashing must be representation-independent.
        let wide_inline = Tuple::from_slice(&[Value::int(1); 4]);
        let also_inline = Tuple::new(vec![Value::int(1); 4]);
        assert_eq!(wide_inline, also_inline);

        let spilled = Tuple::new(vec![Value::int(1); 5]);
        assert_eq!(spilled.arity(), 5);
        assert_eq!(spilled.values(), &[Value::int(1); 5]);

        // Growing an inline ValueVec across the spill boundary keeps content.
        let mut vv = ValueVec::new();
        for i in 0..7 {
            vv.push(Value::int(i));
        }
        assert_eq!(vv.len(), 7);
        let expected: Vec<Value> = (0..7).map(Value::int).collect();
        assert_eq!(vv.as_slice(), expected.as_slice());
        assert_eq!(ValueVec::from(expected.clone()).into_vec(), expected);
    }

    #[test]
    fn value_vec_hash_matches_slice_hash() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let vv = ValueVec::from_slice(&[Value::int(3), Value::str("x")]);
        let mut a = DefaultHasher::new();
        vv.hash(&mut a);
        let mut b = DefaultHasher::new();
        vv.as_slice().hash(&mut b);
        assert_eq!(a.finish(), b.finish());
    }

    #[test]
    fn round_trip_into_values() {
        let tup = t(&["a", "b"]);
        assert_eq!(
            tup.clone().into_values(),
            vec![Value::str("a"), Value::str("b")]
        );
        let wide = Tuple::new((0..6).map(Value::int).collect());
        assert_eq!(wide.clone().into_values().len(), 6);
        assert_eq!(Tuple::from(wide.clone().into_values()), wide);
    }
}
