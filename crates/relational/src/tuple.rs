//! Fixed-arity tuples of values.

use crate::Value;
use std::fmt;

/// A tuple of domain [`Value`]s.
///
/// Tuples are immutable once constructed; their arity is the length of the
/// underlying vector and must match the arity of the relation they are
/// inserted into (enforced by [`crate::Instance::insert`]).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Tuple {
    values: Vec<Value>,
}

impl Tuple {
    /// Creates a tuple from a vector of values.
    pub fn new(values: Vec<Value>) -> Self {
        Tuple { values }
    }

    /// The empty (0-ary) tuple, the single possible tuple of a propositional
    /// relation.
    pub fn unit() -> Self {
        Tuple { values: Vec::new() }
    }

    /// Builds a tuple from anything convertible into values.
    ///
    /// Deliberately not the `FromIterator` trait method: this form converts
    /// items through `Into<Value>`, which the trait signature cannot.
    #[allow(clippy::should_implement_trait)]
    pub fn from_iter<I, V>(iter: I) -> Self
    where
        I: IntoIterator<Item = V>,
        V: Into<Value>,
    {
        Tuple {
            values: iter.into_iter().map(Into::into).collect(),
        }
    }

    /// Number of components.
    pub fn arity(&self) -> usize {
        self.values.len()
    }

    /// Component access.
    pub fn get(&self, i: usize) -> Option<&Value> {
        self.values.get(i)
    }

    /// All components, in order.
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Projects the tuple onto the given positions (0-based).
    ///
    /// Returns `None` if any position is out of range.  Projection is the
    /// operation that the paper's Proposition 3.1 adds to state rules to show
    /// undecidability, and is also used by the FD/IncD gadgets in the
    /// verification crate.
    pub fn project(&self, positions: &[usize]) -> Option<Tuple> {
        let mut out = Vec::with_capacity(positions.len());
        for &p in positions {
            out.push(self.values.get(p)?.clone());
        }
        Some(Tuple::new(out))
    }

    /// Concatenates two tuples.
    pub fn concat(&self, other: &Tuple) -> Tuple {
        let mut values = self.values.clone();
        values.extend(other.values.iter().cloned());
        Tuple { values }
    }

    /// Consumes the tuple and returns its values.
    pub fn into_values(self) -> Vec<Value> {
        self.values
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.values.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(values: Vec<Value>) -> Self {
        Tuple::new(values)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[&str]) -> Tuple {
        Tuple::from_iter(vals.iter().copied())
    }

    #[test]
    fn arity_and_access() {
        let tup = t(&["a", "b", "c"]);
        assert_eq!(tup.arity(), 3);
        assert_eq!(tup.get(1), Some(&Value::str("b")));
        assert_eq!(tup.get(3), None);
    }

    #[test]
    fn unit_tuple_is_nullary() {
        assert_eq!(Tuple::unit().arity(), 0);
        assert_eq!(Tuple::unit().to_string(), "()");
    }

    #[test]
    fn projection_selects_positions() {
        let tup = t(&["a", "b", "c"]);
        assert_eq!(tup.project(&[2, 0]), Some(t(&["c", "a"])));
        assert_eq!(tup.project(&[1, 1]), Some(t(&["b", "b"])));
        assert_eq!(tup.project(&[]), Some(Tuple::unit()));
        assert_eq!(tup.project(&[5]), None);
    }

    #[test]
    fn concat_appends() {
        let a = t(&["a"]);
        let b = t(&["b", "c"]);
        assert_eq!(a.concat(&b), t(&["a", "b", "c"]));
    }

    #[test]
    fn display_format() {
        let tup = Tuple::from_iter(vec![Value::str("time"), Value::int(855)]);
        assert_eq!(tup.to_string(), "(time, 855)");
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut ts = vec![t(&["b"]), t(&["a", "z"]), t(&["a"])];
        ts.sort();
        assert_eq!(ts, vec![t(&["a"]), t(&["a", "z"]), t(&["b"])]);
    }
}
