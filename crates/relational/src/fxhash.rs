//! A fast, non-cryptographic hasher for small integer-shaped keys.
//!
//! The compiled datalog engine keys its hash indexes on tuples of interned
//! [`crate::Value`]s — a handful of machine words per key.  SipHash (the
//! `std` default) is overkill there: its per-hash setup dominates for keys
//! this small.  [`FxHasher`] is the multiply-and-xor scheme popularised by
//! Firefox/rustc: one multiply per word, no finalisation, excellent
//! distribution on dense ids like [`crate::Symbol`]s.
//!
//! Not DoS-resistant — use only for keys derived from trusted/internal data
//! (index keys, evaluation caches), never for attacker-controlled strings.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The Fx multiply-and-xor hasher (see the module-level docs above).
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// A `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn equal_values_hash_equal() {
        assert_eq!(hash_of(&(1u32, 2u32)), hash_of(&(1u32, 2u32)));
        assert_eq!(hash_of(&"abc"), hash_of(&"abc"));
    }

    #[test]
    fn nearby_ids_spread() {
        // Dense symbol ids must not collide trivially.
        let hashes: std::collections::BTreeSet<u64> = (0u32..1000).map(|i| hash_of(&i)).collect();
        assert_eq!(hashes.len(), 1000);
    }

    #[test]
    fn fx_map_works_as_a_map() {
        let mut m: FxHashMap<Vec<u32>, usize> = FxHashMap::default();
        m.insert(vec![1, 2], 12);
        m.insert(vec![2, 1], 21);
        assert_eq!(m.get(&vec![1, 2]), Some(&12));
        assert_eq!(m.get(&vec![2, 1]), Some(&21));
    }
}
